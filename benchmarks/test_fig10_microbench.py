"""Figure 10: latency of individual pBox operations.

The paper measures each pBox API call in nanoseconds against getpid and
pthread_create.  Here the operations are real Python calls into the
runtime/manager (actual wall-clock time, not virtual time), compared
against ``os.getpid()`` and ``threading.Thread`` creation, preserving
the figure's two key shapes: create is ~20x cheaper than thread
creation, and the per-event operations are within a small factor of a
trivial syscall.
"""

import os
import threading

from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime, StateEvent
from repro.sim import Kernel
from repro.sim.thread import SimThread


def make_runtime():
    kernel = Kernel(cores=1)
    manager = PBoxManager(kernel)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero())
    # Give the kernel a current thread so API calls resolve a pBox the
    # way they would inside a simulated application.
    thread = SimThread(_idle_body(), name="microbench")
    kernel.current_thread = thread
    return kernel, manager, runtime, thread


def _idle_body():
    yield  # pragma: no cover - never driven


def test_create_release_pair(benchmark):
    _kernel, _manager, runtime, _thread = make_runtime()
    rule = IsolationRule(isolation_level=50)

    def op():
        psid = runtime.create_pbox(rule)
        runtime.release_pbox(psid)

    benchmark(op)


def test_activate_freeze_pair(benchmark):
    _kernel, _manager, runtime, _thread = make_runtime()
    runtime.create_pbox(IsolationRule(isolation_level=50))
    runtime.activate_pbox()

    def op():
        runtime.activate_pbox()
        runtime.freeze_pbox()

    benchmark(op)


def test_update_uncontended(benchmark):
    """update1 in the paper: update_pbox with no interference."""
    _kernel, _manager, runtime, _thread = make_runtime()
    runtime.create_pbox(IsolationRule(isolation_level=50))
    runtime.activate_pbox()

    def op():
        runtime.update_pbox("resource", StateEvent.HOLD)
        runtime.update_pbox("resource", StateEvent.UNHOLD)

    benchmark(op)


def test_update_contended(benchmark):
    """update2 in the paper: update_pbox while the key has competitors."""
    kernel, manager, runtime, thread = make_runtime()
    runtime.create_pbox(IsolationRule(isolation_level=50))
    runtime.activate_pbox()
    # A second pBox parked in the competitor map makes the key contended.
    other = manager.create(IsolationRule(isolation_level=50), thread=None)
    manager.activate(other)
    manager.update(other, "resource", StateEvent.PREPARE)

    def op():
        runtime.update_pbox("resource", StateEvent.PREPARE)
        runtime.update_pbox("resource", StateEvent.ENTER)

    benchmark(op)


def test_bind_unbind_pair(benchmark):
    _kernel, _manager, runtime, _thread = make_runtime()
    runtime.create_pbox(IsolationRule(isolation_level=50))

    def op():
        runtime.unbind_pbox("conn")
        runtime.bind_pbox("conn")

    benchmark(op)


def test_reference_getpid(benchmark):
    benchmark(os.getpid)


def test_reference_thread_create(benchmark):
    """The pthread_create reference point (object creation + start/join)."""

    def op():
        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()

    benchmark(op)


def test_create_is_much_cheaper_than_thread_create(benchmark):
    """The figure's headline: pBox creation beats thread creation."""
    import timeit

    _kernel, _manager, runtime, _thread = make_runtime()
    rule = IsolationRule(isolation_level=50)

    def pbox_pair():
        runtime.release_pbox(runtime.create_pbox(rule))

    def thread_pair():
        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()

    def compare():
        pbox_ns = timeit.timeit(pbox_pair, number=2_000) / 2_000 * 1e9
        thread_ns = timeit.timeit(thread_pair, number=200) / 200 * 1e9
        return pbox_ns, thread_ns

    pbox_ns, thread_ns = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert pbox_ns < thread_ns / 3
