"""Make the shared benchmark helpers importable as ``_common``."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
