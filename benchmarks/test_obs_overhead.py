"""Observability overhead: tracing disabled must be within noise.

The tracepoint bus is designed so that an unsubscribed tracepoint costs
one attribute load and truth test at each firing site.  This benchmark
quantifies that in two ways:

- wall-clock: run case c5 under pBox with no subscribers (the default
  for every production run) versus fully instrumented (tracer + span
  recorder + metrics collector), timing the identical simulation;
- microbench: measure the per-check cost of the disabled guard and,
  from the kernel's own statistics, bound the fraction of the disabled
  run spent on guards.

The acceptance bar is that disabled-tracing guard overhead stays under
5% of the run -- the reproduction's analogue of Figure 16's "overhead
when idle" property.
"""

import time

from _common import once, write_result

from repro.cases import Solution, get_case, run_case
from repro.core.trace import PBoxTracer
from repro.obs import MetricsCollector, SpanRecorder, Tracepoint

CASE_ID = "c5"
DURATION_S = 2
REPEATS = 3
GUARD_BUDGET_FRACTION = 0.05


def _best_wall_clock(fn):
    best = None
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _run_disabled():
    return run_case(get_case(CASE_ID), Solution.PBOX,
                    duration_s=DURATION_S)


def _run_instrumented():
    tracer = PBoxTracer()
    recorder = SpanRecorder()
    collector = MetricsCollector()

    def observer(env):
        tracer.attach(env.kernel.trace)
        recorder.attach(env.kernel.trace)
        collector.attach(env.kernel.trace)
        env.metrics = collector.registry

    return run_case(get_case(CASE_ID), Solution.PBOX,
                    duration_s=DURATION_S, observer=observer)


def _guard_cost_ns(loops=2_000_000):
    """Per-iteration cost of the disabled-tracepoint guard pattern."""
    tp = Tracepoint("bench.disabled")
    rng = range(loops)
    start = time.perf_counter()
    for _ in rng:
        if tp.active:
            tp.fire(0)
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in rng:
        pass
    empty = time.perf_counter() - start
    return max(0.0, (guarded - empty) / loops * 1e9)


def test_tracing_disabled_overhead_within_budget(benchmark):
    def run():
        disabled_s, disabled_run = _best_wall_clock(_run_disabled)
        instrumented_s, _ = _best_wall_clock(_run_instrumented)
        guard_ns = _guard_cost_ns()

        # Bound the number of guard evaluations in the disabled run from
        # the kernel's own accounting: each syscall passes a handful of
        # firing sites (enqueue/switch/switchout/sleep/futex), each
        # context switch two, plus the manager's per-event checks.
        stats = disabled_run.env.kernel.stats
        manager_events = disabled_run.manager.stats["events"]
        guard_checks = (3 * stats["syscalls"]
                        + 2 * stats["context_switches"]
                        + 2 * manager_events)
        guard_total_s = guard_checks * guard_ns / 1e9
        guard_fraction = guard_total_s / disabled_s if disabled_s else 0.0
        return (disabled_s, instrumented_s, guard_ns, guard_checks,
                guard_fraction)

    disabled_s, instrumented_s, guard_ns, guard_checks, guard_fraction = \
        once(benchmark, run)

    slowdown = instrumented_s / disabled_s if disabled_s else 1.0
    lines = [
        "# Tracing overhead, case %s at %ds simulated (best of %d runs)."
        % (CASE_ID, DURATION_S, REPEATS),
        "# 'disabled' is the default path: tracepoints wired but no",
        "# subscribers; 'instrumented' attaches tracer + span recorder",
        "# + metrics collector.  guard% bounds the disabled-run time",
        "# spent on tracepoint guards (budget: <%d%%)."
        % int(GUARD_BUDGET_FRACTION * 100),
        "config\twall_s\tvs_disabled\tguard_ns\tguard_checks\tguard%",
        "disabled\t%.3f\t1.00x\t%.1f\t%d\t%.2f%%"
        % (disabled_s, guard_ns, guard_checks, guard_fraction * 100),
        "instrumented\t%.3f\t%.2fx\t\t\t"
        % (instrumented_s, slowdown),
    ]
    write_result("obs_overhead.txt", lines)

    # The disabled path must stay within noise of the uninstrumented
    # seed: its only added work is the guard checks, whose estimated
    # total must be a small fraction of the run.
    assert guard_fraction < GUARD_BUDGET_FRACTION, (
        "disabled-tracing guards cost %.1f%% of the run (budget %d%%)"
        % (guard_fraction * 100, GUARD_BUDGET_FRACTION * 100)
    )
    # Fully instrumented tracing is allowed to cost, but not absurdly.
    assert slowdown < 10, "instrumented run %.1fx slower" % slowdown
