"""Figure 2: foreground throughput collapses when a backup task starts.

Reproduces the second motivation experiment of Section 2.1: four OLTP
clients work on a small table that fits in the buffer pool; a mysqldump
task then streams a large table through the pool, evicting the working
set and collapsing foreground throughput (the paper measures ~10x).
"""

from _common import once, write_result

from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client

DUMP_START_S = 4
DURATION_S = 12
SMALL_TABLE_PAGES = 40
BIG_TABLE_PAGES = 100_000


def run_timeline():
    kernel = Kernel(cores=4, seed=1)
    manager = PBoxManager(kernel, enabled=False)
    runtime = PBoxRuntime(manager, enabled=False)
    server = MySQLServer(kernel, runtime, MySQLConfig(buffer_pool_blocks=64))
    # Random point reads miss at full disk-seek cost.
    server.buffer_pool.read_io_us = 1_500
    stop = seconds(DURATION_S)
    recorders = []
    for index in range(4):
        rng = kernel.rng("oltp-%d" % index)
        recorder = LatencyRecorder("oltp-%d" % index)
        recorders.append(recorder)

        def factory(rng=rng):
            pages = [("small", rng.randint(0, SMALL_TABLE_PAGES - 1))
                     for _ in range(6)]
            return {"kind": "oltp_read", "pages": pages, "work_us": 500}

        kernel.spawn(
            closed_loop_client(
                kernel, server.connect("oltp-%d" % index), factory,
                recorder, stop_us=stop, think_us=200, rng=rng,
            ),
            name="oltp-%d" % index,
        )
    kernel.spawn(
        server.dump_task_body(pages=BIG_TABLE_PAGES, chunk_pages=16,
                              start_us=seconds(DUMP_START_S)),
        name="mysqldump",
    )
    kernel.run(until_us=stop)
    combined = LatencyRecorder("all")
    for recorder in recorders:
        for latency, at in zip(recorder.samples_us,
                               recorder.completion_times_us):
            combined.record(latency, at)
    return combined.timeline().count_series()


def test_fig02_backup_task_throughput_collapse(benchmark):
    series = once(benchmark, run_timeline)
    lines = ["# Figure 2: total foreground throughput (req/s) per second",
             "# mysqldump backup task starts at t=%ds" % DUMP_START_S,
             "time_s\tthroughput"]
    for t, count in series:
        lines.append("%.0f\t%d" % (t, count))
    write_result("fig02_bufferpool_motivation.txt", lines)

    before = [c for t, c in series if 1 <= t < DUMP_START_S]
    after = [c for t, c in series if t >= DUMP_START_S + 1]
    baseline = sum(before) / len(before)
    trough = min(after)
    # The paper measures a ~10x drop; require at least 5x.
    assert trough <= baseline / 5
