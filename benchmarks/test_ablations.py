"""Ablations of pBox's design decisions (DESIGN.md section 4).

Each of the paper's two key action-path choices is exercised by a
purpose-built micro-scenario where the mechanism is load-bearing, then
disabled to measure its cost:

1. **Safe penalty timing** (Section 4.4.1): penalties are served only
   when the noisy pBox holds no tracked resource.  Scenario: the noisy
   activity holds an outer resource A across a section in which it
   repeatedly contends on inner resource B; detections fire at B's
   UNHOLDs while A is still held.  With safe timing the delay lands
   after A is released; without it the delay lands mid-hold and A's
   waiters sit through the penalty too.
2. **Early (worst-case) detection** (Section 4.3.1): Algorithm 1 runs
   on every UNHOLD, predicting violations before an activity ends.
   Scenario: the victim runs one long activity (it never freezes
   inside the measurement window), so the reactive end-of-activity
   path alone can never act in time.

The third design argument -- defer time rather than hold time as the
metric -- is validated in the unit tests (a long-holding pBox with no
waiters is never penalized; see tests/test_core_manager.py).
"""

from _common import once, write_result

from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.core.events import StateEvent
from repro.sim import Compute, Kernel, Mutex, Now, Sleep
from repro.sim.clock import seconds

DURATION_S = 5


def _annotated_section(runtime, mutex, hold_us):
    """PREPARE/ENTER/HOLD ... UNHOLD around a mutex critical section."""
    runtime.update_pbox(mutex, StateEvent.PREPARE)
    yield from mutex.acquire()
    runtime.update_pbox(mutex, StateEvent.ENTER)
    runtime.update_pbox(mutex, StateEvent.HOLD)
    yield Compute(us=hold_us)
    mutex.release()
    runtime.update_pbox(mutex, StateEvent.UNHOLD)


def run_nested_hold_scenario(safe_penalty_timing):
    """Scenario 1: noisy holds A across repeated contention on B."""
    kernel = Kernel(cores=4, seed=3)
    manager = PBoxManager(kernel, safe_penalty_timing=safe_penalty_timing)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero())
    lock_a = Mutex(kernel, "outer-A")
    lock_b = Mutex(kernel, "inner-B")
    latencies_a = []

    def noisy():
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(DURATION_S):
            runtime.activate_pbox(psid)
            runtime.update_pbox(lock_a, StateEvent.PREPARE)
            yield from lock_a.acquire()
            runtime.update_pbox(lock_a, StateEvent.ENTER)
            runtime.update_pbox(lock_a, StateEvent.HOLD)
            for _ in range(4):
                yield from _annotated_section(runtime, lock_b, 2_000)
                yield Compute(us=200)
            lock_a.release()
            runtime.update_pbox(lock_a, StateEvent.UNHOLD)
            runtime.freeze_pbox(psid)
            yield Sleep(us=3_000)
        runtime.release_pbox(psid)

    def victim_b():
        """Contends on B; its detections penalize the noisy pBox."""
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(DURATION_S):
            runtime.activate_pbox(psid)
            yield from _annotated_section(runtime, lock_b, 100)
            yield Compute(us=200)
            runtime.freeze_pbox(psid)
            yield Sleep(us=1_000)
        runtime.release_pbox(psid)

    def victim_a():
        """Needs A briefly; suffers when penalties land mid-hold."""
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(DURATION_S):
            runtime.activate_pbox(psid)
            began = yield Now()
            yield from _annotated_section(runtime, lock_a, 100)
            if kernel.now_us > seconds(1):
                latencies_a.append((yield Now()) - began)
            runtime.freeze_pbox(psid)
            yield Sleep(us=2_000)
        runtime.release_pbox(psid)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim_b, name="victim-b")
    kernel.spawn(victim_a, name="victim-a")
    kernel.run(until_us=seconds(DURATION_S))
    return sum(latencies_a) / len(latencies_a)


def run_long_activity_scenario(early_detection):
    """Scenario 2: the victim's activity outlives the whole window."""
    kernel = Kernel(cores=4, seed=4)
    manager = PBoxManager(kernel, early_detection=early_detection)
    runtime = PBoxRuntime(manager, costs=OperationCosts.zero())
    lock = Mutex(kernel, "resource")
    progress = {"steps": 0}

    def noisy():
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(DURATION_S):
            runtime.activate_pbox(psid)
            yield from _annotated_section(runtime, lock, 8_000)
            runtime.freeze_pbox(psid)
            yield Sleep(us=1_000)
        runtime.release_pbox(psid)

    def victim():
        # One activity for the entire run: a batch job of many small
        # annotated steps.  Reactive detection never gets a freeze.
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        runtime.activate_pbox(psid)
        while kernel.now_us < seconds(DURATION_S):
            yield from _annotated_section(runtime, lock, 100)
            yield Compute(us=300)
            progress["steps"] += 1
        runtime.freeze_pbox(psid)
        runtime.release_pbox(psid)

    kernel.spawn(noisy, name="noisy")
    kernel.spawn(victim, name="victim")
    kernel.run(until_us=seconds(DURATION_S))
    return progress["steps"]


def run_matrix():
    return {
        "victim_a_safe_us": run_nested_hold_scenario(True),
        "victim_a_unsafe_us": run_nested_hold_scenario(False),
        "batch_steps_early": run_long_activity_scenario(True),
        "batch_steps_reactive": run_long_activity_scenario(False),
    }


def test_ablations(benchmark):
    rows = once(benchmark, run_matrix)
    safe_us = rows["victim_a_safe_us"]
    unsafe_us = rows["victim_a_unsafe_us"]
    early_steps = rows["batch_steps_early"]
    reactive_steps = rows["batch_steps_reactive"]
    lines = [
        "# Ablation 1: safe penalty timing (Section 4.4.1)",
        "victim-of-A latency, safe timing    : %.2f ms" % (safe_us / 1_000),
        "victim-of-A latency, immediate delay: %.2f ms" % (unsafe_us / 1_000),
        "",
        "# Ablation 2: early (worst-case) detection (Section 4.3.1)",
        "batch victim progress, early detection : %d steps" % early_steps,
        "batch victim progress, reactive only   : %d steps" % reactive_steps,
    ]
    write_result("ablations.txt", lines)

    # Serving penalties while the noisy pBox still holds A makes A's
    # waiters sit through the delay: clearly worse.
    assert unsafe_us > safe_us * 1.5
    # Without early detection, a victim that never freezes is never
    # protected: it makes clearly less progress.
    assert early_steps > reactive_steps * 1.3
