"""Figure 16: end-to-end overhead of pBox under normal workloads.

For each application, runs interference-free workloads at client counts
1 to 64 (read- and write-intensive where the paper does) and compares
average latency with pBox enabled (full instrumentation, manager armed,
Figure 10 operation costs charged) against the vanilla build.  The
paper measures 1.1%-3.6% average overhead per application, occasionally
negative when pBox mitigates minor ambient interference.
"""

from _common import once, write_result

from repro.apps.apachesim import ApacheConfig, ApacheServer
from repro.apps.memcachedsim import MemcachedConfig, MemcachedServer
from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.apps.pgsim import PGConfig, PostgresServer
from repro.apps.varnishsim import VarnishConfig, VarnishServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import FacebookETC, LatencyRecorder, closed_loop_client
from repro.workloads.distributions import OLTPMix

DURATION_S = 2
WARMUP_S = 0.5
CLIENT_COUNTS = (1, 16, 32, 64)
THINK_US = 5_000


def _spawn_clients(kernel, server, count, factory_for, recorders,
                   think_us=THINK_US):
    stop = seconds(DURATION_S)
    for index in range(count):
        rng = kernel.rng("client-%d" % index)
        recorder = LatencyRecorder("client-%d" % index,
                                   record_from_us=seconds(WARMUP_S))
        recorders.append(recorder)
        kernel.spawn(
            closed_loop_client(
                kernel, server.connect("client-%d" % index),
                factory_for(index, rng), recorder, stop_us=stop,
                think_us=think_us, rng=rng,
            ),
            name="client-%d" % index,
        )


def _run(app, mode, clients, pbox):
    kernel = Kernel(cores=4, seed=7)
    manager = PBoxManager(kernel, enabled=pbox)
    runtime = PBoxRuntime(manager, enabled=pbox)
    recorders = []

    if app == "mysql":
        server = MySQLServer(kernel, runtime,
                             MySQLConfig(buffer_pool_blocks=512))

        def factory_for(index, rng):
            mix = OLTPMix(rng, mode="read_only" if mode == "r"
                          else "write_only", tables=64, rows_per_table=8)

            def factory():
                op, table, row = mix.next_request()
                pages = [("t%d" % table, row)]
                if op == "read":
                    return {"kind": "oltp_read", "pages": pages,
                            "work_us": 200, "type": "read"}
                return {"kind": "oltp_write", "pages": pages,
                        "undo_entries": 2, "work_us": 250, "type": "write"}
            return factory

        _spawn_clients(kernel, server, clients, factory_for, recorders)
        kernel.spawn(server.purge_thread_body, name="purge")
    elif app == "postgresql":
        server = PostgresServer(kernel, runtime, PGConfig())
        # Keep the WAL well below saturation at 64 writers so the run
        # measures operation cost, not ambient contention.
        server.wal.flush_floor_us = 150
        server.wal.flush_us_per_kb = 30

        def factory_for(index, rng):
            if mode == "r":
                return lambda: {"kind": "indexed_select", "base_us": 250,
                                "work_us": 100, "type": "read"}
            return lambda: {"kind": "wal_small_commit", "record_kb": 1,
                            "work_us": 150, "type": "write"}

        # Writers pace themselves so the WAL stays below saturation
        # even at 64 clients (the paper's testbed scaled much further).
        _spawn_clients(kernel, server, clients, factory_for, recorders,
                       think_us=20_000 if mode == "w" else THINK_US)
    elif app == "apache":
        server = ApacheServer(kernel, runtime, ApacheConfig(max_workers=24))

        def factory_for(index, rng):
            return lambda: {"kind": "static", "serve_us": 400,
                            "type": "static"}

        _spawn_clients(kernel, server, clients, factory_for, recorders)
    elif app == "varnish":
        server = VarnishServer(kernel, runtime,
                               VarnishConfig(workers=32, sumstat_hold_us=30))
        server.start()

        def factory_for(index, rng):
            return lambda: {"kind": "small_object", "type": "small"}

        _spawn_clients(kernel, server, clients, factory_for, recorders)
    elif app == "memcached":
        server = MemcachedServer(kernel, runtime, MemcachedConfig(workers=8))
        server.start()

        def factory_for(index, rng):
            mix = FacebookETC(rng, pool="USR" if mode == "r" else "VAR")

            def factory():
                op, _key = mix.next_request()
                return {"kind": op, "type": op}
            return factory

        _spawn_clients(kernel, server, clients, factory_for, recorders)
    else:
        raise ValueError(app)

    kernel.run(until_us=seconds(DURATION_S))
    samples = [s for r in recorders for s in r.samples_us]
    return sum(samples) / len(samples)


APP_MODES = {
    "mysql": ("r", "w"),
    "postgresql": ("r", "w"),
    "apache": ("r",),
    "varnish": ("r",),
    "memcached": ("r", "w"),
}


def run_overhead_matrix():
    rows = {}
    for app, modes in APP_MODES.items():
        for mode in modes:
            for clients in CLIENT_COUNTS:
                vanilla = _run(app, mode, clients, pbox=False)
                with_pbox = _run(app, mode, clients, pbox=True)
                rows[(app, mode, clients)] = with_pbox / vanilla - 1.0
    return rows


def test_fig16_overhead(benchmark):
    rows = once(benchmark, run_overhead_matrix)
    lines = ["# Figure 16: pBox overhead on avg latency, normal workloads",
             "app\tsetting\toverhead_pct"]
    per_app = {}
    for (app, mode, clients), overhead in sorted(rows.items()):
        lines.append("%s\t%s%d\t%+.2f%%" % (app, mode, clients,
                                            overhead * 100))
        per_app.setdefault(app, []).append(overhead)
    lines.append("")
    for app, values in per_app.items():
        mean = sum(values) / len(values)
        lines.append("# %s mean overhead: %+.2f%% (paper: 1.1-3.6%%)"
                     % (app, mean * 100))
    write_result("fig16_overhead.txt", lines)

    for app, values in per_app.items():
        mean = sum(values) / len(values)
        assert -0.05 <= mean <= 0.10, (app, mean)
        assert all(v <= 0.20 for v in values), app
