"""Per-request causal tracer overhead guard + the committed snapshot.

Two guards and one artifact:

- **attached**: a :class:`~repro.obs.critpath.CritPathTracer` attached
  to the live bus activates the ``req.*`` client/pool tracepoints plus
  the scheduler/futex/cgroup/penalty points it replays, and records one
  flat tuple per firing.  "Trace every request" only holds if that
  costs the modeled system under 5% -- the Figure 16 normalization used
  by the attribution and telemetry guards: added wall time is charged
  against the modeled second, not the compressed simulator wall time.
- **detached**: a constructed-but-unattached tracer must cost nothing;
  the only residual at each firing site is the inactive-tracepoint
  guard plus the kernel's unconditional request-id bookkeeping.
- **snapshot**: ``results/BENCH_why.json`` records the overhead ratios
  and the guarded case's trace totals (completed requests, retained
  traces, sum-identity check) so future PRs have a baseline to diff.
"""

import gc
import json
import time

from _common import once, write_result

from repro.cases import Solution, get_case, run_case
from repro.obs import CritPathTracer

#: Same pairing as the telemetry guard: c5 (dense request traffic,
#: clear victim/noisy split) carries the strict budget; c17 -- the
#: buffer-pool motivation case with long multi-segment requests -- is
#: reported with a loose regression cap.
GUARDED_CASE = "c5"
OVERHEAD_CASES = ("c5", "c17")
TIMING_DURATION_S = 2
REPEATS = 5
ATTACHED_BUDGET = 0.05   # of the modeled (simulated) second
STRESS_CAP = 0.15        # regression backstop for the second case
DETACHED_BUDGET = 0.02   # measurement noise floor

_cache = {}


def _timed(fn):
    gc.collect()    # start every run from the same allocator state
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _sum_mismatches(tracer):
    """Traces whose segment buckets do not sum to the recorded latency."""
    bad = 0
    for tenant in tracer.tenants():
        for trace in tracer.slowest(tenant):
            if sum(trace.buckets.values()) != trace.latency_us:
                bad += 1
    return bad


def _measure_case(case_id):
    """Best-of interleaved plain / attached / detached wall times."""
    case = get_case(case_id)

    def plain():
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    def attached():
        tracer = CritPathTracer()

        def observer(env):
            tracer.attach(env.kernel.trace)

        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1,
                 observer=observer)
        return tracer

    def detached():
        CritPathTracer()  # never attached
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    plain()                     # warm caches before timing
    tracer = attached()
    completed = tracer.completed_count()
    retained = sum(len(tracer.slowest(t)) for t in tracer.tenants())
    mismatches = _sum_mismatches(tracer)
    best = {}
    for _ in range(REPEATS):
        # Interleaved so clock-speed drift hits every variant equally.
        for name, fn in (("plain", plain), ("attached", attached),
                         ("detached", detached)):
            elapsed = _timed(fn)
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    added_attached = best["attached"] - best["plain"]
    added_detached = best["detached"] - best["plain"]
    return {
        "completed": completed,
        "retained": retained,
        "sum_mismatches": mismatches,
        "plain_s": best["plain"],
        "attached_s": best["attached"],
        "detached_s": best["detached"],
        # Cost charged against the modeled time being traced.
        "attached_ratio": max(0.0, added_attached) / TIMING_DURATION_S,
        "detached_ratio": max(0.0, added_detached) / TIMING_DURATION_S,
        # Raw wall-clock slowdowns, for transparency.
        "attached_wall_ratio": best["attached"] / best["plain"] - 1.0,
        "detached_wall_ratio": best["detached"] / best["plain"] - 1.0,
    }


def overhead():
    if "overhead" not in _cache:
        _cache["overhead"] = {cid: _measure_case(cid)
                              for cid in OVERHEAD_CASES}
    return _cache["overhead"]


def test_why_overhead_within_budget(benchmark):
    measured = once(benchmark, overhead)
    lines = [
        "# Per-request causal tracer overhead at %ds simulated (best of"
        % TIMING_DURATION_S,
        "# %d interleaved runs).  attached%% / detached%% charge the added"
        % REPEATS,
        "# wall time against the modeled second being traced (the same",
        "# normalization as telemetry_overhead.txt); wall% is the raw",
        "# slowdown of the compressed simulator run.  budget:",
        "# attached < %d%%, detached < %d%%."
        % (int(ATTACHED_BUDGET * 100), int(DETACHED_BUDGET * 100)),
        "case\tcompleted\tretained\tmismatches\tattached%\tdetached%\twall%",
    ]
    for case_id, m in measured.items():
        lines.append("%s\t%d\t%d\t%d\t%.2f%%\t%.2f%%\t%+.1f%%" % (
            case_id, m["completed"], m["retained"], m["sum_mismatches"],
            m["attached_ratio"] * 100, m["detached_ratio"] * 100,
            m["attached_wall_ratio"] * 100,
        ))
    write_result("why_overhead.txt", lines)

    for case_id, m in measured.items():
        budget = ATTACHED_BUDGET if case_id == GUARDED_CASE else STRESS_CAP
        assert m["attached_ratio"] < budget, (
            "%s: tracer costs %.2f%% of the modeled second (budget %d%%)"
            % (case_id, m["attached_ratio"] * 100, budget * 100)
        )
        assert m["detached_ratio"] < DETACHED_BUDGET, (
            "%s: detached tracer costs %.2f%% (should be ~0)"
            % (case_id, m["detached_ratio"] * 100)
        )
        # The tracer really observed the run (the cost bought data) and
        # every retained trace satisfies the exact-sum identity.
        assert m["completed"] > (100 if case_id == GUARDED_CASE else 20), \
            case_id
        assert m["retained"] > 0, case_id
        assert m["sum_mismatches"] == 0, case_id


def test_why_snapshot_persisted(benchmark):
    measured = once(benchmark, overhead)
    guarded = measured[GUARDED_CASE]
    snapshot = {
        "duration_s": TIMING_DURATION_S,
        "seed": 1,
        "overhead": {
            "case": GUARDED_CASE,
            "attached_ratio": guarded["attached_ratio"],
            "detached_ratio": guarded["detached_ratio"],
            "attached_wall_ratio": guarded["attached_wall_ratio"],
            "normalization": "added wall time / modeled second",
            "stress": {
                case_id: {"attached_ratio": m["attached_ratio"],
                          "completed": m["completed"]}
                for case_id, m in measured.items()
                if case_id != GUARDED_CASE
            },
        },
        "trace": {
            "completed": guarded["completed"],
            "retained": guarded["retained"],
            "sum_mismatches": guarded["sum_mismatches"],
        },
    }
    write_result("BENCH_why.json",
                 [json.dumps(snapshot, indent=2, sort_keys=True)])
    assert guarded["completed"] > 100
    assert guarded["sum_mismatches"] == 0
