"""Figure 13: penalty action counts, policies, and convergence steps.

For the eight cases the paper instruments (c1, c3, c4, c5, c7, c8, c9,
c10), reports how many penalty actions the manager took, which adaptive
policy produced them, and how many steps the penalty length needed to
reach a fixed point.  The paper's observation -- gap-based convergence
is roughly an order of magnitude faster than score-based -- is asserted
as a shape.
"""

from _common import EVAL_DURATION_S, once, write_result

from repro.cases import Solution, get_case, run_case

CASES = ["c1", "c3", "c4", "c5", "c7", "c8", "c9", "c10"]

_cache = {}


def penalty_runs():
    """pBox runs for the eight instrumented cases."""
    if not _cache:
        for case_id in CASES:
            _cache[case_id] = run_case(
                get_case(case_id), Solution.PBOX,
                duration_s=EVAL_DURATION_S,
            )
    return _cache


def test_fig13_actions_and_convergence(benchmark):
    runs = once(benchmark, penalty_runs)
    lines = ["# Figure 13: penalty actions and convergence per case",
             "case\tactions\tscore\tgap\tinitial\tconverge_steps"]
    for case_id in CASES:
        engine = runs[case_id].manager.penalty_engine
        policies = engine.policy_counts()
        lines.append("%s\t%d\t%d\t%d\t%d\t%.1f" % (
            case_id,
            engine.action_count(),
            policies.get("score", 0),
            policies.get("gap", 0),
            policies.get("initial", 0),
            engine.convergence_steps(),
        ))
    write_result("fig13_penalty_actions.txt", lines)

    for case_id in CASES:
        engine = runs[case_id].manager.penalty_engine
        assert engine.action_count() >= 1, case_id
    # Both adaptive policies are exercised across the case set.
    total_score = sum(runs[c].manager.penalty_engine.policy_counts()
                      .get("score", 0) for c in CASES)
    total_gap = sum(runs[c].manager.penalty_engine.policy_counts()
                    .get("gap", 0) for c in CASES)
    assert total_score > 0
    assert total_gap > 0


def test_fig14_penalty_lengths(benchmark):
    runs = once(benchmark, penalty_runs)
    lines = ["# Figure 14: penalty length distribution (ms) per case",
             "case\tmin\tp50\tp95\tmax"]
    for case_id in CASES:
        lengths = sorted(runs[case_id].manager.penalty_engine.lengths_us())
        if not lengths:
            continue
        lines.append("%s\t%.1f\t%.1f\t%.1f\t%.1f" % (
            case_id,
            lengths[0] / 1_000,
            lengths[len(lengths) // 2] / 1_000,
            lengths[int(len(lengths) * 0.95)] / 1_000,
            lengths[-1] / 1_000,
        ))
    write_result("fig14_penalty_lengths.txt", lines)

    # Penalty lengths stay within the engine's envelope and span a wide
    # range across cases (ms to hundreds of ms in the paper).
    all_lengths = [l for c in CASES
                   for l in runs[c].manager.penalty_engine.lengths_us()]
    assert min(all_lengths) >= 1_000
    assert max(all_lengths) <= 5_000_000
    assert max(all_lengths) >= 10 * min(all_lengths)
