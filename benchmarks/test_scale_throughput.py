"""Scale-throughput guards: the 10k-thread tentpole numbers.

Two load-bearing properties of the scalability work are asserted here
rather than described:

1. **kernel event throughput** -- at 10,000 threads the current kernel
   (timer wheel + batched futex wake + idle-core bitmask dispatch)
   must process its event stream at >= 5x the rate of the pre-PR
   kernel (global event heap, full core scan per dispatch, one
   enqueue+dispatch per woken waiter).  The comparison is in-process
   A/B: ``bind_legacy`` rebinds one kernel instance's hot paths to
   verbatim ports of the old code, and both kernels execute the
   bit-identical scenario (same spec, same seed, same event count).
2. **manager detection cost** -- the manager's per-event cost must not
   grow linearly with the pBox population: going 1,000 -> 10,000
   threads (100 -> 1,000 pBoxes) may at most triple the per-event
   cost (the O(pboxes) blame scan it replaced would grow ~10x), and
   across the whole sweep (10 -> 1,000 pBoxes, 100x) the per-event
   cost may grow at most :data:`SWEEP_GROWTH_CEILING` x.
3. **manager overhead fraction** -- relative overhead at the top of
   the sweep must not exceed the bottom: with dirty-set scans,
   per-tenant shards and batched penalty arming, a 100x bigger
   population may not cost a larger *fraction* of the run.

The full sweep (100 -> 10,000 threads) is recorded to
``results/SCALE.json`` for ``repro report``; under ``REPRO_SMOKE`` a
two-point smoke sweep runs, the throughput and growth floors are
recorded but not asserted (the smoke points are too small to saturate
the host), and the overhead floor is asserted with smoke-sized slack
-- that assertion is the CI ``scale-guard`` leg's teeth.
"""

import os
import time

import pytest

from _common import once
from _legacy_kernel import bind_legacy

from repro.scale.scenario import ScaleSpec, build_scale_scenario
from repro.scale.sweep import (
    DEFAULT_THREAD_COUNTS,
    SMOKE_THREAD_COUNTS,
    run_scale_sweep,
    write_scale_json,
)

pytestmark = pytest.mark.slow

#: The acceptance point: 10,000 threads, 500 tenants, 1,000 pBoxes.
GUARD_THREADS = 10_000
#: Event budget for the A/B runs; big enough that per-run timing noise
#: on a loaded CI host stays well under the measured ~5.5x headroom.
GUARD_EVENT_BUDGET = 120_000
SPEEDUP_FLOOR = 5.0
#: Manager growth guard: 10x the pBoxes may cost at most 3x per event.
MANAGER_GROWTH_CEILING = 3.0
#: Below this per-event cost (us) the manager delta is timer noise on
#: the enabled-vs-disabled wall-clock subtraction, not a real trend.
MANAGER_NOISE_FLOOR_US = 1.0
#: Overhead floor (full sweep): the 10k-thread overhead fraction may
#: exceed the 100-thread one by at most this much -- i.e. relative
#: manager overhead must be flat-or-falling across a 100x pBox growth.
OVERHEAD_SLACK = 0.02
#: Overhead floor (smoke sweep): the two smoke points are tiny, so the
#: floor only guards against gross regressions (top <= 2x bottom plus
#: an absolute cushion for sub-second runs on a noisy CI host).
SMOKE_OVERHEAD_RATIO = 2.0
SMOKE_OVERHEAD_SLACK = 0.05
#: Sub-linear growth guard across the whole sweep: 100x the pBoxes
#: (bottom -> top of the sweep) may cost at most this factor more per
#: event.  A linear-in-pBoxes manager would grow ~100x.
SWEEP_GROWTH_CEILING = 3.0


def _timed_run(threads, legacy):
    """Build + run one A/B variant; returns (wall_s, events)."""
    spec = ScaleSpec(threads, seed=1, manager_enabled=True,
                     event_budget=GUARD_EVENT_BUDGET)
    binder = (lambda k, m: bind_legacy(k, m)) if legacy else None
    scenario = build_scale_scenario(spec, kernel_binder=binder)
    kernel = scenario.kernel
    armed_before = next(kernel._seq)
    start = time.perf_counter()
    scenario.run()
    wall_s = time.perf_counter() - start
    events = next(kernel._seq) - 1 - armed_before
    return wall_s, events


def _ab_throughput(threads, rounds=2):
    """Interleaved new/legacy runs; min wall per variant (noise floor)."""
    new_walls, legacy_walls = [], []
    new_events = legacy_events = None
    for _ in range(rounds):
        wall, new_events = _timed_run(threads, legacy=False)
        new_walls.append(wall)
        wall, legacy_events = _timed_run(threads, legacy=True)
        legacy_walls.append(wall)
    assert new_events == legacy_events, (
        "A/B kernels diverged: %d vs %d events -- the legacy binding is "
        "no longer behaviourally equivalent" % (new_events, legacy_events))
    new_s, legacy_s = min(new_walls), min(legacy_walls)
    return {
        "threads": threads,
        "events": new_events,
        "new_wall_s": round(new_s, 3),
        "legacy_wall_s": round(legacy_s, 3),
        "new_events_per_sec": round(new_events / new_s),
        "legacy_events_per_sec": round(legacy_events / legacy_s),
        "speedup": round(legacy_s / new_s, 2),
        "floor": SPEEDUP_FLOOR,
    }


def test_scale_sweep_and_throughput_guard(benchmark):
    smoke = bool(os.environ.get("REPRO_SMOKE"))
    thread_counts = SMOKE_THREAD_COUNTS if smoke else DEFAULT_THREAD_COUNTS
    guard_threads = thread_counts[-1]

    def measure():
        # A/B guard first: the comparison is the PR's acceptance number,
        # so it runs before the sweep churns the process heap.
        guard = _ab_throughput(guard_threads, rounds=2 if smoke else 3)
        # telemetry=True: each point gains the per-tenant SLO section
        # (schema 2) from its own untimed run -- the timed rounds that
        # feed the manager-cost subtraction stay subscriber-free.
        document = run_scale_sweep(
            thread_counts=thread_counts, seed=1,
            event_budget=GUARD_EVENT_BUDGET,
            rounds=1 if smoke else 3, telemetry=True,
            progress=lambda p: print(
                "  %6d threads: %7d ev/s, manager %+.1f%%"
                % (p["threads"], p["events_per_sec"],
                   100.0 * p["manager"]["overhead_frac"])),
        )
        document["throughput_guard"] = guard
        return document

    document = once(benchmark, measure)
    guard = document["throughput_guard"]
    path = write_scale_json(document)
    print("\nSCALE.json -> %s" % path)
    print("A/B at %d threads: new %d ev/s vs legacy %d ev/s (%.2fx)"
          % (guard["threads"], guard["new_events_per_sec"],
             guard["legacy_events_per_sec"], guard["speedup"]))

    points = {p["threads"]: p for p in document["points"]}
    top = points[guard_threads]
    bottom = points[thread_counts[0]]
    assert top["events"] > 0 and top["requests"] > 0

    # Guard 3 (runs in smoke too -- this is the CI scale-guard leg):
    # relative manager overhead must not grow with the population.
    top_frac = top["manager"]["overhead_frac"]
    bottom_frac = bottom["manager"]["overhead_frac"]
    if smoke:
        overhead_ceiling = (SMOKE_OVERHEAD_RATIO * bottom_frac
                            + SMOKE_OVERHEAD_SLACK)
    else:
        overhead_ceiling = bottom_frac + OVERHEAD_SLACK
    assert top_frac <= overhead_ceiling, (
        "manager overhead grew with scale: %.1f%% at %d threads vs "
        "%.1f%% at %d (ceiling %.1f%%)"
        % (100 * top_frac, top["threads"], 100 * bottom_frac,
           bottom["threads"], 100 * overhead_ceiling))
    if smoke:
        return  # smoke points are too small to saturate the host

    # Guard 1: >= 5x kernel event throughput at 10k threads.
    assert guard["threads"] == GUARD_THREADS
    assert guard["speedup"] >= SPEEDUP_FLOOR, (
        "kernel throughput regressed: %.2fx vs the pre-PR kernel at %d "
        "threads (floor %.1fx)" % (guard["speedup"], guard["threads"],
                                   SPEEDUP_FLOOR))

    # Guard 2: manager per-event cost grows sub-linearly in pBoxes.
    low = points[1000]["manager"]["cost_per_event_us"]
    high = points[GUARD_THREADS]["manager"]["cost_per_event_us"]
    ceiling = max(MANAGER_GROWTH_CEILING * low, MANAGER_NOISE_FLOOR_US)
    assert high <= ceiling, (
        "manager detection cost grew super-linearly: %.3f us/event at "
        "10k threads vs %.3f at 1k (ceiling %.3f)" % (high, low, ceiling))

    # Guard 4: sub-linear growth across the full sweep.  Bottom to top
    # is a 100x pBox growth (10 -> 1,000); per-event cost may grow at
    # most SWEEP_GROWTH_CEILING x over it.
    base = bottom["manager"]["cost_per_event_us"]
    sweep_ceiling = max(SWEEP_GROWTH_CEILING * base, MANAGER_NOISE_FLOOR_US)
    assert high <= sweep_ceiling, (
        "manager cost is not sub-linear in pBoxes: %.3f us/event at %d "
        "threads vs %.3f at %d (ceiling %.3f over a 100x pBox growth)"
        % (high, top["threads"], base, bottom["threads"], sweep_ceiling))
