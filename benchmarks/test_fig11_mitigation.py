"""Table 3 + Figure 11 + Figure 12: the main evaluation.

Runs all 16 real-world interference cases under pBox and the four
baselines (cgroup, PARTIES, Retro, DARC) and regenerates:

- Table 3's interference level ``p`` per case;
- Figure 11's normalized average latency per solution;
- Figure 12's normalized p95 tail latency (pBox and cgroup);
- the Section 6.2 aggregates (cases mitigated, mean reduction ratio,
  noisy-pBox impact).

Shape assertions (not absolute numbers): pBox mitigates at least 14 of
16 cases (the paper: 15), with a high mean reduction ratio; every
baseline mitigates far fewer cases and makes several cases worse.
"""

from _common import once, sweep_evaluations, write_result

from repro.cases import ALL_CASES, Solution, get_case

SOLUTIONS = [Solution.PBOX, Solution.CGROUP, Solution.PARTIES,
             Solution.RETRO, Solution.DARC]

_cache = {}


def evaluations():
    """Evaluate all 16 Table 3 cases once; reused by the three tests.

    Cases without a ``paper_interference_level`` (c17, the Figure 2
    motivating case) are not part of the Table 3 evaluation.  The sweep
    goes through ``repro.runner`` (parallel workers + result cache);
    the numbers are bit-identical to serial ``evaluate_case`` calls.
    """
    if not _cache:
        case_ids = [
            case_id
            for case_id in sorted(ALL_CASES, key=lambda c: int(c[1:]))
            if get_case(case_id).paper_interference_level is not None
        ]
        _cache.update(sweep_evaluations(case_ids, SOLUTIONS))
    return _cache


def test_tab03_interference_levels(benchmark):
    evals = once(benchmark, evaluations)
    lines = ["# Table 3: interference level p = Ti/To - 1 per case",
             "case\tapp\tresource\tp_ours\tp_paper"]
    for case_id, ev in evals.items():
        case = ev.case
        lines.append("%s\t%s\t%s\t%.2f\t%.2f" % (
            case_id, case.app_name, case.virtual_resource,
            ev.interference_level, case.paper_interference_level))
    write_result("tab03_interference_levels.txt", lines)
    for case_id, ev in evals.items():
        assert ev.interference_level > 0.1, case_id
    # The ordering shape: the pool/queue saturation cases dwarf the
    # light lock-contention cases, as in the paper.
    light = {"c2", "c15", "c16"}
    heavy = {"c7", "c8", "c9", "c11", "c12", "c14"}
    worst_light = max(evals[c].interference_level for c in light)
    best_heavy = min(evals[c].interference_level for c in heavy)
    assert best_heavy > worst_light * 5


def test_fig11_mitigation(benchmark):
    evals = once(benchmark, evaluations)
    lines = ["# Figure 11: normalized avg latency (Ts/Ti; < 1 mitigates)",
             "# and reduction ratio r = (Ti-Ts)/(Ti-To) in parentheses",
             "case\tTi_ms\t" + "\t".join(s.value for s in SOLUTIONS)]
    reductions = {solution: {} for solution in SOLUTIONS}
    for case_id, ev in evals.items():
        row = [case_id, "%.2f" % (ev.ti_us / 1_000)]
        for solution in SOLUTIONS:
            norm = ev.normalized_latency(solution)
            ratio = ev.reduction_ratio(solution)
            reductions[solution][case_id] = ratio
            row.append("%.2f(%+.2f)" % (norm, ratio))
        lines.append("\t".join(row))

    def mitigated(solution, threshold=0.05):
        return [c for c, r in reductions[solution].items() if r > threshold]

    def worsened(solution, threshold=-0.05):
        return [c for c, r in reductions[solution].items() if r < threshold]

    summary = []
    for solution in SOLUTIONS:
        helped = mitigated(solution)
        hurt = worsened(solution)
        mean_r = (sum(reductions[solution][c] for c in helped) / len(helped)
                  if helped else 0.0)
        summary.append("%s: mitigates %d/16 (mean r of mitigated %.1f%%), "
                       "worsens %d" % (solution.value, len(helped),
                                       mean_r * 100, len(hurt)))
    lines.append("")
    lines.extend("# " + s for s in summary)

    # Noisy-pBox impact (Section 6.2: +34.1% on average in the paper).
    noisy_impacts = []
    for case_id, ev in evals.items():
        base = ev.interference.noisy_mean_us
        under = ev.solution_runs[Solution.PBOX].noisy_mean_us
        if base and under:
            noisy_impacts.append(under / base - 1.0)
    mean_noisy = sum(noisy_impacts) / len(noisy_impacts)
    lines.append("# pBox noisy-activity slowdown: %+.1f%% mean" %
                 (mean_noisy * 100))
    write_result("fig11_mitigation.txt", lines)

    # --- shape assertions -------------------------------------------------
    pbox_helped = mitigated(Solution.PBOX)
    assert len(pbox_helped) >= 14  # paper: 15 of 16
    pbox_mean = sum(reductions[Solution.PBOX][c] for c in pbox_helped)
    pbox_mean /= len(pbox_helped)
    assert pbox_mean >= 0.6        # paper: 86.3%
    # c16 stays unmitigated (the paper's one failure).
    assert reductions[Solution.PBOX]["c16"] < 0.3
    for solution in SOLUTIONS[1:]:
        helped = mitigated(solution)
        assert len(helped) <= 10
        # pBox dominates every baseline on mean reduction over all cases.
        base_mean = sum(reductions[solution].values()) / 16
        all_pbox_mean = sum(reductions[Solution.PBOX].values()) / 16
        assert all_pbox_mean > base_mean
    # The hardware-resource baselines make several cases worse.
    assert len(worsened(Solution.PARTIES)) >= 3
    assert len(worsened(Solution.CGROUP)) + len(worsened(Solution.DARC)) >= 2


def test_fig12_tail_latency(benchmark):
    evals = once(benchmark, evaluations)
    lines = ["# Figure 12: normalized p95 latency (Ts_p95 / Ti_p95)",
             "case\tpbox\tcgroup"]
    pbox_better = 0
    for case_id, ev in evals.items():
        pbox_norm = ev.normalized_tail(Solution.PBOX)
        cgroup_norm = ev.normalized_tail(Solution.CGROUP)
        if pbox_norm < 0.95:
            pbox_better += 1
        lines.append("%s\t%.2f\t%.2f" % (case_id, pbox_norm, cgroup_norm))
    lines.append("# pBox reduces p95 for %d/16 cases (paper: 13)" %
                 pbox_better)
    write_result("fig12_tail_latency.txt", lines)
    assert pbox_better >= 11
