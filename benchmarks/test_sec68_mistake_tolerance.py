"""Section 6.8: tolerance to missing update_pbox annotations.

Randomly drops 10% of the update_pbox calls in the five MySQL cases
(five different drop patterns) and re-measures mitigation.  The paper
finds 4 of 5 cases still positively mitigated on average, with a
reduction ratio only slightly below correct usage.
"""

import hashlib

from _common import EVAL_DURATION_S, once, write_result

from repro.cases import Solution, get_case, run_case

CASES = ["c1", "c2", "c3", "c4", "c5"]
DROP_SEEDS = range(5)
DROP_RATE = 0.10


def make_drop_filter(seed):
    """Deterministic pseudo-random 10% drop of update_pbox calls."""
    counter = {"n": 0}

    def call_filter(key, event):
        counter["n"] += 1
        digest = hashlib.sha256(
            b"%d/%d" % (seed, counter["n"])
        ).digest()
        return digest[0] >= 256 * DROP_RATE

    return call_filter


def run_matrix():
    results = {}
    for case_id in CASES:
        case = get_case(case_id)
        to_us = run_case(case, Solution.NO_INTERFERENCE,
                         duration_s=EVAL_DURATION_S).victim_mean_us
        ti_us = run_case(case, Solution.NONE,
                         duration_s=EVAL_DURATION_S).victim_mean_us
        correct = run_case(case, Solution.PBOX,
                           duration_s=EVAL_DURATION_S).victim_mean_us
        degraded = []
        for seed in DROP_SEEDS:
            run = run_case(case, Solution.PBOX, duration_s=EVAL_DURATION_S,
                           call_filter=make_drop_filter(seed))
            degraded.append(run.victim_mean_us)

        def ratio(ts_us):
            denominator = ti_us - to_us
            return (ti_us - ts_us) / denominator if denominator else 0.0

        results[case_id] = {
            "correct": ratio(correct),
            "degraded": [ratio(ts) for ts in degraded],
        }
    return results


def test_sec68_mistake_tolerance(benchmark):
    results = once(benchmark, run_matrix)
    lines = ["# Section 6.8: mitigation with 10% of update_pbox calls dropped",
             "case\tr_correct\tr_dropped_mean\tr_dropped_min"]
    positive = 0
    for case_id in CASES:
        correct = results[case_id]["correct"]
        degraded = results[case_id]["degraded"]
        mean_degraded = sum(degraded) / len(degraded)
        if mean_degraded > 0.05:
            positive += 1
        lines.append("%s\t%+.2f\t%+.2f\t%+.2f" % (
            case_id, correct, mean_degraded, min(degraded)))
    lines.append("# %d/5 cases still positively mitigated (paper: 4/5)"
                 % positive)
    write_result("sec68_mistake_tolerance.txt", lines)

    assert positive >= 4
    # The strong cases stay strongly mitigated despite the mistakes.
    for case_id in ("c1", "c3", "c4"):
        degraded = results[case_id]["degraded"]
        assert sum(degraded) / len(degraded) >= 0.5, case_id
