"""Table 4: fixed 10 ms / fixed 100 ms penalties versus adaptive.

Re-runs nine cases (the paper's c1, c3, c4, c5, c6, c7, c8, c9, c10)
with a fixed penalty length in place of the adaptive engine and
compares victim latency.  The paper finds the adaptive design better in
7 of 9 cases; we assert a majority.
"""

from _common import EVAL_DURATION_S, default_jobs, once, write_result

from repro.runner import run_jobs, solution_spec

CASES = ["c1", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10"]

#: Penalty variants per case: spec string (None = adaptive engine).
VARIANTS = [("fixed:10000", "fixed10"), ("fixed:100000", "fixed100"),
            (None, "adaptive")]


def run_matrix():
    """27 independent jobs (9 cases x 3 penalty designs) via the runner."""
    specs = {}
    for case_id in CASES:
        for penalty, label in VARIANTS:
            specs[(case_id, label)] = solution_spec(
                case_id, "pbox", 1, EVAL_DURATION_S, penalty=penalty)
    from repro.runner import code_fingerprint

    fingerprint = code_fingerprint()
    outputs = run_jobs(specs.values(), jobs=default_jobs(),
                       fingerprint=fingerprint)
    results = {}
    for case_id in CASES:
        results[case_id] = tuple(
            outputs[specs[(case_id, label)].key(fingerprint)]
            ["victim_mean_us"]
            for _, label in VARIANTS)
    return results


def test_tab04_adaptive_vs_fixed(benchmark):
    results = once(benchmark, run_matrix)
    lines = ["# Table 4: victim avg latency (ms) under each penalty design",
             "case\tfixed_10ms\tfixed_100ms\tadaptive"]
    beats_fixed10 = 0
    worst_gap = 0.0
    for case_id in CASES:
        fixed10, fixed100, adaptive = results[case_id]
        lines.append("%s\t%.2f\t%.2f\t%.2f" % (
            case_id, fixed10 / 1_000, fixed100 / 1_000, adaptive / 1_000))
        if adaptive <= fixed10 * 1.02:
            beats_fixed10 += 1
        worst_gap = max(worst_gap, adaptive / min(fixed10, fixed100))
    lines.append("# adaptive beats fixed-10ms in %d/9 cases" % beats_fixed10)
    lines.append("# adaptive within %.1fx of the best fixed setting "
                 "everywhere" % worst_gap)
    lines.append("# (paper: adaptive best in 7/9 over 90 s runs; our 6 s "
                 "windows favour a well-placed fixed length -- see "
                 "EXPERIMENTS.md)")
    write_result("tab04_fixed_vs_adaptive.txt", lines)
    # Shape: an ill-sized fixed penalty (10 ms) loses to adaptive in a
    # clear majority, and adaptive is never catastrophically off the
    # best fixed setting despite having no tuning knob.
    assert beats_fixed10 >= 6
    assert worst_gap <= 3.0
