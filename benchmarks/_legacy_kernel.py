"""Bind the pre-timer-wheel kernel hot paths onto a Kernel instance.

The scale-throughput guard compares the current kernel against the
kernel as it was before the scalability work: a single global event
heap, a full core scan on every dispatch, and one enqueue+dispatch per
woken futex waiter.  These functions are verbatim ports of that code
(see git history of ``src/repro/sim/kernel.py``); ``bind_legacy``
monkeypatches them onto one Kernel instance so the A/B runs in-process
on identical scenario specs.

Only the scheduling internals are rebound -- syscall execution, thread
lifecycle, tracepoints, and the cgroup model are the shared,
unmodified code paths.
"""

import heapq
import types

from repro.sim.kernel import _Timer
from repro.sim.thread import ThreadState


def _legacy_post(self, when_us, fn):
    timer = _Timer(fn)
    now = self.clock.now_us
    if when_us < now:
        when_us = now
    heapq.heappush(self._heap, (when_us, next(self._seq), timer))
    return timer


def _legacy_run(self, until_us=None):
    heap = self._heap
    clock = self.clock
    heappop = heapq.heappop
    limit = float("inf") if until_us is None else until_us
    while heap:
        when = heap[0][0]
        if when > limit:
            break
        timer = heappop(heap)[2]
        if timer.cancelled:
            continue
        if when > clock.now_us:
            clock.now_us = int(when)
        timer.fn()
    if until_us is not None and until_us > self.now_us:
        self.clock.advance_to(until_us)


def _legacy_futex_wake(self, key, n=1):
    if self.wake_filter is not None and not self.wake_filter(key, n):
        return 0
    woken = self.futexes.pop_waiters(key, n, waker=self.current_thread)
    for thread in woken:
        if thread.wakeup_event is not None:
            thread.wakeup_event.cancel()
            thread.wakeup_event = None
        thread.wait_key = None
        self._enqueue(thread, compute_us=0, resume_value=True)
    if woken:
        self._dispatch()
    return len(woken)


def _legacy_dispatch(self):
    run_queue = self.run_queue
    for core in self.cores:
        if core.running is not None:
            continue
        if not run_queue._queue:
            return
        thread = run_queue.pick_for_core(core)
        if thread is None:
            continue
        self._start_slice(core, thread)


def _legacy_start_slice(self, core, thread):
    now = self.clock.now_us
    group = thread.cgroup or self.root_cgroup
    for released in group.refresh(now):
        self.run_queue.push(released)
    remaining = group.remaining_us(now)
    if remaining == 0:
        self._throttle(thread, group)
        self._dispatch()
        return
    slice_us = min(self.quantum_us, thread.pending_compute_us)
    if remaining is not None:
        slice_us = min(slice_us, remaining)
    core.running = thread
    thread.state = ThreadState.RUNNING
    self.stats["context_switches"] += 1
    if self._tp_switch.active:
        self._tp_switch.fire(now, tid=thread.tid,
                             name=thread.name, core=core.index,
                             slice_us=slice_us)
    timer = core._slice_timer
    timer.cancelled = False
    heapq.heappush(self._heap, (now + slice_us, next(self._seq), timer))
    core.slice_end_event = timer
    core._slice_started_us = now


def _legacy_slice_end(self, core):
    thread = core.running
    core.running = None
    core.slice_end_event = None
    ran = self.clock.now_us - core._slice_started_us
    if ran:
        core.busy_us += ran
        thread.cpu_time_us += ran
        group = thread.cgroup or self.root_cgroup
        group.charge(ran)
        thread.pending_compute_us -= ran
    if self._tp_switchout.active:
        self._tp_switchout.fire(self.clock.now_us, tid=thread.tid,
                                core=core.index, ran_us=ran,
                                done=thread.pending_compute_us <= 0)
    if thread.pending_compute_us > 0:
        self.run_queue.push(thread)
        self._dispatch()
        return
    self._dispatch()
    self._resume(thread)


def _legacy_attribute_blame(self, waiter, key, defer_us):
    blamed_psid = None
    for other in self._pboxes.values():
        if other is not waiter and key in other.holders:
            blamed_psid = other.psid
            break
    if blamed_psid is None:
        releaser = self.last_releaser.get(key)
        if releaser is not None and releaser[0] != waiter.psid:
            blamed_psid = releaser[0]
    if blamed_psid is not None:
        slot = (blamed_psid, key)
        waiter.blame[slot] = waiter.blame.get(slot, 0) + defer_us


def bind_legacy(kernel, manager=None):
    """Rebind ``kernel`` (and optionally ``manager``) to pre-PR paths."""
    kernel._heap = []
    kernel.post = types.MethodType(_legacy_post, kernel)
    kernel.run = types.MethodType(_legacy_run, kernel)
    kernel.futex_wake = types.MethodType(_legacy_futex_wake, kernel)
    kernel._dispatch = types.MethodType(_legacy_dispatch, kernel)
    kernel._start_slice = types.MethodType(_legacy_start_slice, kernel)
    kernel._slice_end = types.MethodType(_legacy_slice_end, kernel)
    # core._slice_timer closures call self._slice_end dynamically, so
    # the existing per-core timers dispatch to the legacy version.
    if manager is not None:
        if hasattr(manager, "add_shard_patch"):
            # Sharded facade: shards are created lazily after this
            # binder runs, so register a patch applied to each one.
            manager.add_shard_patch(lambda shard: setattr(
                shard, "_attribute_blame",
                types.MethodType(_legacy_attribute_blame, shard)))
        else:
            manager._attribute_blame = types.MethodType(
                _legacy_attribute_blame, manager)
    return kernel
