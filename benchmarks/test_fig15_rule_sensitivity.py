"""Figure 15: interference reduction versus the isolation rule setting.

Runs ten cases (the paper's c1-c5, c7-c10, c12) at isolation rules from
25% to 125% and reports the reduction ratio at each setting.  The
paper's shape: a more relaxed (larger) rule generally decreases
mitigation effectiveness, with the mild case c2 the most sensitive.
"""

from _common import default_jobs, once, write_result

from repro.runner import (
    baseline_spec,
    code_fingerprint,
    interference_spec,
    run_jobs,
    solution_spec,
)

CASES = ["c1", "c2", "c3", "c4", "c5", "c7", "c8", "c9", "c10", "c12"]
RULES = [25, 50, 75, 100, 125]
DURATION_S = 5


def run_sweep():
    """70 independent jobs (10 cases x {To, Ti, 5 rules}) via the runner."""
    specs = {}
    for case_id in CASES:
        specs[(case_id, "to")] = baseline_spec(case_id, 1, DURATION_S)
        specs[(case_id, "ti")] = interference_spec(case_id, 1, DURATION_S)
        for rule in RULES:
            specs[(case_id, rule)] = solution_spec(
                case_id, "pbox", 1, DURATION_S, isolation_level=rule)
    fingerprint = code_fingerprint()
    outputs = run_jobs(specs.values(), jobs=default_jobs(),
                       fingerprint=fingerprint)

    def mean_us(tag):
        return outputs[specs[tag].key(fingerprint)]["victim_mean_us"]

    results = {}
    for case_id in CASES:
        to_us = mean_us((case_id, "to"))
        ti_us = mean_us((case_id, "ti"))
        denominator = ti_us - to_us
        results[case_id] = {
            rule: ((ti_us - mean_us((case_id, rule))) / denominator
                   if denominator else 0.0)
            for rule in RULES
        }
    return results


def test_fig15_rule_sensitivity(benchmark):
    results = once(benchmark, run_sweep)
    lines = ["# Figure 15: reduction ratio vs isolation rule",
             "case\t" + "\t".join("%d%%" % r for r in RULES)]
    for case_id in CASES:
        lines.append(case_id + "\t" + "\t".join(
            "%+.2f" % results[case_id][rule] for rule in RULES))
    mean_by_rule = {
        rule: sum(results[c][rule] for c in CASES) / len(CASES)
        for rule in RULES
    }
    lines.append("mean\t" + "\t".join(
        "%+.2f" % mean_by_rule[rule] for rule in RULES))
    write_result("fig15_rule_sensitivity.txt", lines)

    # Shape: tight rules mitigate at least as well as the most relaxed
    # setting on average, and the strictest setting mitigates strongly.
    assert mean_by_rule[25] >= mean_by_rule[125] - 0.05
    assert mean_by_rule[25] >= 0.5
    # The severe cases stay well-mitigated even at 125% (their Tf is far
    # above any of these goals, as in the paper).
    for case_id in ("c7", "c8", "c9"):
        assert results[case_id][125] >= 0.5
