"""Figure 15: interference reduction versus the isolation rule setting.

Runs ten cases (the paper's c1-c5, c7-c10, c12) at isolation rules from
25% to 125% and reports the reduction ratio at each setting.  The
paper's shape: a more relaxed (larger) rule generally decreases
mitigation effectiveness, with the mild case c2 the most sensitive.
"""

from _common import once, write_result

from repro.cases import Solution, get_case, run_case

CASES = ["c1", "c2", "c3", "c4", "c5", "c7", "c8", "c9", "c10", "c12"]
RULES = [25, 50, 75, 100, 125]
DURATION_S = 5


def run_sweep():
    results = {}
    for case_id in CASES:
        case = get_case(case_id)
        baseline = run_case(case, Solution.NO_INTERFERENCE,
                            duration_s=DURATION_S)
        interference = run_case(case, Solution.NONE, duration_s=DURATION_S)
        to_us = baseline.victim_mean_us
        ti_us = interference.victim_mean_us
        per_rule = {}
        for rule in RULES:
            run = run_case(case, Solution.PBOX, duration_s=DURATION_S,
                           isolation_level=rule)
            denominator = ti_us - to_us
            ratio = ((ti_us - run.victim_mean_us) / denominator
                     if denominator else 0.0)
            per_rule[rule] = ratio
        results[case_id] = per_rule
    return results


def test_fig15_rule_sensitivity(benchmark):
    results = once(benchmark, run_sweep)
    lines = ["# Figure 15: reduction ratio vs isolation rule",
             "case\t" + "\t".join("%d%%" % r for r in RULES)]
    for case_id in CASES:
        lines.append(case_id + "\t" + "\t".join(
            "%+.2f" % results[case_id][rule] for rule in RULES))
    mean_by_rule = {
        rule: sum(results[c][rule] for c in CASES) / len(CASES)
        for rule in RULES
    }
    lines.append("mean\t" + "\t".join(
        "%+.2f" % mean_by_rule[rule] for rule in RULES))
    write_result("fig15_rule_sensitivity.txt", lines)

    # Shape: tight rules mitigate at least as well as the most relaxed
    # setting on average, and the strictest setting mitigates strongly.
    assert mean_by_rule[25] >= mean_by_rule[125] - 0.05
    assert mean_by_rule[25] >= 0.5
    # The severe cases stay well-mitigated even at 125% (their Tf is far
    # above any of these goals, as in the paper).
    for case_id in ("c7", "c8", "c9"):
        assert results[case_id][125] >= 0.5
