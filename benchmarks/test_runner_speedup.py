"""Runner speedup guards: parallel vs serial, cached vs cold, kernel rate.

Three properties of the experiment runner are load-bearing enough to
guard with assertions rather than prose:

1. **parallel speedup** — a ``--jobs 4`` registry sweep must beat the
   serial sweep by >= 2x when at least 4 cores are available.  The
   threshold scales down with the host's core count (CI containers are
   sometimes single-core, where a pool can only add overhead; there we
   assert the overhead stays bounded instead).
2. **cache replay** — re-running the identical sweep must take < 10%
   of the cold run's wall time: replays read JSON objects, they never
   simulate.
3. **bit-identity** — the parallel and serial sweeps must agree on
   every To/Ti/Ts to the last bit, or the cache and the figures built
   on it would silently depend on the worker count.

The kernel event-loop microbenchmark at the end records the simulator's
syscall throughput (the hot path tuned in ``repro.sim.kernel``) so the
next hot-path pass has a measured baseline in ``results/``.
"""

import os
import time

from _common import once, write_result

from repro.cases import Solution, get_case, run_case
from repro.runner import ResultCache, run_sweep, sweep_case_ids
from repro.sim.thread import reset_thread_ids

#: Short per-job duration keeps the three sweeps (serial, parallel,
#: cached) to tens of seconds of wall clock while still dominating the
#: pool's fork/IPC overhead.
DURATION_S = 2
PARALLEL_JOBS = 4


def _speedup_floor(cores):
    """Required parallel-over-serial speedup for this host.

    >= 4 cores is the configuration the acceptance criterion names
    (2x); 2-3 cores can still demonstrably overlap work; a single core
    can only lose to pool overhead, so we merely bound the loss.
    """
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.3
    return 0.6


def test_runner_speedup_and_cache(benchmark, tmp_path):
    case_ids = sweep_case_ids()
    cache = ResultCache(str(tmp_path / "cache"))

    def measure():
        timings = {}
        started = time.perf_counter()
        serial = run_sweep(case_ids=case_ids, solutions=[Solution.PBOX],
                           duration_s=DURATION_S, jobs=1, use_cache=False)
        timings["serial_s"] = time.perf_counter() - started

        started = time.perf_counter()
        parallel = run_sweep(case_ids=case_ids, solutions=[Solution.PBOX],
                             duration_s=DURATION_S, jobs=PARALLEL_JOBS,
                             cache=cache)
        timings["parallel_s"] = time.perf_counter() - started

        started = time.perf_counter()
        cached = run_sweep(case_ids=case_ids, solutions=[Solution.PBOX],
                           duration_s=DURATION_S, jobs=PARALLEL_JOBS,
                           cache=cache)
        timings["cached_s"] = time.perf_counter() - started
        return serial, parallel, cached, timings

    serial, parallel, cached, timings = once(benchmark, measure)
    cores = os.cpu_count() or 1
    floor = _speedup_floor(cores)
    speedup = timings["serial_s"] / timings["parallel_s"]
    cached_fraction = timings["cached_s"] / timings["parallel_s"]

    lines = [
        "# Runner speedup: %d-job registry sweep (%d cases, duration %ss)"
        % (parallel.stats["total"], len(case_ids), DURATION_S),
        "metric\tvalue",
        "host_cores\t%d" % cores,
        "serial_wall_s\t%.2f" % timings["serial_s"],
        "parallel_wall_s\t%.2f" % timings["parallel_s"],
        "parallel_speedup\t%.2fx" % speedup,
        "speedup_floor\t%.1fx" % floor,
        "cached_wall_s\t%.3f" % timings["cached_s"],
        "cached_fraction\t%.1f%%" % (100.0 * cached_fraction),
        "cache_hits\t%d/%d" % (cached.stats["cache_hits"],
                               cached.stats["total"]),
    ]
    write_result("runner_speedup.txt", lines)

    # 1. parallel speedup (core-scaled floor; 2x is the >=4-core bar).
    assert speedup >= floor, (
        "parallel sweep %.2fx vs floor %.1fx on %d cores"
        % (speedup, floor, cores))
    # 2. cached replay under 10% of the cold run.
    assert cached.stats["cache_hits"] == cached.stats["total"]
    assert cached_fraction < 0.10, (
        "cached replay took %.1f%% of the cold run"
        % (100.0 * cached_fraction))
    # 3. bit-identical results, serial vs parallel vs cache replay.
    for key, serial_ev in serial.evaluations.items():
        for other in (parallel, cached):
            other_ev = other.evaluations[key]
            assert other_ev.to_us == serial_ev.to_us, key
            assert other_ev.ti_us == serial_ev.ti_us, key
            assert (other_ev.ts_us(Solution.PBOX)
                    == serial_ev.ts_us(Solution.PBOX)), key


def test_kernel_event_loop_rate(benchmark):
    """Record the kernel hot path's syscall throughput in results/."""
    case = get_case("c1")

    def run_once():
        reset_thread_ids()
        run = run_case(case, Solution.NONE, duration_s=DURATION_S)
        return run.env.kernel.stats

    # Warm up once, then take the best of three (least-noise estimate).
    run_once()
    best_s, stats = None, None
    for _ in range(3):
        started = time.perf_counter()
        stats = run_once()
        elapsed = time.perf_counter() - started
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    rate = stats["syscalls"] / best_s
    lines = [
        "# Kernel event-loop microbenchmark (c1 vanilla, duration %ss)"
        % DURATION_S,
        "metric\tvalue",
        "syscalls\t%d" % stats["syscalls"],
        "context_switches\t%d" % stats["context_switches"],
        "wall_s_best_of_3\t%.3f" % best_s,
        "syscalls_per_s\t%.0f" % rate,
    ]
    write_result("runner_kernel_rate.txt", lines)
    once(benchmark, lambda: None)
    # Loose sanity floor -- an accidental O(n^2) regression in the run
    # loop drops throughput by orders of magnitude, not percent.
    assert rate > 50_000
