"""Table 5: static analyzer detection rates per application.

Runs Algorithm 2 over the five application corpora (mini-C programs
with the same mix of waiting patterns as the real codebases) and checks
the manual-vs-detected counts against the paper's Table 5: 70% for
MySQL, 110% for PostgreSQL (the analyzer finds four sites the manual
porting missed), 66% for Apache, 75% for Varnish, 85% for Memcached.
"""

from _common import once, write_result

from repro.analyzer.corpus import table5

PAPER = {
    "mysql": (57, 40),
    "postgresql": (40, 44),
    "apache": (12, 8),
    "varnish": (16, 12),
    "memcached": (14, 12),
}


def test_tab05_analyzer_detection(benchmark):
    rows = once(benchmark, table5)
    lines = ["# Table 5: state events found manually vs by the analyzer",
             "app\tmanual\tdetected\tratio\tpaper_manual\tpaper_detected"]
    for row in rows:
        paper_manual, paper_detected = PAPER[row["app"]]
        lines.append("%s\t%d\t%d\t%.0f%%\t%d\t%d" % (
            row["app"], row["manual"], row["detected"],
            row["ratio"] * 100, paper_manual, paper_detected))
    write_result("tab05_analyzer.txt", lines)

    for row in rows:
        paper_manual, paper_detected = PAPER[row["app"]]
        assert row["manual"] == paper_manual
        assert row["detected"] == paper_detected
    # Aggregate: the analyzer finds ~81% of manual events on average.
    ratios = [row["ratio"] for row in rows]
    assert 0.75 <= sum(ratios) / len(ratios) <= 0.90
