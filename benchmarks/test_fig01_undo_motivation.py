"""Figure 1: client B's latency spikes when the UNDO purge triggers.

Reproduces the motivation experiment of Section 2.1 (case 1 there, case
c5 of Table 3): a read client A holds transactions open; when A commits,
the purge thread's latch-holding batches multiply client B's write
latency.  The regenerated series shows B's per-second average latency
with the same cliff the paper's Figure 1 shows ~10 s after A joins.
"""

from _common import once, write_result

from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client

JOIN_S = 4
DURATION_S = 14


def run_timeline():
    kernel = Kernel(cores=2, seed=1)
    manager = PBoxManager(kernel, enabled=False)
    runtime = PBoxRuntime(manager, enabled=False)
    server = MySQLServer(kernel, runtime,
                         MySQLConfig(purge_batch=16, purge_entry_us=400))
    stop = seconds(DURATION_S)
    recorder = LatencyRecorder("B")
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("B"),
            lambda: {"kind": "undo_write", "undo_entries": 10, "work_us": 200},
            recorder, stop_us=stop, think_us=2_000,
            rng=kernel.rng("b-think"),
        ),
        name="clientB",
    )
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("A"),
            lambda: {"kind": "long_txn_read", "hold_open_us": seconds(2)},
            LatencyRecorder("A"), stop_us=stop, think_us=20_000,
            rng=kernel.rng("a-think"), start_us=seconds(JOIN_S),
        ),
        name="clientA",
    )
    kernel.spawn(server.purge_thread_body, name="purge")
    kernel.run(until_us=stop)
    return recorder.timeline().mean_series()


def test_fig01_undo_purge_latency_cliff(benchmark):
    series = once(benchmark, run_timeline)
    lines = ["# Figure 1: client B avg latency (ms) per second",
             "# read-intensive client A joins at t=%ds" % JOIN_S,
             "time_s\tlatency_ms"]
    for t, mean_us in series:
        lines.append("%.0f\t%.2f" % (t, mean_us / 1_000))
    write_result("fig01_undo_motivation.txt", lines)

    before = [v for t, v in series if t < JOIN_S]
    after = [v for t, v in series if t >= JOIN_S + 2]
    baseline = sum(before) / len(before)
    peak = max(after)
    # The paper shows ~4x; the purge cliff must be pronounced.
    assert peak >= 3 * baseline
