"""Figure 3: the read client slows 3x when a fifth client connects.

Reproduces the third motivation experiment of Section 2.1 (case c3):
four clients share innodb_thread_concurrency = 4 slots; when a fifth
write-intensive client joins, the read client's latency triples even
though it queries a different table.
"""

from _common import once, write_result

from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client

JOIN_S = 5
DURATION_S = 12


def run_timeline():
    kernel = Kernel(cores=4, seed=1)
    manager = PBoxManager(kernel, enabled=False)
    runtime = PBoxRuntime(manager, enabled=False)
    server = MySQLServer(
        kernel, runtime,
        MySQLConfig(thread_concurrency=4, ticket_grant=4),
    )
    stop = seconds(DURATION_S)
    for index in range(3):
        kernel.spawn(
            closed_loop_client(
                kernel, server.connect("writer-%d" % index),
                lambda: {"kind": "write", "work_us": 3_000},
                LatencyRecorder("writer-%d" % index), stop_us=stop,
                think_us=500, rng=kernel.rng("writer-%d" % index),
            ),
            name="writer-%d" % index,
        )
    reader = LatencyRecorder("reader")
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("reader"),
            lambda: {"kind": "read", "work_us": 300},
            reader, stop_us=stop, think_us=500, rng=kernel.rng("reader"),
        ),
        name="reader",
    )
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("fifth"),
            lambda: {"kind": "write", "work_us": 3_000},
            LatencyRecorder("fifth"), stop_us=stop, think_us=500,
            rng=kernel.rng("fifth"), start_us=seconds(JOIN_S),
        ),
        name="fifth",
    )
    kernel.run(until_us=stop)
    return reader.timeline().mean_series()


def test_fig03_fifth_client_slows_reader(benchmark):
    series = once(benchmark, run_timeline)
    lines = ["# Figure 3: read client avg latency (ms) per second",
             "# fifth write-intensive client connects at t=%ds" % JOIN_S,
             "time_s\tlatency_ms"]
    for t, mean_us in series:
        lines.append("%.0f\t%.3f" % (t, mean_us / 1_000))
    write_result("fig03_tickets_motivation.txt", lines)

    before = [v for t, v in series if 1 <= t < JOIN_S]
    after = [v for t, v in series if t >= JOIN_S + 1]
    baseline = sum(before) / len(before)
    raised = sum(after) / len(after)
    # The paper measures ~3x; require at least 2x.
    assert raised >= 2 * baseline
