"""Always-on telemetry overhead guard + the committed snapshot.

Two guards and one artifact:

- **attached**: the full telemetry pipeline -- per-tenant quantile
  sketches, 100ms windowed series, burn-rate SLO evaluation, and the
  ``slo.*`` derived tracepoints -- subscribed to the live bus and fed
  by every recorder.  "Always-on" only holds if that costs the modeled
  system under 5%, the same Figure 16 normalization the attribution
  profiler guard uses: the added wall time is charged against the
  modeled second, not against the compressed simulator wall time.
- **detached**: a constructed-but-unattached pipeline must cost
  nothing; the only residual at each firing site is the
  inactive-tracepoint guard, plus the ``sink is None`` check in each
  recorder.
- **snapshot**: ``results/BENCH_telemetry.json`` records the overhead
  ratios and the guarded case's telemetry totals (windows, requests,
  SLO events) so future PRs have a baseline to diff against.
"""

import gc
import json
import time

from _common import once, write_result

from repro.cases import Solution, get_case, run_case
from repro.obs import BurnRatePolicy, SLObjective, SLOEvaluator, TelemetryPipeline

#: c5 is the watch-CLI flagship (clear victim/noisy split, dense
#: request traffic) and carries the strict budget; c17 -- the
#: buffer-pool motivation case the attribution guard also tracks -- is
#: reported with a loose regression cap.
GUARDED_CASE = "c5"
OVERHEAD_CASES = ("c5", "c17")
TIMING_DURATION_S = 2
REPEATS = 5
ATTACHED_BUDGET = 0.05   # of the modeled (simulated) second
STRESS_CAP = 0.15        # regression backstop for the second case
DETACHED_BUDGET = 0.02   # measurement noise floor

_cache = {}


def _evaluator(case):
    """The watch-CLI SLO configuration for ``case`` (victim objective)."""
    objectives = {}
    if case.nominal_baseline_us:
        objectives["victim"] = SLObjective(
            latency_us=int(case.nominal_baseline_us * 3),
            slowdown=3.0, target=0.9)
    return SLOEvaluator(
        objectives=objectives,
        default=SLObjective(slowdown=5.0, target=0.9),
        policy=BurnRatePolicy(short_windows=3, long_windows=10,
                              threshold=2.0, clear_below=1.0),
    )


def _timed(fn):
    gc.collect()    # start every run from the same allocator state
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_case(case_id):
    """Best-of interleaved plain / attached / detached wall times."""
    case = get_case(case_id)

    def plain():
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    def attached():
        pipeline = TelemetryPipeline(evaluator=_evaluator(case))

        def observer(env):
            env.telemetry = pipeline
            pipeline.attach(env.kernel.trace, manager=env.runtime.manager)

        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1,
                 observer=observer)
        return pipeline

    def detached():
        TelemetryPipeline(evaluator=_evaluator(case))  # never attached
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    plain()                     # warm caches before timing
    snapshot = attached().snapshot()
    requests = sum(t["requests"] for t in snapshot["tenants"])
    best = {}
    for _ in range(REPEATS):
        # Interleaved so clock-speed drift hits every variant equally.
        for name, fn in (("plain", plain), ("attached", attached),
                         ("detached", detached)):
            elapsed = _timed(fn)
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    added_attached = best["attached"] - best["plain"]
    added_detached = best["detached"] - best["plain"]
    return {
        "windows": len(snapshot["rows"]),
        "requests": requests,
        "slo_events": len(snapshot["slo_events"]),
        "plain_s": best["plain"],
        "attached_s": best["attached"],
        "detached_s": best["detached"],
        # Cost charged against the modeled time being monitored.
        "attached_ratio": max(0.0, added_attached) / TIMING_DURATION_S,
        "detached_ratio": max(0.0, added_detached) / TIMING_DURATION_S,
        # Raw wall-clock slowdowns, for transparency.
        "attached_wall_ratio": best["attached"] / best["plain"] - 1.0,
        "detached_wall_ratio": best["detached"] / best["plain"] - 1.0,
    }


def overhead():
    if "overhead" not in _cache:
        _cache["overhead"] = {cid: _measure_case(cid)
                              for cid in OVERHEAD_CASES}
    return _cache["overhead"]


def test_telemetry_overhead_within_budget(benchmark):
    measured = once(benchmark, overhead)
    lines = [
        "# SLO telemetry pipeline overhead at %ds simulated (best of %d"
        % (TIMING_DURATION_S, REPEATS),
        "# interleaved runs).  attached%% / detached%% charge the added",
        "# wall time against the modeled second being monitored (the",
        "# same normalization as profile_overhead.txt); wall%% is the",
        "# raw slowdown of the compressed simulator run.  budget:",
        "# attached < %d%%, detached < %d%%."
        % (int(ATTACHED_BUDGET * 100), int(DETACHED_BUDGET * 100)),
        "case\twindows\trequests\tslo_events\tattached%\tdetached%\twall%",
    ]
    for case_id, m in measured.items():
        lines.append("%s\t%d\t%d\t%d\t%.2f%%\t%.2f%%\t%+.1f%%" % (
            case_id, m["windows"], m["requests"], m["slo_events"],
            m["attached_ratio"] * 100, m["detached_ratio"] * 100,
            m["attached_wall_ratio"] * 100,
        ))
    write_result("telemetry_overhead.txt", lines)

    for case_id, m in measured.items():
        budget = ATTACHED_BUDGET if case_id == GUARDED_CASE else STRESS_CAP
        assert m["attached_ratio"] < budget, (
            "%s: telemetry costs %.2f%% of the modeled second (budget %d%%)"
            % (case_id, m["attached_ratio"] * 100, budget * 100)
        )
        assert m["detached_ratio"] < DETACHED_BUDGET, (
            "%s: detached pipeline costs %.2f%% (should be ~0)"
            % (case_id, m["detached_ratio"] * 100)
        )
        # The pipeline really observed the run (the cost bought data).
        # c17's victim is a slow scan client, so its floor is lower.
        assert m["windows"] >= 10, case_id
        assert m["requests"] > (100 if case_id == GUARDED_CASE else 20), case_id


def test_telemetry_snapshot_persisted(benchmark):
    measured = once(benchmark, overhead)
    guarded = measured[GUARDED_CASE]
    snapshot = {
        "duration_s": TIMING_DURATION_S,
        "seed": 1,
        "overhead": {
            "case": GUARDED_CASE,
            "attached_ratio": guarded["attached_ratio"],
            "detached_ratio": guarded["detached_ratio"],
            "attached_wall_ratio": guarded["attached_wall_ratio"],
            "normalization": "added wall time / modeled second",
            "stress": {
                case_id: {"attached_ratio": m["attached_ratio"],
                          "windows": m["windows"]}
                for case_id, m in measured.items()
                if case_id != GUARDED_CASE
            },
        },
        "telemetry": {
            "windows": guarded["windows"],
            "requests": guarded["requests"],
            "slo_events": guarded["slo_events"],
        },
    }
    write_result("BENCH_telemetry.json",
                 [json.dumps(snapshot, indent=2, sort_keys=True)])
    assert guarded["windows"] >= 10
    assert guarded["requests"] > 100
