"""Checkpoint overhead: cheap to take, small to store.

Two promises from the checkpoint/restore PR:

- **runtime**: taking a checkpoint -- full state walk, canonical JSON,
  state digest, artifact construction -- at the default 250 ms cadence
  costs less than 5% of the plain run's wall clock per modeled second.
  The per-checkpoint cost is measured directly (best-of batch on a
  finished run's state) because it is ~100x smaller than run-to-run
  wall-clock jitter; the whole-run A/B wall clocks are reported as
  context;
- **footprint**: one compressed checkpoint artifact of a 10,000-thread
  scale scenario stays under 256 KiB (columnar thread walk, truncated
  RNG stream fingerprints).
"""

import time
import zlib

from _common import once, write_result

from repro.ckpt import CADENCE_US, checkpoint_run
from repro.ckpt.snapshot import Checkpoint, take_checkpoint
from repro.ckpt.state import canonical_json, state_digest, walk_state
from repro.obs.golden import run_golden_case

CASE_ID = "c1"
DURATION_S = 1.5
REPEATS = 5
CHECKPOINT_BATCH = 30
OVERHEAD_BUDGET = 0.05
SNAPSHOT_BUDGET_BYTES = 256 * 1024
SCALE_THREADS = 10_000


def _best(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _per_checkpoint_s(outcome):
    """Direct cost of one checkpoint on the finished run's state."""
    env = outcome["run"].env
    digest = outcome["driver"].digest
    spec = outcome["driver"].spec

    def batch():
        for _ in range(CHECKPOINT_BATCH):
            take_checkpoint(env, spec, digest)

    return _best(batch) / CHECKPOINT_BATCH


def _scale_snapshot_bytes():
    """Compressed artifact size of a 10k-thread scale checkpoint."""
    from repro.scale.scenario import ScaleSpec, build_scale_scenario

    spec = ScaleSpec(SCALE_THREADS, seed=1, event_budget=120_000)
    scenario = build_scale_scenario(spec)
    kernel = scenario.kernel
    kernel.run(until_us=spec.duration_us)
    walk = walk_state(kernel, scenario.manager)
    checkpoint = Checkpoint(
        spec={"case_id": "scale-%d" % SCALE_THREADS, "seed": 1},
        cut_us=kernel.now_us, events=0, cut_digest="",
        trace_checkpoints=[], state=walk, state_dig=state_digest(walk))
    payload = zlib.compress(
        canonical_json(checkpoint.to_json_dict()).encode(), 6)
    return len(payload), len(kernel.threads)


def test_checkpoint_overhead_and_footprint(benchmark):
    def run():
        run_golden_case(CASE_ID, DURATION_S, 1)   # warm caches
        plain_s = _best(lambda: run_golden_case(CASE_ID, DURATION_S, 1))
        outcome = checkpoint_run(CASE_ID, duration_s=DURATION_S, seed=1,
                                 cadence_us=CADENCE_US)
        ckpt_s = _best(lambda: checkpoint_run(CASE_ID,
                                              duration_s=DURATION_S,
                                              seed=1,
                                              cadence_us=CADENCE_US))
        per_ckpt_s = _per_checkpoint_s(outcome)
        artifact_bytes, thread_count = _scale_snapshot_bytes()
        return plain_s, ckpt_s, per_ckpt_s, artifact_bytes, thread_count

    (plain_s, ckpt_s, per_ckpt_s, artifact_bytes,
     thread_count) = once(benchmark, run)
    barriers_per_modeled_s = 1e6 / CADENCE_US
    cost_per_modeled_s = per_ckpt_s * barriers_per_modeled_s
    wall_per_modeled_s = plain_s / DURATION_S
    overhead = cost_per_modeled_s / wall_per_modeled_s

    lines = [
        "# Checkpoint cost at %dms cadence on %s (%.1fs modeled)."
        % (CADENCE_US // 1_000, CASE_ID, DURATION_S),
        "# Budget: checkpointing spends <%d%% of the plain run's wall"
        % int(OVERHEAD_BUDGET * 100),
        "# clock per modeled second (asserted on the direct",
        "# per-checkpoint measurement; A/B wall clocks are context).",
        "metric\tvalue",
        "per_checkpoint_ms\t%.4f" % (per_ckpt_s * 1e3),
        "checkpoints_per_modeled_s\t%.1f" % barriers_per_modeled_s,
        "plain_wall_ms_per_modeled_s\t%.2f" % (wall_per_modeled_s * 1e3),
        "overhead_fraction\t%.4f" % overhead,
        "plain_run_s\t%.4f" % plain_s,
        "checkpointed_run_s\t%.4f" % ckpt_s,
        "",
        "# Compressed checkpoint artifact at scale (budget: <%d KiB)."
        % (SNAPSHOT_BUDGET_BYTES // 1024),
        "threads\tartifact_bytes",
        "%d\t%d" % (thread_count, artifact_bytes),
    ]
    write_result("ckpt_overhead.txt", lines)

    assert overhead < OVERHEAD_BUDGET, (
        "checkpointing at %dms cadence costs %.2f%% of the plain run's "
        "wall clock per modeled second (budget %d%%)"
        % (CADENCE_US // 1_000, overhead * 100, OVERHEAD_BUDGET * 100))
    assert thread_count >= SCALE_THREADS
    assert artifact_bytes < SNAPSHOT_BUDGET_BYTES, (
        "a %d-thread checkpoint artifact is %d bytes (budget %d)"
        % (thread_count, artifact_bytes, SNAPSHOT_BUDGET_BYTES))
