"""Shared helpers for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant scenarios, prints the same rows/series the paper reports,
writes them under ``results/``, and asserts the qualitative shape (who
wins, direction of each baseline, approximate factors).

Absolute latencies are not expected to match the paper -- the substrate
is a virtual-time simulator, not the authors' Xeon testbed -- but the
shapes are (see EXPERIMENTS.md for the side-by-side record).
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Simulated duration for full-evaluation benchmarks.  The cases were
#: tuned at their default durations; 6 s keeps the full Figure 11 sweep
#: (16 cases x 7 runs) to a few minutes of wall clock.
EVAL_DURATION_S = 6


def default_jobs():
    """Worker count for benchmark sweeps: ``$REPRO_JOBS`` or the CPU count."""
    return int(os.environ.get("REPRO_JOBS") or os.cpu_count() or 1)


def sweep_evaluations(case_ids, solutions, duration_s=EVAL_DURATION_S,
                      seed=1):
    """Evaluate ``case_ids`` under ``solutions`` via the parallel runner.

    Returns ``{case_id: SweepEvaluation}`` in ``case_ids`` order —
    API-compatible with per-case ``repro.cases.evaluate_case`` results,
    but fanned over :func:`repro.runner.run_sweep`'s worker pool and
    backed by the content-addressed cache, so unchanged figure
    benchmarks are instant replays (``--no-cache`` equivalent: delete
    ``.repro-cache`` or set ``REPRO_CACHE_DIR`` to a fresh directory).
    """
    from repro.runner import run_sweep

    result = run_sweep(case_ids=list(case_ids), solutions=list(solutions),
                       seeds=(seed,), duration_s=duration_s,
                       jobs=default_jobs())
    return result.by_case(seed)


def write_result(name, lines):
    """Write (and echo) a benchmark's output rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
