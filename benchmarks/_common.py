"""Shared helpers for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant scenarios, prints the same rows/series the paper reports,
writes them under ``results/``, and asserts the qualitative shape (who
wins, direction of each baseline, approximate factors).

Absolute latencies are not expected to match the paper -- the substrate
is a virtual-time simulator, not the authors' Xeon testbed -- but the
shapes are (see EXPERIMENTS.md for the side-by-side record).
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Simulated duration for full-evaluation benchmarks.  The cases were
#: tuned at their default durations; 6 s keeps the full Figure 11 sweep
#: (16 cases x 7 runs) to a few minutes of wall clock.
EVAL_DURATION_S = 6


def write_result(name, lines):
    """Write (and echo) a benchmark's output rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
