"""Fault-machinery overhead: chaos disabled must be within noise.

The fault-injection harness touches exactly one kernel hot path when no
faults are armed: ``futex_wake`` checks the ``wake_filter`` hook (one
attribute load and ``is not None`` test) before popping waiters.  This
benchmark measures that cost two ways:

- **A/B on the hot path**: run the same contended simulation with the
  shipped ``futex_wake`` versus a pre-fault variant (identical code
  minus the hook check) bound to the kernel instance, and compare the
  best-of-N wall clocks in-process (same interpreter, same cache state,
  no cross-machine flakiness);
- **microbench**: the per-call cost of the disabled guard itself.

The acceptance bar is the robustness PR's promise: the faults-disabled
kernel stays within 2% of the pre-fault hot path.
"""

import time

from _common import once, write_result

from repro.sim import Compute, FutexWait, Kernel, Sleep

DURATION_US = 250_000
REPEATS = 3
OVERHEAD_BUDGET = 0.02
#: Wake-heavy workload: ping-pong pairs so futex_wake dominates.
PAIRS = 6


def _prefault_futex_wake(self, key, n=1):
    """``Kernel.futex_wake`` exactly as it was before the fault hook."""
    woken = self.futexes.pop_waiters(key, n, waker=self.current_thread)
    for thread in woken:
        if thread.wakeup_event is not None:
            thread.wakeup_event.cancel()
            thread.wakeup_event = None
        thread.wait_key = None
        self._enqueue(thread, compute_us=0, resume_value=True)
    if woken:
        self._dispatch()
    return len(woken)


def _build_pingpong(kernel):
    """PAIRS ping-pong thread pairs hammering futex wait/wake."""
    for pair in range(PAIRS):
        ping_key = ("ping", pair)
        pong_key = ("pong", pair)

        def ping(ping_key=ping_key, pong_key=pong_key):
            while True:
                yield Compute(us=5)
                kernel.futex_wake(pong_key, 1)
                yield FutexWait(ping_key, timeout_us=1_000)

        def pong(ping_key=ping_key, pong_key=pong_key):
            while True:
                yield FutexWait(pong_key, timeout_us=1_000)
                yield Compute(us=5)
                kernel.futex_wake(ping_key, 1)

        kernel.spawn(ping, name="ping-%d" % pair)
        kernel.spawn(pong, name="pong-%d" % pair)

    def idler():
        while True:
            yield Sleep(us=100_000)

    kernel.spawn(idler, name="idler")


def _timed_run(bind_prefault):
    kernel = Kernel(cores=4, seed=1)
    if bind_prefault:
        kernel.futex_wake = _prefault_futex_wake.__get__(kernel)
    _build_pingpong(kernel)
    start = time.perf_counter()
    kernel.run(until_us=DURATION_US)
    return time.perf_counter() - start, kernel.stats["syscalls"]


def _best(bind_prefault):
    best = None
    syscalls = 0
    for _ in range(REPEATS):
        elapsed, syscalls = _timed_run(bind_prefault)
        if best is None or elapsed < best:
            best = elapsed
    return best, syscalls


def _guard_cost_ns(loops=2_000_000):
    """Per-call cost of the disabled ``wake_filter`` guard pattern."""
    wake_filter = None
    sink = 0
    rng = range(loops)
    start = time.perf_counter()
    for _ in rng:
        if wake_filter is not None:
            sink += 1
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in rng:
        pass
    empty = time.perf_counter() - start
    assert sink == 0
    return max(0.0, (guarded - empty) / loops * 1e9)


def test_faults_disabled_overhead_within_budget(benchmark):
    def run():
        current_s, syscalls = _best(bind_prefault=False)
        prefault_s, _ = _best(bind_prefault=True)
        return current_s, prefault_s, syscalls, _guard_cost_ns()

    current_s, prefault_s, syscalls, guard_ns = once(benchmark, run)
    overhead = current_s / prefault_s - 1.0 if prefault_s else 0.0

    lines = [
        "# Fault-machinery overhead with no faults armed (best of %d)."
        % REPEATS,
        "# 'current' is the shipped kernel; 'pre-fault' rebinds",
        "# futex_wake without the wake_filter check on the same kernel",
        "# class, so the delta isolates the hook cost (budget: <%d%%)."
        % int(OVERHEAD_BUDGET * 100),
        "config\twall_s\tvs_prefault\tsyscalls\tguard_ns",
        "pre-fault\t%.4f\t1.000x\t%d\t" % (prefault_s, syscalls),
        "current\t%.4f\t%.3fx\t%d\t%.2f"
        % (current_s, current_s / prefault_s if prefault_s else 1.0,
           syscalls, guard_ns),
    ]
    write_result("chaos_overhead.txt", lines)

    assert overhead < OVERHEAD_BUDGET, (
        "faults-disabled kernel is %.2f%% slower than the pre-fault "
        "hot path (budget %d%%)"
        % (overhead * 100, OVERHEAD_BUDGET * 100)
    )
