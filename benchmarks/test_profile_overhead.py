"""Attribution profiler overhead + the committed attribution snapshot.

Two guards and one artifact:

- **attached**: the profiler's whole fire-time cost is one flattened
  record append per tracepoint firing (analysis is replayed lazily at
  query time, like ``perf record`` / ``perf report``).  The budget is
  the paper's Figure 16 bar: instrumentation must cost the *modeled
  system* under 5%.  The simulator compresses each modeled second into
  a few tens of milliseconds of bookkeeping wall time, so the honest
  normalization charges the profiler's added wall time against the
  modeled second it profiles, not against the compressed wall time
  (against which even a no-op subscriber costs double digits).  The
  raw wall-clock ratio is reported alongside for transparency.
- **detached**: a constructed-but-unattached profiler must cost
  nothing; the only residual is the inactive-tracepoint guard at each
  firing site.
- **snapshot**: ``results/BENCH_attribution.json`` records the
  overhead ratios plus victim p95 / blame totals for two
  representative cases (c17, the buffer-pool motivation case, and c2,
  a Table 3 lock case) so future PRs have a baseline to diff against.
"""

import gc
import json
import time

from _common import once, write_result

from repro.cases import Solution, get_case, run_case
from repro.obs import AttributionProfiler, MetricsCollector

#: c17 is the attribution flagship and carries the strict budget; c2 is
#: the record-dense stress case (~7x the records of c17 in the same
#: modeled time), reported for trend-tracking with only a loose cap --
#: on shared hardware its per-record cost swings +-50% run to run.
GUARDED_CASE = "c17"
OVERHEAD_CASES = ("c17", "c2")
SNAPSHOT_CASES = ("c17", "c2")
TIMING_DURATION_S = 2
SNAPSHOT_DURATION_S = 4
REPEATS = 5
ATTACHED_BUDGET = 0.05   # of the modeled (simulated) second
STRESS_CAP = 0.15        # regression backstop for the stress case
DETACHED_BUDGET = 0.02   # measurement noise floor

_cache = {}


def _timed(fn):
    gc.collect()    # start every run from the same allocator state
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_case(case_id):
    """Best-of interleaved plain / attached / detached wall times."""
    case = get_case(case_id)

    def plain():
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    def attached():
        profiler = AttributionProfiler()
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1,
                 observer=lambda env: profiler.attach(env.kernel.trace))
        return profiler

    def detached():
        AttributionProfiler()   # constructed, never attached
        run_case(case, Solution.PBOX, duration_s=TIMING_DURATION_S, seed=1)

    plain()                     # warm caches before timing
    records = len(attached()._pending)
    best = {}
    for _ in range(REPEATS):
        # Interleaved so clock-speed drift hits every variant equally.
        for name, fn in (("plain", plain), ("attached", attached),
                         ("detached", detached)):
            elapsed = _timed(fn)
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    added_attached = best["attached"] - best["plain"]
    added_detached = best["detached"] - best["plain"]
    return {
        "records": records,
        "plain_s": best["plain"],
        "attached_s": best["attached"],
        "detached_s": best["detached"],
        # Cost charged against the modeled time being profiled.
        "attached_ratio": max(0.0, added_attached) / TIMING_DURATION_S,
        "detached_ratio": max(0.0, added_detached) / TIMING_DURATION_S,
        # Raw wall-clock slowdowns, for transparency.
        "attached_wall_ratio": best["attached"] / best["plain"] - 1.0,
        "detached_wall_ratio": best["detached"] / best["plain"] - 1.0,
        "ns_per_record": (max(0.0, added_attached) / records * 1e9
                          if records else 0.0),
    }


def overhead():
    if "overhead" not in _cache:
        _cache["overhead"] = {cid: _measure_case(cid)
                              for cid in OVERHEAD_CASES}
    return _cache["overhead"]


def _case_snapshot(case_id):
    """Blame/latency snapshot of one case under pBox with the profiler."""
    profiler = AttributionProfiler()
    collector = MetricsCollector()

    def observer(env):
        profiler.attach(env.kernel.trace)
        collector.attach(env.kernel.trace)
        env.metrics = collector.registry

    run_case(get_case(case_id), Solution.PBOX,
             duration_s=SNAPSHOT_DURATION_S, seed=1, observer=observer)
    matrix = profiler.matrix
    assert matrix.rows(), "%s recorded no blamed wait time" % case_id
    # The manager's own detections name the (aggressor, victim) pair:
    # the cell that drew penalty actions is the case's headline story.
    # (Picking the most-blamed victim instead would select the noisy
    # pBox itself -- an aggressive scanner also waits the most.)
    acted = [cell for cell in matrix.rows() if cell.actions > 0]
    headline = max(acted or matrix.rows(),
                   key=lambda c: (c.actions, c.total_us))
    victim = headline.victim
    shares = matrix.aggressor_share(victim)
    top = max(shares, key=lambda psid: shares[psid])
    return {
        "victim_p95_us": collector.registry.histograms[
            "latency.victim_us"].percentile(95),
        "blamed_total_us": matrix.total_us(),
        "victim_blamed_us": matrix.victim_total_us(victim),
        "top_share": shares[top],
        "top_aggressor": profiler.label(top),
        "actions": sum(cell.actions for cell in matrix.rows()
                       if cell.aggressor == top),
        "penalty_us": sum(cell.penalty_us for cell in matrix.rows()
                          if cell.aggressor == top),
        "recovered_est_us": matrix.recovered_us(top),
        "unattributed_us": matrix.unknown_us,
    }


def snapshots():
    if "cases" not in _cache:
        _cache["cases"] = {cid: _case_snapshot(cid)
                           for cid in SNAPSHOT_CASES}
    return _cache["cases"]


def test_profiler_overhead_within_budget(benchmark):
    measured = once(benchmark, overhead)
    lines = [
        "# Attribution profiler overhead at %ds simulated (best of %d"
        % (TIMING_DURATION_S, REPEATS),
        "# interleaved runs).  attached%% / detached%% charge the added",
        "# wall time against the modeled second being profiled (the",
        "# Figure 16 normalization); wall%% is the raw slowdown of the",
        "# compressed simulator run.  budget: attached < %d%%, detached"
        % int(ATTACHED_BUDGET * 100),
        "# < %d%%." % int(DETACHED_BUDGET * 100),
        "case\trecords\tns/rec\tattached%\tdetached%\twall%",
    ]
    for case_id, m in measured.items():
        lines.append("%s\t%d\t%.0f\t%.2f%%\t%.2f%%\t%+.1f%%" % (
            case_id, m["records"], m["ns_per_record"],
            m["attached_ratio"] * 100, m["detached_ratio"] * 100,
            m["attached_wall_ratio"] * 100,
        ))
    write_result("profile_overhead.txt", lines)

    for case_id, m in measured.items():
        budget = ATTACHED_BUDGET if case_id == GUARDED_CASE else STRESS_CAP
        assert m["attached_ratio"] < budget, (
            "%s: profiler costs %.2f%% of the modeled second (budget %d%%)"
            % (case_id, m["attached_ratio"] * 100, budget * 100)
        )
        assert m["detached_ratio"] < DETACHED_BUDGET, (
            "%s: detached profiler costs %.2f%% (should be ~0)"
            % (case_id, m["detached_ratio"] * 100)
        )
        # The record log really was written (the cost bought something).
        assert m["records"] > 1_000, case_id


def test_attribution_snapshot_persisted(benchmark):
    def build():
        return {"overhead_cases": overhead(), "cases": snapshots()}

    built = once(benchmark, build)
    measured = built["overhead_cases"]
    guarded = measured[GUARDED_CASE]
    snapshot = {
        "duration_s": SNAPSHOT_DURATION_S,
        "seed": 1,
        "overhead": {
            "case": GUARDED_CASE,
            "attached_ratio": guarded["attached_ratio"],
            "detached_ratio": guarded["detached_ratio"],
            "attached_wall_ratio": guarded["attached_wall_ratio"],
            "ns_per_record": guarded["ns_per_record"],
            "normalization": "added wall time / modeled second",
            "stress": {
                case_id: {"attached_ratio": m["attached_ratio"],
                          "ns_per_record": m["ns_per_record"]}
                for case_id, m in measured.items()
                if case_id != GUARDED_CASE
            },
        },
        "cases": built["cases"],
    }
    write_result("BENCH_attribution.json",
                 [json.dumps(snapshot, indent=2, sort_keys=True)])

    # The snapshot itself must tell the paper's story: in the
    # buffer-pool motivation case the analytics pBox owns the majority
    # of the victim's blamed wait, and penalties recovered some of it.
    c17 = built["cases"]["c17"]
    assert c17["top_share"] > 0.5
    assert "analytics" in c17["top_aggressor"]
    assert c17["actions"] > 0
    for entry in built["cases"].values():
        assert entry["victim_p95_us"] > 0
        assert 0.0 < entry["top_share"] <= 1.0
