"""Aggregate the benchmark outputs in ``results/`` into one report.

The benchmarks each write a tab-separated table; this module stitches
them into a single markdown document (the "evaluation section" of the
reproduction), used by ``python -m repro`` consumers and CI logs.  It
is intentionally forgiving: missing result files are reported as "not
yet generated", and a file that exists but cannot be rendered (an
older schema, a truncated write, hand-edited JSON) degrades to a
one-line "section skipped" note rather than failing the whole report.
"""

import os

#: The expected result files, in the paper's presentation order.
SECTIONS = [
    ("fig01_undo_motivation.txt", "Figure 1 — UNDO purge motivation"),
    ("fig02_bufferpool_motivation.txt", "Figure 2 — buffer-pool backup"),
    ("fig03_tickets_motivation.txt", "Figure 3 — tickets motivation"),
    ("tab03_interference_levels.txt", "Table 3 — interference levels"),
    ("fig11_mitigation.txt", "Figure 11 — mitigation vs baselines"),
    ("fig12_tail_latency.txt", "Figure 12 — tail latency"),
    ("fig13_penalty_actions.txt", "Figure 13 — penalty actions"),
    ("fig14_penalty_lengths.txt", "Figure 14 — penalty lengths"),
    ("tab04_fixed_vs_adaptive.txt", "Table 4 — fixed vs adaptive"),
    ("fig15_rule_sensitivity.txt", "Figure 15 — rule sensitivity"),
    ("fig16_overhead.txt", "Figure 16 — overhead"),
    ("tab05_analyzer.txt", "Table 5 — static analyzer"),
    ("sec68_mistake_tolerance.txt", "Section 6.8 — mistake tolerance"),
    ("ablations.txt", "Ablations — design-choice costs"),
    ("obs_overhead.txt", "Observability — tracing overhead"),
]

#: Metrics-registry snapshot (``python -m repro metrics <case> --json``)
#: rendered as its own report section.
METRICS_SNAPSHOT = "obs_metrics.json"

#: Attribution snapshot written by ``benchmarks/test_profile_overhead.py``
#: (profiler overhead plus per-case blame summaries).
ATTRIBUTION_SNAPSHOT = "BENCH_attribution.json"

#: Machine-readable sweep output (``python -m repro sweep``).
SWEEP_SNAPSHOT = "SWEEP.json"

#: Machine-readable chaos output (``python -m repro chaos``).
CHAOS_SNAPSHOT = "CHAOS.json"

#: Machine-readable scalability sweep (``python -m repro scale``).
SCALE_SNAPSHOT = "SCALE.json"

#: Per-request critical-path summary (``python -m repro why``).
WHY_SNAPSHOT = "WHY.json"


def load_section(results_dir, filename):
    """Return the file's lines, or None if it has not been generated."""
    path = os.path.join(results_dir, filename)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return handle.read().rstrip("\n").splitlines()


def _as_markdown_table(lines):
    """Convert a tab-separated block into a markdown table.

    Comment lines (``#``) become prose; the first non-comment line is
    the header row.
    """
    output = []
    header_done = False
    for line in lines:
        if line.startswith("#"):
            output.append(line.lstrip("# ").rstrip())
            continue
        if not line.strip():
            output.append("")
            continue
        cells = line.split("\t")
        output.append("| " + " | ".join(cells) + " |")
        if not header_done:
            output.append("|" + "---|" * len(cells))
            header_done = True
    return output


def _section_skipped(filename, exc):
    """The degraded one-liner for an unrenderable results artifact."""
    return ["*(section skipped: `results/%s` could not be rendered "
            "(%s: %s) — regenerate it with the current tools)*"
            % (filename, type(exc).__name__, exc)]


def _load_safely(loader, results_dir, filename):
    """Run ``loader``; degrade render errors to a skip note.

    ``None`` (file absent) passes through untouched.  Anything the
    renderers raise on a malformed or older-schema artifact -- missing
    keys, wrong value shapes, truncated JSON -- becomes the one-line
    skip note instead of a crashed report.
    """
    import json

    try:
        return loader(results_dir)
    except (KeyError, IndexError, TypeError, ValueError, AttributeError,
            json.JSONDecodeError, OSError) as exc:
        return _section_skipped(filename, exc)


#: The JSON-backed sections appended after the tab-separated tables:
#: (title, renderer, artifact filename, regeneration hint).  Renderers
#: are wrapped in lambdas because they are defined below.
JSON_SECTIONS = [
    ("Observability — unified metrics registry",
     lambda d: _load_metrics_section(d), METRICS_SNAPSHOT,
     "run `python -m repro metrics` with `--json results/%s`"),
    ("Observability — contention attribution",
     lambda d: _load_attribution_section(d), ATTRIBUTION_SNAPSHOT,
     "run `PYTHONPATH=src python -m pytest "
     "benchmarks/test_profile_overhead.py`"),
    ("Sweep — registry-wide To/Ti/Ts summary",
     lambda d: _load_sweep_section(d), SWEEP_SNAPSHOT,
     "run `python -m repro sweep`"),
    ("Chaos — fault injection & invariants",
     lambda d: _load_chaos_section(d), CHAOS_SNAPSHOT,
     "run `python -m repro chaos`"),
    ("Scale — multi-tenant kernel scalability",
     lambda d: _load_scale_section(d), SCALE_SNAPSHOT,
     "run `python -m repro scale --telemetry`"),
    ("Why — per-request critical-path decomposition",
     lambda d: _load_why_section(d), WHY_SNAPSHOT,
     "run `python -m repro why c5`"),
]


def generate_report(results_dir="results"):
    """Build the markdown report string from ``results_dir``."""
    parts = [
        "# pBox reproduction — generated evaluation report",
        "",
        "Regenerate any section with its benchmark target; see",
        "EXPERIMENTS.md for the paper-vs-measured commentary.",
        "",
    ]
    missing = []
    for filename, title in SECTIONS:
        lines = load_section(results_dir, filename)
        parts.append("## %s" % title)
        parts.append("")
        if lines is None:
            parts.append("*(not yet generated — run the matching "
                         "benchmark under `benchmarks/`)*")
            missing.append(filename)
        else:
            parts.extend(_as_markdown_table(lines))
        parts.append("")
    for title, loader, filename, hint in JSON_SECTIONS:
        parts.append("## %s" % title)
        parts.append("")
        lines = _load_safely(loader, results_dir, filename)
        if lines is None:
            parts.append("*(not yet generated — %s)*"
                         % (hint % filename if "%s" in hint else hint))
            missing.append(filename)
        else:
            parts.extend(lines)
        parts.append("")
    if missing:
        parts.append("---")
        parts.append("%d of %d sections missing."
                     % (len(missing), len(SECTIONS) + len(JSON_SECTIONS)))
    return "\n".join(parts)


def _load_metrics_section(results_dir):
    """Render the saved metrics-registry snapshot, or None if absent."""
    path = os.path.join(results_dir, METRICS_SNAPSHOT)
    if not os.path.exists(path):
        return None
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry.load_json(path)
    return _as_markdown_table(registry.format_table())


def _load_attribution_section(results_dir):
    """Render the attribution benchmark snapshot, or None if absent."""
    path = os.path.join(results_dir, ATTRIBUTION_SNAPSHOT)
    if not os.path.exists(path):
        return None
    import json

    with open(path) as handle:
        snapshot = json.load(handle)
    lines = []
    overhead = snapshot.get("overhead", {})
    if overhead:
        lines.append(
            "Profiler overhead: %.1f%% attached, %.1f%% detached "
            "(guard: <5%% attached)." % (
                100.0 * overhead.get("attached_ratio", 0),
                100.0 * overhead.get("detached_ratio", 0),
            )
        )
        lines.append("")
    cases = snapshot.get("cases", {})
    if cases:
        lines.append("| case | victim p95 (ms) | blamed on top aggressor "
                     "| top aggressor | unattributed (ms) | actions | "
                     "penalty (ms) | recovered est. (ms) |")
        lines.append("|---|---|---|---|---|---|---|---|")
        for case_id in sorted(cases):
            entry = cases[case_id]
            recovered = entry.get("recovered_est_us")
            # Older snapshots predate the unattributed column; degrade
            # to n/a instead of skipping the whole section.
            unattributed = entry.get("unattributed_us")
            lines.append("| %s | %.2f | %.0f%% | %s | %s | %d | %.2f | "
                         "%s |" % (
                             case_id,
                             entry.get("victim_p95_us", 0) / 1_000,
                             100.0 * entry.get("top_share", 0),
                             entry.get("top_aggressor", "?"),
                             ("n/a" if unattributed is None
                              else "%.2f" % (unattributed / 1_000)),
                             entry.get("actions", 0),
                             entry.get("penalty_us", 0) / 1_000,
                             ("n/a" if recovered is None
                              else "%.2f" % (recovered / 1_000)),
                         ))
    return lines


def _load_why_section(results_dir):
    """Render the ``repro why`` snapshot, or None if absent."""
    path = os.path.join(results_dir, WHY_SNAPSHOT)
    if not os.path.exists(path):
        return None
    import json

    with open(path) as handle:
        snapshot = json.load(handle)
    tenants = snapshot.get("tenants", {})
    lines = [
        "`repro why %s`: %s requests traced; latency decomposed into "
        "exactly-summing critical-path segments (%s)." % (
            snapshot.get("target", "?"),
            "{:,}".format(snapshot.get("completed", 0)),
            ", ".join(snapshot.get("segments", [])),
        ),
        "",
        "| tenant | requests | dominant segment | segment totals (ms) |",
        "|---|---|---|---|",
    ]
    for tenant in sorted(tenants):
        entry = tenants[tenant]
        totals = entry.get("totals_us", {})
        nonzero = sorted(((seg, us) for seg, us in totals.items() if us),
                         key=lambda item: -item[1])
        dominant = nonzero[0][0] if nonzero else "idle"
        shown = ", ".join("%s %.2f" % (seg, us / 1_000)
                          for seg, us in nonzero[:4]) or "none"
        lines.append("| %s | %s | %s | %s |" % (
            tenant, "{:,}".format(entry.get("requests", 0)),
            dominant, shown))
    slowest = []
    for tenant in sorted(tenants):
        slowest.extend(tenants[tenant].get("slowest", []))
    slowest.sort(key=lambda t: -t.get("latency_us", 0))
    if slowest:
        lines.append("")
        lines.append("| slowest rid | tenant | latency (ms) | "
                     "critical path |")
        lines.append("|---|---|---|---|")
        for trace in slowest[:10]:
            path_cells = ", ".join(
                "%s %.2f" % (seg.get("kind", "?"),
                             seg.get("dur_us", 0) / 1_000)
                for seg in trace.get("critical_path", [])[:3])
            lines.append("| %d | %s | %.2f | %s |" % (
                trace.get("rid", 0), trace.get("tenant", "?"),
                trace.get("latency_us", 0) / 1_000, path_cells or "n/a"))
    explanations = snapshot.get("explanations", [])
    if explanations:
        lines.append("")
        lines.append("%d SLO breach(es) explained; last: tenant %s at "
                     "%.2fs." % (
                         len(explanations),
                         explanations[-1].get("tenant", "?"),
                         explanations[-1].get("at_us", 0) / 1e6))
    return lines


def _load_sweep_section(results_dir):
    """Render the ``repro sweep`` snapshot, or None if absent."""
    path = os.path.join(results_dir, SWEEP_SNAPSHOT)
    if not os.path.exists(path):
        return None
    import json

    with open(path) as handle:
        snapshot = json.load(handle)
    solutions = snapshot.get("solutions", [])
    jobs = snapshot.get("jobs", {})
    lines = []
    if jobs:
        lines.append(
            "%d jobs (%d executed, %d cache hits) over %d worker(s) in "
            "%.2fs; duration %ss, seeds %s." % (
                jobs.get("total", 0), jobs.get("executed", 0),
                jobs.get("cache_hits", 0), jobs.get("workers", 1),
                jobs.get("wall_s", 0.0), snapshot.get("duration_s", "?"),
                ",".join(str(s) for s in snapshot.get("seeds", [])),
            )
        )
        lines.append("")
    header = ["case", "To (ms)", "Ti (ms)", "p"]
    header += ["r(%s)" % s for s in solutions]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for case_id in sorted(snapshot.get("cases", {}),
                          key=lambda cid: int(cid[1:])):
        seeds = snapshot["cases"][case_id]["seeds"]
        for seed in sorted(seeds, key=int):
            entry = seeds[seed]
            row = [
                case_id if len(seeds) == 1 else "%s/s%s" % (case_id, seed),
                "%.2f" % (entry["to_us"] / 1_000),
                "%.2f" % (entry["ti_us"] / 1_000),
                "%.2f" % entry["interference_level"],
            ]
            for solution in solutions:
                sol = entry["solutions"].get(solution)
                row.append("%+.2f" % sol["reduction_ratio"]
                           if sol else "n/a")
            lines.append("| " + " | ".join(row) + " |")
    return lines


def _load_chaos_section(results_dir):
    """Render the ``repro chaos`` snapshot, or None if absent."""
    path = os.path.join(results_dir, CHAOS_SNAPSHOT)
    if not os.path.exists(path):
        return None
    import json

    with open(path) as handle:
        snapshot = json.load(handle)
    summary = snapshot.get("summary", {})
    lines = [
        "%d chaos runs (faults: %s; seeds %s; duration %ss): %d faults "
        "fired, %d crashes contained, %d watchdog recoveries, %d stale "
        "repairs, %d deadlocks — **%d invariant violations**." % (
            summary.get("runs", 0),
            ",".join(snapshot.get("faults", [])),
            ",".join(str(s) for s in snapshot.get("seeds", [])),
            snapshot.get("duration_s", "?"),
            summary.get("faults_fired", 0),
            summary.get("crashes_contained", 0),
            summary.get("watchdog_recoveries", 0),
            summary.get("stale_repairs", 0),
            summary.get("deadlocks", 0),
            summary.get("violations", 0),
        ),
        "",
        "| case | runs | violations | faults fired | crashes | "
        "recoveries | errors |",
        "|---|---|---|---|---|---|---|",
    ]
    for case_id in sorted(snapshot.get("cases", {}),
                          key=lambda cid: int(cid[1:])):
        runs = violations = fired = crashes = recoveries = errors = 0
        for kinds in snapshot["cases"][case_id].values():
            for entry in kinds.values():
                # Schema 2 entries are count summaries + digest.
                runs += 1
                violations += entry.get("violations", 0)
                fired += entry.get("faults_fired", 0)
                crashes += entry.get("crashes", 0)
                recoveries += (entry.get("recoveries", 0)
                               + entry.get("stale_repairs", 0))
                if entry.get("error"):
                    errors += 1
        lines.append("| %s | %d | %d | %d | %d | %d | %d |" % (
            case_id, runs, violations, fired, crashes, recoveries, errors))
    return lines


def _load_scale_section(results_dir):
    """Render the ``repro scale`` snapshot, or None if absent."""
    path = os.path.join(results_dir, SCALE_SNAPSHOT)
    if not os.path.exists(path):
        return None
    import json

    with open(path) as handle:
        snapshot = json.load(handle)
    lines = []
    guard = snapshot.get("throughput_guard")
    if guard:
        lines.append(
            "A/B vs the pre-PR kernel at %s threads: **%.2fx** event "
            "throughput (%s vs %s events/s on the identical %s-event "
            "stream; floor %.0fx)." % (
                "{:,}".format(guard.get("threads", 0)),
                guard.get("speedup", 0.0),
                "{:,}".format(guard.get("new_events_per_sec", 0)),
                "{:,}".format(guard.get("legacy_events_per_sec", 0)),
                "{:,}".format(guard.get("events", 0)),
                guard.get("floor", 0.0),
            )
        )
        lines.append("")
    sched = snapshot.get("sched")
    families = snapshot.get("families")
    if sched or families:
        # Schema-4 documents carry the scheduler/family axes; older
        # snapshots simply skip this paragraph.
        bits = []
        if sched:
            bits.append("scheduler policy **%s**" % sched)
        if families:
            bits.append("tenant families %s (round-robin across tenants)"
                        % ", ".join("`%s`" % f for f in families))
        lines.append("Sweep ran under %s." % " with ".join(bits))
        lines.append("")
    lines.append("| threads | tenants | pBoxes | cores | virtual (ms) | "
                 "events/s | requests | manager cost/event (us) | "
                 "manager overhead | shards | scans | budget denied |")
    lines.append("|---|---|---|---|---|---|---|---|---|---|---|---|")
    for point in snapshot.get("points", []):
        manager = point.get("manager", {})
        lines.append(
            "| %s | %d | %d | %d | %.0f | %s | %s | %.3f | %.1f%% "
            "| %d | %s | %d |" % (
                "{:,}".format(point.get("threads", 0)),
                point.get("tenants", 0),
                point.get("pboxes", 0),
                point.get("cores", 0),
                point.get("duration_virtual_ms", 0.0),
                "{:,}".format(point.get("events_per_sec", 0)),
                "{:,}".format(point.get("requests", 0)),
                manager.get("cost_per_event_us", 0.0),
                100.0 * manager.get("overhead_frac", 0.0),
                manager.get("shards", 0),
                "{:,}".format(manager.get("scans", 0)),
                manager.get("budget_denied", 0),
            ))
    family_lines = _scale_family_lines(snapshot)
    if family_lines:
        lines.append("")
        lines.extend(family_lines)
    telemetry_lines = _scale_telemetry_lines(snapshot)
    if telemetry_lines:
        lines.append("")
        lines.extend(telemetry_lines)
    return lines


def _scale_family_lines(snapshot):
    """Per-family request rows for schema-4 scale documents."""
    points = [p for p in snapshot.get("points", [])
              if p.get("family_requests")]
    if not points:
        return []
    families = sorted({family for point in points
                       for family in point["family_requests"]})
    lines = ["Requests completed per tenant family (manager on):", ""]
    lines.append("| threads | %s |" % " | ".join(families))
    lines.append("|---|%s|" % "|".join("---" for _ in families))
    for point in points:
        counts = point["family_requests"]
        lines.append("| %s | %s |" % (
            "{:,}".format(point.get("threads", 0)),
            " | ".join("{:,}".format(counts.get(family, 0))
                       for family in families)))
    return lines


def _scale_telemetry_lines(snapshot):
    """Per-tenant SLO telemetry rows for schema-2 scale documents."""
    rows = []
    for point in snapshot.get("points", []):
        telemetry = point.get("telemetry")
        if not telemetry:
            continue
        totals = telemetry.get("totals", {})
        dropped = telemetry.get("dropped", {})
        windows = telemetry.get("windows", {}).get("rows", [])
        peak_active = max((row[9] for row in windows), default=0)
        rows.append("| %s | %s | %s | %d | %d | %d | %d |" % (
            "{:,}".format(point.get("threads", 0)),
            "{:,}".format(totals.get("requests", 0)),
            "{:,}".format(totals.get("bad", 0)),
            totals.get("breaches", 0),
            totals.get("recovers", 0),
            peak_active,
            dropped.get("tenants_recorded", 0),
        ))
    if not rows:
        return []
    lines = [
        "Per-tenant SLO telemetry (schema 2, `--telemetry`): sketches, "
        "windowed series and burn-rate breach events per point.",
        "",
        "| threads | requests | bad | breaches | recovers | "
        "peak active set | tenants |",
        "|---|---|---|---|---|---|---|",
    ]
    lines.extend(rows)
    return lines


def write_report(results_dir="results", output_path=None):
    """Generate and write the report; returns the output path."""
    output_path = output_path or os.path.join(results_dir, "REPORT.md")
    report = generate_report(results_dir)
    with open(output_path, "w") as handle:
        handle.write(report + "\n")
    return output_path
