"""Full-registry sweeps: enumerate, fan out, aggregate, persist.

A *sweep* evaluates a set of cases under a set of solutions for one or
more seeds, exactly like calling :func:`repro.cases.evaluate_case` per
case — but as an explicit two-stage job graph:

- **stage 1**: the To (interference-free) and Ti (vanilla) jobs of
  every (case, seed) — mutually independent;
- **stage 2**: one Ts job per (case, seed, solution), constructed
  *after* stage 1 so that baseline-consuming solutions (PARTIES,
  Retro) embed the measured To in their spec, just as
  ``evaluate_case`` feeds it to an operator-configured baseline.

Both stages go through :func:`repro.runner.runner.run_jobs`, so every
job is independently cached and parallelizable; the aggregate numbers
are bit-identical to the serial ``evaluate_case`` path.
"""

import json
import os
import time

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.jobs import (
    baseline_spec,
    interference_spec,
    solution_spec,
)
from repro.runner.runner import RunInterrupted, run_jobs

#: Schema version of ``results/SWEEP.json``.
SWEEP_SCHEMA = 1


class SweepInterrupted(Exception):
    """Ctrl-C mid-sweep; ``partial`` is a valid, writable SweepResult.

    Carries every (case, seed) whose To/Ti/Ts jobs all completed before
    the interrupt, so the CLI can persist a well-formed (if shorter)
    ``results/SWEEP.json`` instead of nothing or a truncated file.
    """

    def __init__(self, partial):
        super().__init__("sweep interrupted with %d complete evaluations"
                         % len(partial.evaluations))
        self.partial = partial


class JobResult:
    """Attribute view over a job's result dict.

    Mirrors the slice of :class:`repro.cases.base.CaseRun` the
    benchmarks consume (``victim_mean_us``, ``victim_p95_us``,
    ``noisy_mean_us``), so sweep evaluations are drop-in replacements
    in the figure/table helpers.
    """

    __slots__ = ("raw",)

    def __init__(self, raw):
        self.raw = raw

    @property
    def victim_mean_us(self):
        return self.raw["victim_mean_us"]

    @property
    def victim_p95_us(self):
        return self.raw["victim_p95_us"]

    @property
    def noisy_mean_us(self):
        return self.raw["noisy_mean_us"]

    def __repr__(self):
        return "JobResult(victim_mean_us=%.1f)" % self.victim_mean_us


class SweepEvaluation:
    """To/Ti/Ts aggregate for one (case, seed) — Section 6.2 math.

    API-compatible with :class:`repro.cases.base.CaseEvaluation`
    (``to_us``, ``ti_us``, ``ts_us``, ``interference_level``,
    ``reduction_ratio``, ``normalized_latency``, ``normalized_tail``,
    plus the ``baseline`` / ``interference`` / ``solution_runs``
    attributes), built from cached-or-computed job results instead of
    live ``CaseRun`` objects.
    """

    def __init__(self, case, seed, baseline, interference, solution_runs):
        self.case = case
        self.seed = seed
        self.baseline = baseline            # JobResult (To)
        self.interference = interference    # JobResult (Ti)
        self.solution_runs = solution_runs  # {Solution: JobResult}

    @property
    def to_us(self):
        """Interference-free victim latency To."""
        return self.baseline.victim_mean_us

    @property
    def ti_us(self):
        """Victim latency under interference Ti."""
        return self.interference.victim_mean_us

    def ts_us(self, solution):
        """Victim latency under ``solution``."""
        return self.solution_runs[solution].victim_mean_us

    @property
    def interference_level(self):
        """p = Ti/To - 1."""
        return self.ti_us / self.to_us - 1.0

    def reduction_ratio(self, solution):
        """r = (Ti - Ts)/(Ti - To) for ``solution``."""
        from repro.workloads import reduction_ratio

        return reduction_ratio(self.ti_us, self.ts_us(solution), self.to_us)

    def normalized_latency(self, solution):
        """Ts / Ti: the Figure 11 normalization (< 1 means mitigated)."""
        return self.ts_us(solution) / self.ti_us

    def normalized_tail(self, solution):
        """p95(Ts) / p95(Ti): the Figure 12 normalization."""
        return (self.solution_runs[solution].victim_p95_us
                / self.interference.victim_p95_us)


class SweepResult:
    """Everything a finished sweep produced, plus cache/wall accounting."""

    def __init__(self, evaluations, solutions, seeds, duration_s,
                 fingerprint, stats):
        #: {(case_id, seed): SweepEvaluation}
        self.evaluations = evaluations
        self.solutions = solutions
        self.seeds = seeds
        self.duration_s = duration_s
        self.fingerprint = fingerprint
        #: dict with jobs / cache_hits / executed / workers / wall_s
        self.stats = stats

    def by_case(self, seed=None):
        """``{case_id: SweepEvaluation}`` for one seed (default: first)."""
        seed = self.seeds[0] if seed is None else seed
        return {case_id: evaluation
                for (case_id, s), evaluation in self.evaluations.items()
                if s == seed}

    def to_json_dict(self):
        """The machine-readable ``results/SWEEP.json`` payload."""
        cases = {}
        for (case_id, seed), ev in sorted(self.evaluations.items()):
            per_case = cases.setdefault(case_id, {"seeds": {}})
            solutions = {}
            for solution, run in ev.solution_runs.items():
                solutions[solution.value] = {
                    "ts_us": ev.ts_us(solution),
                    "ts_p95_us": run.victim_p95_us,
                    "reduction_ratio": ev.reduction_ratio(solution),
                    "normalized_latency": ev.normalized_latency(solution),
                    "normalized_tail": ev.normalized_tail(solution),
                    "noisy_mean_us": run.noisy_mean_us,
                }
            per_case["seeds"][str(seed)] = {
                "to_us": ev.to_us,
                "ti_us": ev.ti_us,
                "interference_level": ev.interference_level,
                "solutions": solutions,
            }
        return {
            "schema": SWEEP_SCHEMA,
            "code_fingerprint": self.fingerprint,
            "duration_s": self.duration_s,
            "seeds": list(self.seeds),
            "solutions": [s.value for s in self.solutions],
            "jobs": self.stats,
            "cases": cases,
        }

    def write_json(self, path):
        """Atomically write :meth:`to_json_dict` to ``path``.

        Write-to-temp + ``os.replace``: an interrupt (or crash) during
        serialization can never leave a truncated ``SWEEP.json`` where
        a previous good one used to be — and the temp file itself is
        removed on failure rather than left stale beside the output.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(self.to_json_dict(), handle, indent=1,
                          sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def sweep_case_ids(case_filter=None):
    """Registry case ids matching ``case_filter``, in numeric order.

    The filter is a comma-separated list of terms; a case matches if
    any term equals its id or is a substring of its app name or
    description (``"c1,c3"``, ``"mysql"``, ``"vacuum"``).  ``None``
    selects the whole registry.
    """
    from repro.cases import ALL_CASES, get_case

    ordered = sorted(ALL_CASES, key=lambda cid: int(cid[1:]))
    if not case_filter:
        return ordered
    terms = [t.strip().lower() for t in case_filter.split(",") if t.strip()]
    selected = []
    for case_id in ordered:
        case = get_case(case_id)
        # Ids match exactly ("c1" must not select c10-c16); free text
        # matches by substring.
        haystack = " ".join([case.app_name, case.virtual_resource,
                             case.description]).lower()
        if any(term == case_id or term in haystack for term in terms):
            selected.append(case_id)
    return selected


def run_sweep(case_ids=None, solutions=None, seeds=(1,), duration_s=6,
              jobs=1, cache=None, use_cache=True, progress=None,
              fingerprint=None):
    """Run a full sweep; returns a :class:`SweepResult`.

    Seed/cache contract: every job spec carries its own seed and the
    measured-To baseline it depends on, so repeated calls with the same
    arguments and unchanged code are pure cache replays, and any
    ``jobs`` value yields identical numbers (the determinism guarantee
    of ``repro.sim.kernel`` lifted to sweep granularity).
    """
    from repro.cases import Solution, get_case

    if solutions is None:
        solutions = [Solution.PBOX]
    solutions = [s if isinstance(s, Solution) else Solution(s)
                 for s in solutions]
    if case_ids is None:
        case_ids = sweep_case_ids()
    seeds = list(seeds)
    if fingerprint is None:
        fingerprint = code_fingerprint()
    if use_cache and cache is None:
        cache = ResultCache()
    started = time.perf_counter()
    hits_before = cache.hits if cache is not None else 0

    stage1 = []
    for case_id in case_ids:
        for seed in seeds:
            stage1.append(baseline_spec(case_id, seed, duration_s))
            stage1.append(interference_spec(case_id, seed, duration_s))
    # Both stage sizes are known up front, so progress callbacks see one
    # global done/total across the To/Ti stage and the solutions stage.
    total_jobs = len(stage1) + len(case_ids) * len(seeds) * len(solutions)

    def _staged_progress(offset):
        if progress is None:
            return None

        def _report(done, _total, spec, cached, wall_s):
            progress(offset + done, total_jobs, spec, cached, wall_s)

        return _report

    interrupted = False
    try:
        stage1_results = run_jobs(stage1, jobs=jobs, cache=cache,
                                  use_cache=use_cache,
                                  progress=_staged_progress(0),
                                  fingerprint=fingerprint)
    except RunInterrupted as stop:
        stage1_results = stop.results
        interrupted = True

    def stage1_result(spec):
        raw = stage1_results.get(spec.key(fingerprint))
        return None if raw is None else JobResult(raw)

    stage2 = []
    baselines = {}
    for case_id in case_ids:
        for seed in seeds:
            to_result = stage1_result(
                baseline_spec(case_id, seed, duration_s))
            if to_result is None:
                continue  # interrupted before this To completed
            baselines[(case_id, seed)] = to_result
            for solution in solutions:
                stage2.append(solution_spec(
                    case_id, solution.value, seed, duration_s,
                    to_us=to_result.victim_mean_us,
                ))
    stage2_results = {}
    if not interrupted:
        try:
            stage2_results = run_jobs(
                stage2, jobs=jobs, cache=cache, use_cache=use_cache,
                progress=_staged_progress(len(stage1_results)),
                fingerprint=fingerprint)
        except RunInterrupted as stop:
            stage2_results = stop.results
            interrupted = True

    # Aggregate every (case, seed) whose To, Ti and all Ts jobs exist.
    # On a clean run that is all of them; after an interrupt it is the
    # completed prefix, which still yields a valid SWEEP.json.
    evaluations = {}
    for case_id in case_ids:
        case = get_case(case_id)
        for seed in seeds:
            to_result = baselines.get((case_id, seed))
            ti_result = stage1_result(
                interference_spec(case_id, seed, duration_s))
            if to_result is None or ti_result is None:
                continue
            runs = {}
            for solution in solutions:
                spec = solution_spec(case_id, solution.value, seed,
                                     duration_s,
                                     to_us=to_result.victim_mean_us)
                raw = stage2_results.get(spec.key(fingerprint))
                if raw is None:
                    break
                runs[solution] = JobResult(raw)
            if len(runs) != len(solutions):
                continue
            evaluations[(case_id, seed)] = SweepEvaluation(
                case, seed, to_result, ti_result, runs)

    total_jobs = len(stage1) + len(stage2)
    hits = (cache.hits - hits_before) if cache is not None else 0
    stats = {
        "total": total_jobs,
        "cache_hits": hits,
        "executed": total_jobs - hits,
        "workers": max(1, int(jobs or 1)),
        "wall_s": round(time.perf_counter() - started, 3),
    }
    result = SweepResult(evaluations, solutions, seeds, duration_s,
                         fingerprint, stats)
    if interrupted:
        raise SweepInterrupted(result)
    return result
