"""Job specifications for the parallel experiment runner.

A *job* is one deterministic ``run_case`` invocation, fully described
by a :class:`JobSpec`: (case, solution, seed, duration) plus the three
knobs the sensitivity experiments vary (isolation level, penalty
engine, measured baseline).  Because the simulator is bit-for-bit
deterministic (see ``repro.sim.kernel``), a job spec plus a fingerprint
of the ``repro`` source tree *content-addresses* its result: equal keys
mean equal results, no matter which worker process — or which past
sweep — produced them.

The canonical encoding (sorted-key JSON of :meth:`JobSpec.to_dict`) is
the contract the on-disk cache is keyed by; changing the meaning of any
field therefore requires bumping :data:`SPEC_VERSION`.
"""

import hashlib
import json

#: Bump when the semantics of the spec encoding change, so stale cache
#: entries written by an older scheme can never be misread as current.
#: v2: added ``faults`` (chaos fault cocktail riding in the spec).
SPEC_VERSION = 2

#: ``solution`` values whose policy consumes the measured To baseline
#: (the PARTIES SLO and the Retro slowdown reference).  Every other
#: solution ignores ``baseline_us``, so specs leave it ``None`` to
#: maximise cache hits across sweeps.
BASELINE_SOLUTIONS = ("parties", "retro")


class JobSpec:
    """Immutable description of one simulation run.

    Parameters
    ----------
    case_id:
        Registry id, e.g. ``"c5"``.
    solution:
        A :class:`repro.cases.Solution` value string (``"pbox"``,
        ``"none"``, ``"no_interference"``, ``"cgroup"``, ...).
    seed:
        Root RNG seed handed to the kernel.  Same seed, same spec, same
        code => identical results; this is the determinism contract the
        cache and the parallel/serial equivalence guarantee rest on.
    duration_s:
        Simulated duration in seconds.
    isolation_level:
        Optional isolation-rule percentage (Figure 15); ``None`` keeps
        the case default (50%).
    penalty:
        Optional penalty-engine override as a string: ``"fixed:<us>"``
        for :class:`repro.core.FixedPenalty` (Table 4); ``None`` keeps
        the adaptive engine.
    baseline_us:
        Measured interference-free victim latency fed to
        baseline-consuming solutions (see :data:`BASELINE_SOLUTIONS`);
        embedded in the spec so the content address covers every input
        that can influence the result.
    faults:
        Optional comma-separated fault-kind cocktail (``"stall"``,
        ``"lost_wakeup,crash"``...) armed by the chaos harness; the
        chaos seed is the job seed.  ``None`` (the default) runs with
        no fault machinery attached at all.
    """

    __slots__ = ("case_id", "solution", "seed", "duration_s",
                 "isolation_level", "penalty", "baseline_us", "faults")

    def __init__(self, case_id, solution, seed=1, duration_s=6,
                 isolation_level=None, penalty=None, baseline_us=None,
                 faults=None):
        self.case_id = str(case_id)
        self.solution = str(solution)
        self.seed = int(seed)
        self.duration_s = float(duration_s)
        self.isolation_level = (
            None if isolation_level is None else int(isolation_level))
        self.penalty = None if penalty is None else str(penalty)
        self.baseline_us = (
            None if baseline_us is None else float(baseline_us))
        self.faults = None if not faults else str(faults)

    def to_dict(self):
        """Canonical, JSON-safe encoding (the cache-key input)."""
        return {
            "version": SPEC_VERSION,
            "case_id": self.case_id,
            "solution": self.solution,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "isolation_level": self.isolation_level,
            "penalty": self.penalty,
            "baseline_us": self.baseline_us,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, payload):
        """Inverse of :meth:`to_dict` (version field is ignored)."""
        return cls(
            payload["case_id"], payload["solution"], payload["seed"],
            payload["duration_s"], payload.get("isolation_level"),
            payload.get("penalty"), payload.get("baseline_us"),
            payload.get("faults"),
        )

    def key(self, fingerprint):
        """Content address: sha256 of (canonical spec, code fingerprint).

        ``fingerprint`` is the hash of every ``repro`` source file (see
        :func:`repro.runner.cache.code_fingerprint`), so *any* code
        change invalidates every cached result — the conservative
        invalidation rule documented in docs/RUNNING_EXPERIMENTS.md.
        """
        body = json.dumps(
            {"spec": self.to_dict(), "code": fingerprint},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def label(self):
        """Short human-readable tag for progress lines."""
        parts = ["%s:%s" % (self.case_id, self.solution), "seed%d" % self.seed]
        if self.isolation_level is not None:
            parts.append("rule%d" % self.isolation_level)
        if self.penalty is not None:
            parts.append(self.penalty)
        if self.faults is not None:
            parts.append("faults[%s]" % self.faults)
        return ":".join(parts)

    def __repr__(self):
        return "JobSpec(%s)" % self.label()

    def __eq__(self, other):
        return (isinstance(other, JobSpec)
                and self.to_dict() == other.to_dict())

    def __hash__(self):
        return hash(json.dumps(self.to_dict(), sort_keys=True))


def baseline_spec(case_id, seed, duration_s):
    """The To job (victim alone, no noisy activity) for a case."""
    return JobSpec(case_id, "no_interference", seed=seed,
                   duration_s=duration_s)


def interference_spec(case_id, seed, duration_s):
    """The Ti job (noisy activity active, vanilla build) for a case."""
    return JobSpec(case_id, "none", seed=seed, duration_s=duration_s)


def solution_spec(case_id, solution, seed, duration_s, to_us=None,
                  isolation_level=None, penalty=None):
    """The Ts job for one solution.

    ``to_us`` (the measured To) is embedded only for solutions that
    actually consume it, keeping the content address of e.g. a pBox run
    independent of the baseline measurement.
    """
    baseline_us = to_us if solution in BASELINE_SOLUTIONS else None
    return JobSpec(case_id, solution, seed=seed, duration_s=duration_s,
                   isolation_level=isolation_level, penalty=penalty,
                   baseline_us=baseline_us)
