"""Job execution: serial in-process, or fanned out over workers.

The execution contract is the heart of the runner's determinism story:

- :func:`execute_spec` resets the global thread-id counter before every
  job and builds a fresh kernel from the spec's seed, so a job's result
  depends *only* on its spec and the code — never on which process ran
  it, how many jobs ran before it, or in which order the pool finished.
- Workers return plain JSON-safe dicts; the parent process is the only
  cache writer.  Parallel results are therefore bit-identical to a
  serial sweep (``tests/test_runner.py`` and
  ``benchmarks/test_runner_speedup.py`` both assert this).

Self-healing (docs/ROBUSTNESS.md): workers catch their own exceptions
and hand ``(key, result, error, wall)`` tuples back, so one bad job can
never wedge the pool; failed or timed-out jobs are retried with
exponential backoff; repeated pool failures degrade the run to the
serial path; and Ctrl-C surfaces as :class:`RunInterrupted` carrying
every completed result so callers can persist partial output atomically
instead of losing the sweep.
"""

import multiprocessing
import os
import signal
import threading
import time
import warnings
from collections import deque

from repro.runner.cache import ResultCache, code_fingerprint

#: Result-dict schema version, stored in every payload so readers can
#: reject entries written by a future incompatible runner.
#: v2: optional ``chaos`` / ``error`` keys (fault-injection runs).
RESULT_VERSION = 2

#: Consecutive-ish pool failures tolerated before the runner gives up
#: on the pool and finishes the sweep serially in the parent.
DEGRADE_AFTER = 3


class RunInterrupted(Exception):
    """Ctrl-C mid-run; ``results`` holds every job completed so far."""

    def __init__(self, results):
        super().__init__(
            "run interrupted with %d completed jobs" % len(results))
        self.results = results


class JobFailedError(Exception):
    """A job kept failing after every retry (and a serial last chance)."""

    def __init__(self, spec, error):
        super().__init__("job %s failed after retries: %s"
                         % (spec.label(), error))
        self.spec = spec
        self.error = error


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall budget."""


def _preferred_start_method():
    """``fork`` when the platform offers it (cheap workers), else default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


def execute_spec(spec_dict):
    """Run one job described by a :meth:`JobSpec.to_dict` payload.

    Returns a plain JSON-serializable result dict (latency aggregates,
    sample counts, kernel and manager statistics).  Deterministic: the
    same ``spec_dict`` always produces the same dict, byte for byte,
    in any process (seed contract — see the module docstring).

    When the spec carries a ``faults`` cocktail, a
    :class:`repro.faults.ChaosHarness` is attached as the run observer
    and its summary lands under ``result["chaos"]``.  A fault cocktail
    that makes the simulation itself fail is *contained*: the exception
    becomes ``result["error"]`` plus a ``run-completes`` invariant
    violation instead of killing the worker.
    """
    from repro.cases import Solution, get_case, run_case
    from repro.core import FixedPenalty
    from repro.sim.errors import SimulationError
    from repro.sim.thread import reset_thread_ids

    reset_thread_ids()
    case = get_case(spec_dict["case_id"])
    solution = Solution(spec_dict["solution"])
    engine = None
    penalty = spec_dict.get("penalty")
    if penalty:
        kind, _, value = penalty.partition(":")
        if kind != "fixed":
            raise ValueError("unknown penalty spec %r" % penalty)
        engine = FixedPenalty(int(value))

    harness = None
    observer = None
    faults = spec_dict.get("faults")
    if faults:
        from repro.faults import ChaosHarness

        harness = ChaosHarness(
            [kind.strip() for kind in faults.split(",") if kind.strip()],
            seed=spec_dict.get("seed", 1),
            case_id=spec_dict["case_id"],
        )
        observer = harness.observer

    try:
        run = run_case(
            case,
            solution,
            seed=spec_dict.get("seed", 1),
            duration_s=spec_dict.get("duration_s"),
            baseline_us=spec_dict.get("baseline_us"),
            isolation_level=spec_dict.get("isolation_level"),
            penalty_engine=engine,
            observer=observer,
        )
    except (SimulationError, RuntimeError) as exc:
        if harness is None or not harness.attached:
            raise
        harness.record_failure(exc)
        return {
            "version": RESULT_VERSION,
            "victim_mean_us": None,
            "victim_p95_us": None,
            "noisy_mean_us": None,
            "victim_samples": 0,
            "noisy_samples": 0,
            "sim_stats": {},
            "manager_stats": {},
            "error": "%s: %s" % (type(exc).__name__, exc),
            "chaos": harness.finish(),
        }

    victim_count = sum(len(recorder.samples_us)
                       for recorder in run.env.victim_recorders)
    noisy_count = sum(len(recorder.samples_us)
                      for recorder in run.env.noisy_recorders)
    result = {
        "version": RESULT_VERSION,
        "victim_mean_us": run.victim_mean_us,
        "victim_p95_us": run.victim_p95_us,
        "noisy_mean_us": run.noisy_mean_us,
        "victim_samples": victim_count,
        "noisy_samples": noisy_count,
        "sim_stats": dict(run.env.kernel.stats),
        "manager_stats": dict(run.manager.stats),
    }
    engine = getattr(run.manager, "penalty_engine", None)
    if engine is not None and hasattr(engine, "action_count"):
        result["penalty_actions"] = engine.action_count()
    if harness is not None:
        result["chaos"] = harness.finish()
    return result


# ----------------------------------------------------------------------
# Worker-side hardening
# ----------------------------------------------------------------------


def _maybe_inject_test_fault(key):
    """Deterministic worker faults for the hardening tests.

    ``REPRO_RUNNER_FAULT`` selects the failure (``crash:<n>``,
    ``timeout:<n>``, ``crash-pool``).  For ``crash``/``timeout``,
    ``REPRO_RUNNER_FAULT_DIR`` must point at a shared directory: the
    first ``n`` attempts of each job claim an ``O_EXCL`` marker file
    and fail, so retries (which find the markers taken) succeed —
    exactly the transient-fault shape the retry loop must survive.
    ``crash-pool`` fails in pool workers only, forever, which forces
    the degrade-to-serial path.
    """
    fault = os.environ.get("REPRO_RUNNER_FAULT")
    if not fault:
        return
    kind, _, count = fault.partition(":")
    if kind == "crash-pool":
        if multiprocessing.current_process().name != "MainProcess":
            raise RuntimeError("injected pool-worker crash (test fault)")
        return
    marker_dir = os.environ.get("REPRO_RUNNER_FAULT_DIR")
    if not marker_dir:
        return
    for attempt in range(int(count or 1)):
        marker = os.path.join(marker_dir, "%s.%d" % (key[:16], attempt))
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        if kind == "timeout":
            time.sleep(3600)  # parked until the job alarm fires
        raise RuntimeError(
            "injected worker crash (test fault, attempt %d)" % attempt)


class _job_alarm:
    """SIGALRM-based wall-clock budget around one job.

    Works in the parent and in forked pool workers (each runs jobs on
    its main thread).  Platforms without ``SIGALRM`` simply run without
    a budget — the retry/degrade machinery still applies.

    ``signal.signal`` raises ``ValueError`` off the main thread, so a
    job driven from a worker thread (embedding harnesses, the
    checkpoint supervisor) cannot use the alarm.  Rather than losing
    the budget silently, the alarm degrades to a wall-clock *deadline*:
    the job runs unpreempted, but a budget overrun is still detected on
    exit and raised as :class:`JobTimeout` (with a warning so the
    degraded coverage is visible).
    """

    def __init__(self, timeout_s):
        self.timeout_s = timeout_s
        self._previous = None
        self._deadline = None

    def __enter__(self):
        if not self.timeout_s or not hasattr(signal, "SIGALRM"):
            return self
        if threading.current_thread() is not threading.main_thread():
            warnings.warn(
                "job timeout requested off the main thread: SIGALRM is "
                "unavailable, falling back to a post-hoc deadline check",
                RuntimeWarning, stacklevel=2)
            self._deadline = time.perf_counter() + self.timeout_s
            return self

        def _expire(signum, frame):
            raise JobTimeout("job exceeded %.1fs wall budget"
                             % self.timeout_s)

        self._previous = signal.signal(signal.SIGALRM, _expire)
        signal.setitimer(signal.ITIMER_REAL, self.timeout_s)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._previous is not None:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self._previous)
        if (self._deadline is not None and exc_type is None
                and time.perf_counter() > self._deadline):
            raise JobTimeout(
                "job exceeded %.1fs wall budget (deadline fallback)"
                % self.timeout_s)
        return False


def _run_one(key, spec_dict, timeout_s):
    """Execute one job under the test-fault hook and the wall budget.

    The fault hook runs *inside* the alarm window: an injected
    ``timeout`` fault parks forever and must be cut down by the budget,
    exactly like a genuinely wedged job.
    """
    with _job_alarm(timeout_s):
        _maybe_inject_test_fault(key)
        return execute_spec(spec_dict)


def _execute_keyed(item):
    """Pool worker: never raises (except Ctrl-C).

    Returns ``(key, result, error, wall_s)``; any exception — including
    an injected crash or a :class:`JobTimeout` — is folded into the
    ``error`` string so ``imap_unordered`` keeps draining and one bad
    job cannot take the pool down.
    """
    key, spec_dict, timeout_s = item
    started = time.perf_counter()
    try:
        result = _run_one(key, spec_dict, timeout_s)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        return (key, None, "%s: %s" % (type(exc).__name__, exc),
                time.perf_counter() - started)
    return key, result, None, time.perf_counter() - started


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------


def run_jobs(specs, jobs=1, cache=None, use_cache=True, progress=None,
             fingerprint=None, timeout_s=None, retries=2,
             retry_backoff_s=0.05, stats=None):
    """Execute ``specs``; return ``{cache_key: result_dict}``.

    Parameters
    ----------
    specs:
        Iterable of :class:`~repro.runner.jobs.JobSpec`.  Duplicate
        specs (same content address) are executed once.
    jobs:
        Worker processes.  ``1`` runs everything in-process (the
        *serial path*); higher values fan uncached jobs out over a
        ``multiprocessing`` pool.  Results are identical either way.
    cache / use_cache:
        With ``use_cache`` true (default), each job is first looked up
        in the content-addressed ``cache`` (a fresh
        :class:`ResultCache` at the default root if not given); hits
        skip execution entirely, misses are executed and stored.  With
        ``use_cache`` false the cache is neither read nor written.
    progress:
        Optional callable ``(done, total, spec, cached, wall_s)``
        invoked after every job completion, including cache hits.
    fingerprint:
        Code fingerprint override; defaults to
        :func:`code_fingerprint` of the installed ``repro`` package.
        Tests use this to simulate code changes.
    timeout_s:
        Optional per-job wall-clock budget; a job over budget fails
        with :class:`JobTimeout` and is retried like a crash.
    retries:
        Failed-job retry budget (exponential backoff between attempts,
        starting at ``retry_backoff_s``).  A job that exhausts it gets
        one final serial attempt in the parent; if that also fails,
        :class:`JobFailedError` propagates.
    stats:
        Optional dict filled with hardening counters (``retries``,
        ``worker_errors``, ``timeouts``, ``degraded``).

    Raises :class:`RunInterrupted` on Ctrl-C, carrying every completed
    result so the caller can persist partial output.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    if use_cache and cache is None:
        cache = ResultCache()

    keyed = []
    seen = set()
    for spec in specs:
        key = spec.key(fingerprint)
        if key in seen:
            continue
        seen.add(key)
        keyed.append((key, spec))

    hard_stats = stats if stats is not None else {}
    hard_stats.setdefault("retries", 0)
    hard_stats.setdefault("worker_errors", 0)
    hard_stats.setdefault("timeouts", 0)
    hard_stats.setdefault("degraded", False)

    results = {}
    total = len(keyed)
    done = 0
    pending = []
    for key, spec in keyed:
        cached_result = cache.get(key) if use_cache else None
        if cached_result is not None:
            results[key] = cached_result
            done += 1
            if progress is not None:
                progress(done, total, spec, True, 0.0)
        else:
            pending.append((key, spec))

    if not pending:
        return results

    def _record(key, spec, result, wall_s):
        nonlocal done
        results[key] = result
        if use_cache:
            cache.put(key, spec.to_dict(), fingerprint, result)
        done += 1
        if progress is not None:
            progress(done, total, spec, False, wall_s)

    def _note_failure(error, attempts):
        hard_stats["worker_errors"] += 1
        if "JobTimeout" in error:
            hard_stats["timeouts"] += 1
        if attempts <= retries:
            hard_stats["retries"] += 1
            time.sleep(retry_backoff_s * (2 ** min(attempts - 1, 4)))

    workers = max(1, int(jobs or 1))
    queue = deque((key, spec, 0) for key, spec in pending)
    use_pool = workers > 1 and len(queue) > 1
    pool_strikes = 0

    try:
        while queue:
            if use_pool and pool_strikes >= DEGRADE_AFTER:
                use_pool = False
                hard_stats["degraded"] = True

            if not use_pool:
                key, spec, attempts = queue.popleft()
                started = time.perf_counter()
                try:
                    result = _run_one(key, spec.to_dict(), timeout_s)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    attempts += 1
                    error = "%s: %s" % (type(exc).__name__, exc)
                    # retries pool-side attempts count too; the serial
                    # path grants one extra, final attempt on top.
                    if attempts > retries + 1:
                        raise JobFailedError(spec, error)
                    _note_failure(error, attempts)
                    queue.append((key, spec, attempts))
                    continue
                _record(key, spec, result,
                        time.perf_counter() - started)
                continue

            # Pool round: drain the current queue through the workers;
            # failures re-queue (with their attempt count) for the next
            # round, so a transient crash costs one round, not the run.
            batch = list(queue)
            queue.clear()
            attempts_by_key = {key: att for key, _, att in batch}
            spec_by_key = {key: spec for key, spec, _ in batch}
            finished = set()
            items = [(key, spec.to_dict(), timeout_s)
                     for key, spec, _ in batch]
            method = _preferred_start_method()
            ctx = (multiprocessing.get_context(method) if method
                   else multiprocessing.get_context())
            try:
                with ctx.Pool(processes=min(workers, len(items))) as pool:
                    # chunksize=1: jobs run for seconds each, so load
                    # balance beats batching; completion order is
                    # irrelevant (results are keyed).
                    for key, result, error, wall_s in pool.imap_unordered(
                            _execute_keyed, items, chunksize=1):
                        finished.add(key)
                        if error is None:
                            _record(key, spec_by_key[key], result, wall_s)
                            continue
                        pool_strikes += 1
                        attempts = attempts_by_key[key] + 1
                        _note_failure(error, attempts)
                        queue.append((key, spec_by_key[key], attempts))
                        if attempts > retries:
                            # Out of pool retries: the serial path gets
                            # the last chance (and raises if it fails).
                            use_pool = False
            except KeyboardInterrupt:
                raise
            except Exception:
                # The pool machinery itself broke (lost worker, IPC
                # failure): requeue whatever did not finish and fall
                # back to the serial path for the rest of the run.
                pool_strikes = DEGRADE_AFTER
                for key, spec, attempts in batch:
                    if key not in finished and key not in results:
                        queue.append((key, spec, attempts))
    except KeyboardInterrupt:
        raise RunInterrupted(results)

    return results
