"""Job execution: serial in-process, or fanned out over workers.

The execution contract is the heart of the runner's determinism story:

- :func:`execute_spec` resets the global thread-id counter before every
  job and builds a fresh kernel from the spec's seed, so a job's result
  depends *only* on its spec and the code — never on which process ran
  it, how many jobs ran before it, or in which order the pool finished.
- Workers return plain JSON-safe dicts; the parent process is the only
  cache writer.  Parallel results are therefore bit-identical to a
  serial sweep (``tests/test_runner.py`` and
  ``benchmarks/test_runner_speedup.py`` both assert this).
"""

import multiprocessing
import time

from repro.runner.cache import ResultCache, code_fingerprint

#: Result-dict schema version, stored in every payload so readers can
#: reject entries written by a future incompatible runner.
RESULT_VERSION = 1


def _preferred_start_method():
    """``fork`` when the platform offers it (cheap workers), else default."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


def execute_spec(spec_dict):
    """Run one job described by a :meth:`JobSpec.to_dict` payload.

    Returns a plain JSON-serializable result dict (latency aggregates,
    sample counts, kernel and manager statistics).  Deterministic: the
    same ``spec_dict`` always produces the same dict, byte for byte,
    in any process (seed contract — see the module docstring).
    """
    from repro.cases import Solution, get_case, run_case
    from repro.core import FixedPenalty
    from repro.sim.thread import reset_thread_ids

    reset_thread_ids()
    case = get_case(spec_dict["case_id"])
    solution = Solution(spec_dict["solution"])
    engine = None
    penalty = spec_dict.get("penalty")
    if penalty:
        kind, _, value = penalty.partition(":")
        if kind != "fixed":
            raise ValueError("unknown penalty spec %r" % penalty)
        engine = FixedPenalty(int(value))
    run = run_case(
        case,
        solution,
        seed=spec_dict.get("seed", 1),
        duration_s=spec_dict.get("duration_s"),
        baseline_us=spec_dict.get("baseline_us"),
        isolation_level=spec_dict.get("isolation_level"),
        penalty_engine=engine,
    )
    victim_count = sum(len(recorder.samples_us)
                       for recorder in run.env.victim_recorders)
    noisy_count = sum(len(recorder.samples_us)
                      for recorder in run.env.noisy_recorders)
    result = {
        "version": RESULT_VERSION,
        "victim_mean_us": run.victim_mean_us,
        "victim_p95_us": run.victim_p95_us,
        "noisy_mean_us": run.noisy_mean_us,
        "victim_samples": victim_count,
        "noisy_samples": noisy_count,
        "sim_stats": dict(run.env.kernel.stats),
        "manager_stats": dict(run.manager.stats),
    }
    engine = getattr(run.manager, "penalty_engine", None)
    if engine is not None and hasattr(engine, "action_count"):
        result["penalty_actions"] = engine.action_count()
    return result


def _execute_keyed(item):
    """Pool worker: ``(key, spec_dict)`` -> ``(key, result, wall_s)``."""
    key, spec_dict = item
    started = time.perf_counter()
    result = execute_spec(spec_dict)
    return key, result, time.perf_counter() - started


def run_jobs(specs, jobs=1, cache=None, use_cache=True, progress=None,
             fingerprint=None):
    """Execute ``specs``; return ``{cache_key: result_dict}``.

    Parameters
    ----------
    specs:
        Iterable of :class:`~repro.runner.jobs.JobSpec`.  Duplicate
        specs (same content address) are executed once.
    jobs:
        Worker processes.  ``1`` runs everything in-process (the
        *serial path*); higher values fan uncached jobs out over a
        ``multiprocessing`` pool.  Results are identical either way.
    cache / use_cache:
        With ``use_cache`` true (default), each job is first looked up
        in the content-addressed ``cache`` (a fresh
        :class:`ResultCache` at the default root if not given); hits
        skip execution entirely, misses are executed and stored.  With
        ``use_cache`` false the cache is neither read nor written.
    progress:
        Optional callable ``(done, total, spec, cached, wall_s)``
        invoked after every job completion, including cache hits.
    fingerprint:
        Code fingerprint override; defaults to
        :func:`code_fingerprint` of the installed ``repro`` package.
        Tests use this to simulate code changes.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    if use_cache and cache is None:
        cache = ResultCache()

    keyed = []
    seen = set()
    for spec in specs:
        key = spec.key(fingerprint)
        if key in seen:
            continue
        seen.add(key)
        keyed.append((key, spec))

    results = {}
    total = len(keyed)
    done = 0
    pending = []
    for key, spec in keyed:
        cached_result = cache.get(key) if use_cache else None
        if cached_result is not None:
            results[key] = cached_result
            done += 1
            if progress is not None:
                progress(done, total, spec, True, 0.0)
        else:
            pending.append((key, spec))

    if not pending:
        return results

    workers = max(1, int(jobs or 1))
    spec_by_key = dict(pending)

    def _record(key, result, wall_s):
        nonlocal done
        results[key] = result
        if use_cache:
            cache.put(key, spec_by_key[key].to_dict(), fingerprint, result)
        done += 1
        if progress is not None:
            progress(done, total, spec_by_key[key], False, wall_s)

    if workers == 1 or len(pending) == 1:
        for key, spec in pending:
            started = time.perf_counter()
            result = execute_spec(spec.to_dict())
            _record(key, result, time.perf_counter() - started)
        return results

    items = [(key, spec.to_dict()) for key, spec in pending]
    method = _preferred_start_method()
    ctx = (multiprocessing.get_context(method) if method
           else multiprocessing.get_context())
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        # chunksize=1: jobs run for seconds each, so load balance beats
        # batching; completion order is irrelevant (results are keyed).
        for key, result, wall_s in pool.imap_unordered(
                _execute_keyed, items, chunksize=1):
            _record(key, result, wall_s)
    return results
