"""Content-addressed on-disk result cache.

Layout (sharded like git's object store so directories stay small)::

    <root>/
      objects/
        ab/
          ab3f...e9.json     # {"spec": ..., "code": ..., "result": ...}

The key is ``JobSpec.key(code_fingerprint())``: a sha256 over the
canonical job spec *and* a fingerprint of every ``.py`` file in the
``repro`` package.  Invalidation is therefore automatic and
conservative — touch any source file and every prior entry simply stops
being addressed (the files stay on disk; delete the cache root to
reclaim space).

Only the parent runner process writes entries (workers hand results
back over the pool), and each write lands via ``os.replace`` of a
temporary file, so a crashed or interrupted sweep can never leave a
truncated JSON behind a valid key.
"""

import contextlib
import json
import os

try:
    import fcntl
except ImportError:  # non-POSIX: atomic rename is the only guard
    fcntl = None

#: Default cache directory (relative to the working directory) when
#: neither the ``REPRO_CACHE_DIR`` environment variable nor an explicit
#: root is given.
DEFAULT_CACHE_DIR = ".repro-cache"

_fingerprints = {}


def code_fingerprint(root=None):
    """Hash the ``repro`` source tree; memoized per root path.

    Returns a sha256 hexdigest over the sorted (relative path, content
    hash) pairs of every ``.py`` file under ``root`` (default: the
    installed ``repro`` package directory).  This is the *code* half of
    every cache key: any source change — even a comment — produces a
    new fingerprint and thus invalidates all cached results.  That is
    deliberate: re-running is cheap and always correct, while tracking
    the true dependency slice of a result is not.
    """
    import hashlib

    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.abspath(root)
    cached = _fingerprints.get(root)
    if cached is not None:
        return cached
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            entries.append((os.path.relpath(path, root), digest))
    body = json.dumps(entries, separators=(",", ":"))
    fingerprint = hashlib.sha256(body.encode("utf-8")).hexdigest()
    _fingerprints[root] = fingerprint
    return fingerprint


def clear_fingerprint_memo():
    """Drop memoized fingerprints (tests that mutate source trees)."""
    _fingerprints.clear()


class ResultCache:
    """Content-addressed store of job results.

    Parameters
    ----------
    root:
        Cache directory.  Defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache`` under the current working directory.

    ``hits``/``misses``/``writes`` count this instance's traffic; the
    sweep summary and ``results/SWEEP.json`` report them.
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    def path_for(self, key):
        """On-disk path of ``key`` (two-character shard, git-style)."""
        return os.path.join(self.root, "objects", key[:2], key + ".json")

    def get(self, key):
        """Return the cached result payload for ``key``, or ``None``.

        A missing file is a plain miss.  A *corrupt* entry (interrupted
        write from a pre-atomic-rename version, disk trouble, manual
        tampering) is quarantined: renamed to ``<entry>.bad`` so it is
        never re-read (and re-failed) on every subsequent lookup, while
        the evidence stays on disk for inspection.
        """
        path = self.path_for(key)
        try:
            handle = open(path)
        except OSError:
            self.misses += 1
            return None
        try:
            with handle:
                entry = json.load(handle)
            result = entry["result"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            self.quarantined += 1
            try:
                os.replace(path, path + ".bad")
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    @contextlib.contextmanager
    def write_lock(self):
        """Exclusive advisory lock over this cache's writes.

        Two concurrent sweeps writing the same key would each rename a
        complete temporary file, so entries can't be torn -- but their
        ``.tmp.<pid>`` files can collide if one process recycles the
        other's pid after a crash.  The flock serializes writers per
        cache root, which also keeps ``writes`` accounting sane.  On
        platforms without ``fcntl`` the lock degrades to a no-op and
        the atomic rename remains the only (sufficient) guard.
        """
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        lock_path = os.path.join(self.root, "write.lock")
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def put(self, key, spec_dict, fingerprint, result):
        """Store ``result`` under ``key`` atomically.

        The spec and fingerprint are stored alongside the result purely
        for debuggability (``python -m json.tool`` on an object answers
        "what produced this?"); reads only use ``result``.
        """
        path = self.path_for(key)
        with self.write_lock():
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp.%d" % os.getpid()
            with open(tmp, "w") as handle:
                json.dump({"spec": spec_dict, "code": fingerprint,
                           "result": result}, handle)
            os.replace(tmp, path)
        self.writes += 1

    def __len__(self):
        """Number of objects currently stored."""
        count = 0
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return 0
        for shard in os.listdir(objects):
            shard_dir = os.path.join(objects, shard)
            if os.path.isdir(shard_dir):
                count += sum(1 for name in os.listdir(shard_dir)
                             if name.endswith(".json"))
        return count

    def __repr__(self):
        return "ResultCache(root=%r, hits=%d, misses=%d)" % (
            self.root, self.hits, self.misses)
