"""Parallel experiment runner with content-addressed result caching.

The registry's figure/table sweeps are embarrassingly parallel — every
run is an independent, seeded, deterministic simulation — and they are
re-run constantly while iterating on the pBox manager.  This package
makes the sweep itself a first-class subsystem:

- :mod:`repro.runner.jobs` — :class:`JobSpec`: the canonical, hashable
  description of one ``run_case`` invocation;
- :mod:`repro.runner.cache` — :class:`ResultCache`: a git-style
  content-addressed object store keyed by (job spec, code
  fingerprint), so unchanged jobs are instant replays and *any* source
  change invalidates everything (conservative but always correct);
- :mod:`repro.runner.runner` — :func:`run_jobs`: cache-aware execution,
  in-process or fanned out over ``multiprocessing`` workers, with
  per-job thread-id/RNG resets so parallel results are bit-identical
  to serial ones;
- :mod:`repro.runner.sweep` — :func:`run_sweep`: the two-stage
  To/Ti → Ts job graph over the case registry, aggregated into
  :class:`SweepEvaluation` objects (drop-in for
  ``repro.cases.CaseEvaluation``) and persisted as
  ``results/SWEEP.json``.

Entry points: ``python -m repro sweep`` (CLI), the helpers in
``benchmarks/_common.py`` (figure/table benchmarks), and
docs/RUNNING_EXPERIMENTS.md (the user guide).
"""

from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    clear_fingerprint_memo,
    code_fingerprint,
)
from repro.runner.jobs import (
    JobSpec,
    baseline_spec,
    interference_spec,
    solution_spec,
)
from repro.runner.runner import (
    JobFailedError,
    JobTimeout,
    RunInterrupted,
    execute_spec,
    run_jobs,
)
from repro.runner.sweep import (
    JobResult,
    SweepEvaluation,
    SweepInterrupted,
    SweepResult,
    run_sweep,
    sweep_case_ids,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "JobFailedError",
    "JobResult",
    "JobSpec",
    "JobTimeout",
    "ResultCache",
    "RunInterrupted",
    "SweepEvaluation",
    "SweepInterrupted",
    "SweepResult",
    "baseline_spec",
    "clear_fingerprint_memo",
    "code_fingerprint",
    "execute_spec",
    "interference_spec",
    "run_jobs",
    "run_sweep",
    "solution_spec",
    "sweep_case_ids",
]
