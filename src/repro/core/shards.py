"""Per-tenant manager shards behind one manager-shaped facade.

At the scale sweep's top end one :class:`~repro.core.manager.PBoxManager`
supervises a thousand pBoxes: every map it keeps (competitor entries,
holder index, last-releaser, heal trends) is a single process-wide dict,
and the working set the detection pipeline touches grows with the whole
application even though each tenant's contention is private to its own
resource keys.  :class:`ShardedPBoxManager` splits that state per
tenant: each shard is a full, unmodified ``PBoxManager`` whose maps
only ever contain its own tenant's pBoxes and keys, so per-event cost
is paid against tenant-sized state (docs/PERFORMANCE.md has the cost
model).  ROADMAP item 2 (per-process kernel shards) gets its seam here:
a shard is exactly the manager state that would move into a process.

What shards share -- the application-global pieces:

- the **psid allocator**, so psids stay unique and creation-ordered
  across shards (golden traces render pBoxes by psid);
- the **penalty budget** (:class:`~repro.core.budget.PenaltyBudget`),
  bounding the app-wide outstanding penalty time no matter how many
  shards detect at once;
- one **resume-hook router** on the kernel: penalties are delivered by
  the owning shard, looked up through the pBox itself (O(1), no
  broadcast over shards).

Sharding is sound when resource keys are shard-local -- true by
construction in the scale scenario (every tenant contends on its own
server instance's objects).  A key shared across shards would split its
competitor entries and blind cross-shard detection; route such keys to
one shard via ``shard_of``.
"""

import itertools
import re

from repro.core.manager import PBoxManager

#: Scale-harness thread naming (``t3-oltp``): the tenant prefix is the
#: shard key.  Kept in sync with ``repro.obs.telemetry.tenant_of`` but
#: defined locally -- core must not depend on the observability layer.
_TENANT_RE = re.compile(r"^(t\d+)-")

#: Shard for threads with no tenant prefix (case runs, helpers).
DEFAULT_SHARD = "_shared"


def tenant_shard(thread):
    """Default ``shard_of``: the thread's tenant prefix, else shared."""
    name = getattr(thread, "name", None)
    if isinstance(name, str):
        match = _TENANT_RE.match(name)
        if match:
            return match.group(1)
    return DEFAULT_SHARD


class ShardedPBoxManager:
    """Manager facade routing each pBox to its tenant's shard.

    Drop-in for ``PBoxManager`` everywhere the harness touches one
    (runtime, scenario builders, telemetry, fault injector, golden
    stats): with a single shard it is behaviorally identical to a plain
    manager -- the golden corpus replays bit-identically through it.

    Parameters
    ----------
    kernel:
        The simulated kernel; the facade registers the one resume-hook
        router (shards register none).
    shard_of:
        ``shard_of(thread) -> key`` mapping a pBox's thread to its
        shard; defaults to :func:`tenant_shard`.
    penalty_budget:
        Shared :class:`~repro.core.budget.PenaltyBudget`; ``None``
        leaves penalties unbudgeted (plain-manager behavior).
    manager_kwargs:
        Forwarded to every shard's ``PBoxManager`` (penalty_engine,
        scan_policy, ablation switches, ...).  A shared
        ``penalty_engine`` instance is fine: its adaptation state is
        keyed by (noisy psid, key), which never collides across shards.
    """

    def __init__(self, kernel, shard_of=None, enabled=True,
                 penalty_budget=None, **manager_kwargs):
        self.kernel = kernel
        self.enabled = enabled
        self.shard_of = shard_of or tenant_shard
        self.penalty_budget = penalty_budget
        self._manager_kwargs = manager_kwargs
        self._psid_alloc = itertools.count(1)
        self._shards = {}        # shard key -> PBoxManager
        self._pbox_shard = {}    # psid -> shard (release prunes)
        self._shard_patches = []
        kernel.add_resume_hook(self._resume_hook)

    # -- shard plumbing --------------------------------------------------

    def shard(self, key):
        """The shard for ``key``, created on first use."""
        shard = self._shards.get(key)
        if shard is None:
            shard = PBoxManager(
                self.kernel, enabled=self.enabled,
                psid_alloc=self._psid_alloc,
                penalty_budget=self.penalty_budget,
                register_resume_hook=False,
                **self._manager_kwargs)
            for patch in self._shard_patches:
                patch(shard)
            self._shards[key] = shard
        return shard

    def add_shard_patch(self, patch):
        """Apply ``patch(shard)`` to every current and future shard.

        The A/B throughput guard uses this to rebind shard internals to
        their legacy implementations before any tenant is built.
        """
        self._shard_patches.append(patch)
        for shard in self._shards.values():
            patch(shard)

    @property
    def shard_count(self):
        return len(self._shards)

    def _resume_hook(self, thread):
        """Route penalty delivery to the pBox's owning shard."""
        pbox = thread.pbox
        if pbox is None:
            return 0
        shard = self._pbox_shard.get(pbox.psid)
        if shard is None:
            return 0
        return shard._resume_hook(thread)

    # -- lifecycle (routed) ----------------------------------------------

    def create(self, rule, thread=None):
        if thread is None:
            thread = self.kernel.current_thread
        shard = self.shard(self.shard_of(thread))
        pbox = shard.create(rule, thread=thread)
        self._pbox_shard[pbox.psid] = shard
        return pbox

    def release(self, pbox):
        shard = self._pbox_shard.pop(pbox.psid, None)
        if shard is not None:
            shard.release(pbox)

    def activate(self, pbox):
        self._pbox_shard[pbox.psid].activate(pbox)

    def freeze(self, pbox):
        self._pbox_shard[pbox.psid].freeze(pbox)

    def bind(self, pbox, thread, shared=False):
        self._pbox_shard[pbox.psid].bind(pbox, thread, shared=shared)

    def unbind(self, pbox):
        self._pbox_shard[pbox.psid].unbind(pbox)

    def get(self, psid):
        shard = self._pbox_shard.get(psid)
        return None if shard is None else shard.get(psid)

    def pboxes(self):
        """Snapshot of live pBoxes across shards, in psid order."""
        boxes = []
        for shard in self._shards.values():
            boxes.extend(shard.pboxes())
        boxes.sort(key=lambda pbox: pbox.psid)
        return boxes

    # -- event pipeline (routed) -----------------------------------------

    def update(self, pbox, key, event):
        self._pbox_shard[pbox.psid].update(pbox, key, event)

    def contended(self, key, pbox=None):
        """Contention check for the library cost model.

        With the pBox in hand the question is answered by its shard
        alone (keys are shard-local); without one, fall back to asking
        every shard -- correct, but O(shards), so hot callers pass the
        pBox.
        """
        if pbox is not None:
            shard = self._pbox_shard.get(pbox.psid)
            return shard is not None and shard.contended(key, pbox)
        return any(shard.contended(key) for shard in self._shards.values())

    def scan(self, full=False):
        """Drain every shard's dirty set, in sorted shard order."""
        return sum(self._shards[key].scan(full=full)
                   for key in sorted(self._shards))

    def drain_dirty(self):
        dirty = set()
        for shard in self._shards.values():
            dirty |= shard.drain_dirty()
        return dirty

    def drain_active(self):
        active = set()
        for shard in self._shards.values():
            active |= shard.drain_active()
        return active

    # -- penalties (routed) ----------------------------------------------

    def inject_penalty(self, pbox, delay_us):
        self._pbox_shard[pbox.psid].inject_penalty(pbox, delay_us)

    def is_task_deferred(self, pbox):
        shard = self._pbox_shard.get(pbox.psid)
        return shard is not None and shard.is_task_deferred(pbox)

    def make_queue_admission(self, pbox_of_item):
        def admission(item):
            pbox = pbox_of_item(item)
            if pbox is None:
                return True
            return not self.is_task_deferred(pbox)

        return admission

    # -- aggregate views -------------------------------------------------

    @property
    def stats(self):
        """Shard stats summed into one plain dict (golden pins this)."""
        total = None
        for key in sorted(self._shards):
            shard_stats = self._shards[key].stats
            if total is None:
                total = dict(shard_stats)
            else:
                for name, value in shard_stats.items():
                    total[name] += value
        if total is None:
            # No shard yet: a fresh PBoxManager's zeroed stats dict.
            total = dict(PBoxManager(
                self.kernel, enabled=False,
                register_resume_hook=False).stats)
        return total

    @property
    def scan_stats(self):
        total = {"scans": 0, "evaluated": 0, "skipped_clean": 0,
                 "peak_dirty": 0}
        for shard in self._shards.values():
            for name, value in shard.scan_stats.items():
                if name == "peak_dirty":
                    total[name] = max(total[name], value)
                else:
                    total[name] += value
        return total

    @property
    def competitor_map(self):
        """Merged read-only view (debugging; hot paths use contended)."""
        merged = {}
        for key in sorted(self._shards):
            merged.update(self._shards[key].competitor_map)
        return merged

    def snapshot_state(self, label=repr):
        """JSON-safe walk of every shard (checkpoint walker).

        Shards are walked in sorted-key order; the psid -> shard routing
        map is rendered as psid -> shard key (the shard object itself is
        identity, not state).  Like the plain manager's walker this is
        pure observation -- nothing is allocated, fired, or consumed.
        """
        shard_keys = {id(shard): key for key, shard in self._shards.items()}
        return {
            "enabled": self.enabled,
            "shards": [(key, self._shards[key].snapshot_state(label))
                       for key in sorted(self._shards)],
            "pbox_shard": sorted(
                (psid, shard_keys[id(shard)])
                for psid, shard in self._pbox_shard.items()),
            "budget": (None if self.penalty_budget is None
                       else self.penalty_budget.snapshot_state()),
        }

    def __repr__(self):
        return "ShardedPBoxManager(shards=%d, pboxes=%d)" % (
            len(self._shards), len(self._pbox_shard))
