"""The user-level pBox runtime library.

The paper splits pBox between a kernel manager and a user-level library
linked into the application (Section 5).  The library's job is to make
the common path cheap:

- **HOLD/UNHOLD matching**: redundant events (HOLD of an already-held
  key, UNHOLD of a key not held) are filtered in user space and never
  reach the kernel;
- **lazy unbind**: event-driven applications that unbind and immediately
  re-bind the same pBox on the same thread skip both syscalls;
- **per-thread binding** is cached so update_pbox does not need a lookup
  syscall.

Each operation charges a configurable CPU cost to the calling simulated
thread so the end-to-end overhead experiments (Figures 10 and 16) have
something real to measure; the default costs are the paper's measured
per-operation latencies.
"""

import enum

from repro.core.events import StateEvent
from repro.core.pbox import PBoxStatus


class BindFlag(enum.Enum):
    """Flags for bind_pbox / unbind_pbox (event-driven support)."""

    DEDICATED_THREAD = "dedicated"
    SHARED_THREAD = "shared"


class OperationCosts:
    """Per-operation CPU costs in nanoseconds.

    Defaults are the measured latencies from Figure 10 of the paper.
    ``syscall_ns`` is added for operations that cross into the kernel and
    saved by the library-side optimizations.
    """

    def __init__(self, create_ns=8_782, release_ns=2_877, activate_ns=421,
                 freeze_ns=458, bind_ns=458, unbind_ns=495,
                 update_ns=364, update_contended_ns=525, library_ns=60):
        self.create_ns = create_ns
        self.release_ns = release_ns
        self.activate_ns = activate_ns
        self.freeze_ns = freeze_ns
        self.bind_ns = bind_ns
        self.unbind_ns = unbind_ns
        self.update_ns = update_ns
        self.update_contended_ns = update_contended_ns
        self.library_ns = library_ns

    @classmethod
    def zero(cls):
        """Costless configuration (for algorithm-focused tests)."""
        return cls(0, 0, 0, 0, 0, 0, 0, 0, 0)


class PBoxRuntime:
    """User-level library instance linked into one application.

    Parameters
    ----------
    manager:
        The kernel-side :class:`~repro.core.manager.PBoxManager`.
    costs:
        Per-operation CPU costs (see :class:`OperationCosts`).
    call_filter:
        Optional ``f(key, event) -> bool``; update_pbox calls for which
        it returns False are dropped *before* any processing.  Used by
        the Section 6.8 mistake-tolerance experiment to emulate missing
        annotations.
    enabled:
        When False the whole library is a no-op (zero cost): this is the
        "vanilla" build used for interference baselines.
    """

    def __init__(self, manager, costs=None, call_filter=None, enabled=True):
        self.manager = manager
        self.kernel = manager.kernel
        self.costs = costs or OperationCosts()
        self.call_filter = call_filter
        self.enabled = enabled
        self._detached = {}       # key -> pBox parked by unbind_pbox
        self._residual_ns = {}    # thread -> fractional cost carry
        self.stats = {
            "update_calls": 0,
            "update_syscalls": 0,
            "saved_syscalls": 0,
            "lazy_rebinds": 0,
        }

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _charge_ns(self, ns):
        """Charge a nanosecond cost, carrying sub-microsecond residue."""
        if ns <= 0:
            return
        thread = self.kernel.current_thread
        if thread is None:
            return
        total = self._residual_ns.get(thread.tid, 0) + ns
        whole_us, residue = divmod(total, 1_000)
        if whole_us:
            self.kernel.charge_current(whole_us)
        self._residual_ns[thread.tid] = residue

    def _current_pbox(self):
        thread = self.kernel.current_thread
        return None if thread is None else thread.pbox

    # ------------------------------------------------------------------
    # Figure 7 APIs
    # ------------------------------------------------------------------

    def create_pbox(self, rule):
        """Create a pBox bound to the current thread; returns its psid."""
        if not self.enabled:
            return -1
        self._charge_ns(self.costs.create_ns)
        pbox = self.manager.create(rule)
        return pbox.psid

    def release_pbox(self, psid):
        """Destroy the pBox identified by ``psid``."""
        if not self.enabled:
            return
        self._charge_ns(self.costs.release_ns)
        pbox = self.manager.get(psid)
        if pbox is not None:
            self.manager.release(pbox)
            # Drop any parked (unbound) reference so a later bind_pbox
            # cannot resurrect a destroyed pBox.
            self._detached = {
                key: parked
                for key, parked in self._detached.items()
                if parked is not pbox
            }

    def get_current_pbox(self):
        """psid of the pBox bound to the current thread (-1 if none)."""
        if not self.enabled:
            return -1
        pbox = self._current_pbox()
        return -1 if pbox is None else pbox.psid

    def activate_pbox(self, psid=None):
        """Begin an activity (start tracing) in the given/current pBox."""
        if not self.enabled:
            return
        self._charge_ns(self.costs.activate_ns)
        pbox = self._resolve(psid)
        if pbox is not None:
            self.manager.activate(pbox)

    def freeze_pbox(self, psid=None):
        """End the current activity (stop tracing)."""
        if not self.enabled:
            return
        self._charge_ns(self.costs.freeze_ns)
        pbox = self._resolve(psid)
        if pbox is not None:
            self.manager.freeze(pbox)

    def update_pbox(self, key, event):
        """Report a state event about virtual resource ``key``.

        Library-side filtering (Section 5): redundant HOLD/UNHOLD pairs
        and ENTER-without-PREPARE are answered without a kernel crossing.
        """
        if not self.enabled:
            return
        if self.call_filter is not None and not self.call_filter(key, event):
            return
        self.stats["update_calls"] += 1
        pbox = self._current_pbox()
        if pbox is None or pbox.detached:
            return
        if pbox.status is not PBoxStatus.ACTIVE and event in (
            StateEvent.PREPARE,
            StateEvent.ENTER,
        ):
            # Tracing only runs while active (Section 4.3.2); holder
            # bookkeeping still matters for safe penalty timing.
            self._charge_ns(self.costs.library_ns)
            return
        if event is StateEvent.HOLD and key in pbox.holders:
            self.stats["saved_syscalls"] += 1
            self._charge_ns(self.costs.library_ns)
            return
        if event is StateEvent.UNHOLD and key not in pbox.holders:
            self.stats["saved_syscalls"] += 1
            self._charge_ns(self.costs.library_ns)
            return
        contended = self.manager.contended(key, pbox)
        self._charge_ns(
            self.costs.update_contended_ns if contended else self.costs.update_ns
        )
        self.stats["update_syscalls"] += 1
        self.manager.update(pbox, key, event)

    def unbind_pbox(self, key, flags=BindFlag.DEDICATED_THREAD):
        """Detach the current thread's pBox and park it under ``key``.

        Implements the lazy-unbind optimization: the pBox is only marked
        detached in the library; the kernel unbind happens if a
        *different* pBox is bound to this thread later.
        """
        if not self.enabled:
            return -1
        pbox = self._current_pbox()
        if pbox is None:
            return -1
        self._charge_ns(self.costs.library_ns)
        pbox.detached = True
        pbox.shared_thread = flags is BindFlag.SHARED_THREAD
        self._detached[key] = pbox
        return pbox.psid

    def bind_pbox(self, key, flags=BindFlag.DEDICATED_THREAD):
        """Bind the pBox parked under ``key`` to the current thread."""
        if not self.enabled:
            return -1
        pbox = self._detached.get(key)
        if pbox is None:
            return -1
        thread = self.kernel.current_thread
        current = self._current_pbox()
        if current is pbox and pbox.detached:
            # Lazy path: same pBox, same thread -- no kernel crossing.
            pbox.detached = False
            self.stats["lazy_rebinds"] += 1
            self._charge_ns(self.costs.library_ns)
        else:
            self._charge_ns(self.costs.unbind_ns)
            self._charge_ns(self.costs.bind_ns)
            pbox.detached = False
            self.manager.bind(
                pbox, thread, shared=flags is BindFlag.SHARED_THREAD
            )
        del self._detached[key]
        return pbox.psid

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve(self, psid):
        if psid is None:
            return self._current_pbox()
        return self.manager.get(psid)

    def syscall_savings(self):
        """Fraction of update calls answered without a kernel crossing."""
        calls = self.stats["update_calls"]
        if calls == 0:
            return 0.0
        return self.stats["saved_syscalls"] / calls
