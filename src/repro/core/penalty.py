"""Penalty engines: how long to delay a noisy pBox (Section 4.4.2).

The manager delays a noisy pBox rather than reallocating the contended
virtual resource (which would risk application correctness).  The length
of that delay is adapted per (noisy pBox, resource) pair:

- **score-based** policy: every action that failed to reduce the victim's
  interference level bumps a score; the next penalty is
  ``p1 * (1 + score / alpha)``.  Converges slowly but safely.
- **gap-based** policy (gradient-descent inspired): scales the previous
  penalty by ``gap / delta`` where ``gap`` is the distance of the
  victim's defer ratio from the goal and ``delta`` the relative change
  the last action achieved.  Converges fast, may overshoot.

The engine dynamically picks the gap-based policy when the victim's
deferring time dwarfs the previous penalty (the penalty is clearly far
from effective), and the score-based policy otherwise.

The initial penalty uses the closed form the paper derives for the
one-noisy/one-victim model::

    p1 = sqrt(td(victim) * te(noisy)) - te(noisy)
"""

import enum
import math


class PenaltyPolicy(enum.Enum):
    """Which adaptive policy produced a decision."""

    INITIAL = "initial"
    SCORE = "score"
    GAP = "gap"
    FIXED = "fixed"


class PenaltyDecision:
    """One penalty decision: length, policy, and bookkeeping for stats."""

    __slots__ = ("length_us", "policy", "time_us", "noisy_psid", "key")

    def __init__(self, length_us, policy, time_us, noisy_psid, key):
        self.length_us = length_us
        self.policy = policy
        self.time_us = time_us
        self.noisy_psid = noisy_psid
        self.key = key

    def __repr__(self):
        return "PenaltyDecision(length_us=%d, policy=%s)" % (
            self.length_us,
            self.policy.value,
        )


class _PairState:
    """Adaptation state for one (noisy psid, resource key) pair."""

    __slots__ = ("p1_us", "last_length_us", "score", "last_ratio", "actions")

    def __init__(self):
        self.p1_us = None
        self.last_length_us = None
        self.score = 0
        self.last_ratio = None
        self.actions = 0


class AdaptivePenalty:
    """The paper's adaptive penalty engine.

    Parameters
    ----------
    alpha:
        Score divisor of the score-based policy (paper default 5).
    gap_policy_factor:
        The gap-based policy is chosen when the victim's current defer
        time exceeds ``gap_policy_factor`` times the previous penalty.
    min_penalty_us / max_penalty_us:
        Clamps that keep a single action bounded; the adaptation then
        walks within this envelope.
    """

    def __init__(self, alpha=5, gap_policy_factor=5,
                 min_penalty_us=1_000, max_penalty_us=5_000_000,
                 score_epsilon=0.01):
        self.alpha = alpha
        self.gap_policy_factor = gap_policy_factor
        self.min_penalty_us = min_penalty_us
        self.max_penalty_us = max_penalty_us
        # An action only counts as effective if it reduced the victim's
        # defer ratio by at least this relative margin; "did not reduce
        # the interference level" includes leaving it unchanged.
        self.score_epsilon = score_epsilon
        self._pairs = {}
        self.decisions = []

    def decide(self, now_us, noisy, victim, key, victim_defer_us=None):
        """Compute the next penalty length for ``noisy`` w.r.t. ``key``.

        ``noisy`` and ``victim`` are :class:`~repro.core.pbox.PBox`
        objects; the engine reads the victim's defer ratio ``s`` and the
        current-activity timings it needs for the p1 formula.
        ``victim_defer_us`` is the victim's effective deferring time at
        detection (including a still-open wait, which the pBox's own
        counters cannot see yet).
        """
        state = self._pairs.setdefault((noisy.psid, key), _PairState())
        ratio = self._victim_ratio(victim, now_us)
        if victim_defer_us is None:
            victim_defer_us = victim.defer_time_us

        if state.last_length_us is None:
            length = self._clamp(
                self._initial_penalty(now_us, noisy, victim_defer_us)
            )
            policy = PenaltyPolicy.INITIAL
            state.p1_us = length
        elif self._choose_gap_policy(victim_defer_us, state):
            length = self._gap_based(state, ratio, victim)
            policy = PenaltyPolicy.GAP
        else:
            length = self._score_based(state, ratio)
            policy = PenaltyPolicy.SCORE

        length = self._clamp(length)
        state.last_length_us = length
        state.last_ratio = ratio
        state.actions += 1
        decision = PenaltyDecision(length, policy, now_us, noisy.psid, key)
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def _initial_penalty(self, now_us, noisy, victim_defer_us):
        td_victim = max(victim_defer_us, 1)
        te_noisy = max(noisy.exec_time_us(now_us), 1)
        p1 = math.sqrt(td_victim * te_noisy) - te_noisy
        return p1

    def _score_based(self, state, ratio):
        reduced = (
            state.last_ratio is not None
            and ratio <= state.last_ratio * (1.0 - self.score_epsilon)
        )
        if state.last_ratio is not None and not reduced:
            state.score += 1            # last action was ineffective
        elif state.score > 0:
            state.score -= 1
        return state.p1_us * (1.0 + state.score / self.alpha)

    def _gap_based(self, state, ratio, victim):
        goal_ratio = victim.rule.goal_defer_ratio
        gap = ratio - goal_ratio
        if gap <= 0:
            # Already at/below goal; back off toward the minimum.
            return self.min_penalty_us
        if ratio <= 0 or state.last_ratio is None:
            return state.last_length_us
        delta = 1.0 - state.last_ratio / ratio
        if abs(delta) < 1e-6:
            # No measurable change from the last action: grow the step.
            return state.last_length_us * 2
        return state.last_length_us * gap / abs(delta)

    def _choose_gap_policy(self, victim_defer_us, state):
        if state.last_length_us is None:
            return False
        return victim_defer_us > self.gap_policy_factor * state.last_length_us

    # ------------------------------------------------------------------
    # Helpers & statistics
    # ------------------------------------------------------------------

    @staticmethod
    def _victim_ratio(victim, now_us):
        """Victim's defer ratio s = Td / Te including the open activity."""
        td = victim.total_defer_us + victim.defer_time_us
        te = victim.total_exec_us + victim.exec_time_us(now_us)
        if te <= 0:
            return 0.0
        return td / te

    def _clamp(self, length_us):
        return int(min(self.max_penalty_us, max(self.min_penalty_us, length_us)))

    def action_count(self):
        """Total penalty actions decided (Figure 13, top)."""
        return len(self.decisions)

    def lengths_us(self):
        """All decided penalty lengths (Figure 14)."""
        return [d.length_us for d in self.decisions]

    def policy_counts(self):
        """Mapping policy name -> number of decisions (Figure 13)."""
        counts = {}
        for decision in self.decisions:
            counts[decision.policy.value] = counts.get(decision.policy.value, 0) + 1
        return counts

    def convergence_steps(self, tolerance=0.05):
        """Steps until the penalty length reaches a fixed point.

        A fixed point is the first decision after which every subsequent
        length for the same (noisy, key) pair stays within ``tolerance``
        relative distance.  Returns the mean over pairs with >= 2 actions
        (Figure 13, bottom), or 0 when nothing converged.
        """
        by_pair = {}
        for decision in self.decisions:
            by_pair.setdefault((decision.noisy_psid, decision.key), []).append(
                decision.length_us
            )
        steps = []
        for lengths in by_pair.values():
            if len(lengths) < 2:
                continue
            converged_at = len(lengths)
            for i in range(len(lengths) - 1):
                tail = lengths[i:]
                base = tail[0] or 1
                if all(abs(x - base) / base <= tolerance for x in tail):
                    converged_at = i + 1
                    break
            steps.append(converged_at)
        if not steps:
            return 0.0
        return sum(steps) / len(steps)


class FixedPenalty:
    """Fixed-length penalty engine (the Table 4 ablation baseline)."""

    def __init__(self, length_us):
        if length_us <= 0:
            raise ValueError("penalty length must be positive")
        self.length_us = int(length_us)
        self.decisions = []

    def decide(self, now_us, noisy, victim, key, victim_defer_us=None):
        """Always return the fixed length."""
        decision = PenaltyDecision(
            self.length_us, PenaltyPolicy.FIXED, now_us, noisy.psid, key
        )
        self.decisions.append(decision)
        return decision

    def action_count(self):
        """Total penalty actions decided."""
        return len(self.decisions)

    def lengths_us(self):
        """All decided penalty lengths."""
        return [d.length_us for d in self.decisions]

    def policy_counts(self):
        """Mapping policy name -> count (always 'fixed')."""
        return {"fixed": len(self.decisions)} if self.decisions else {}

    def convergence_steps(self, tolerance=0.05):
        """Fixed penalties are trivially converged."""
        return 1.0 if self.decisions else 0.0
