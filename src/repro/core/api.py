"""Functional pBox API mirroring Figure 7 of the paper.

Application code in the paper calls free functions (``create_pbox``,
``update_pbox``, ...).  This module provides the same surface bound to a
process-wide current runtime, so example code reads exactly like the
paper's MySQL snippets (Figures 8 and 9)::

    from repro.core import api
    from repro.core.events import StateEvent

    api.set_runtime(runtime)
    psid = api.create_pbox(IsolationRule(isolation_level=30))
    api.update_pbox(key=srv_conc, event=StateEvent.PREPARE)

For library-grade code prefer holding a :class:`PBoxRuntime` directly;
this module exists for ergonomic parity with the paper.
"""

from repro.core.events import StateEvent
from repro.core.runtime import BindFlag

_runtime = None


def set_runtime(runtime):
    """Install ``runtime`` as the process-wide current runtime."""
    global _runtime
    _runtime = runtime


def get_runtime():
    """Return the installed runtime (None if unset)."""
    return _runtime


def _require_runtime():
    if _runtime is None:
        raise RuntimeError("no pBox runtime installed; call set_runtime() first")
    return _runtime


def create_pbox(rule):
    """Create a pBox with an isolation rule; returns its psid."""
    return _require_runtime().create_pbox(rule)


def release_pbox(psid):
    """Destroy the pBox identified by ``psid``."""
    _require_runtime().release_pbox(psid)


def get_current_pbox():
    """psid of the pBox bound to the calling thread."""
    return _require_runtime().get_current_pbox()


def activate_pbox(psid=None):
    """Begin tracing an activity in the given (or current) pBox."""
    _require_runtime().activate_pbox(psid)


def freeze_pbox(psid=None):
    """Stop tracing the current activity."""
    _require_runtime().freeze_pbox(psid)


def update_pbox(key, event):
    """Report a :class:`StateEvent` about the virtual resource ``key``."""
    _require_runtime().update_pbox(key, event)


def unbind_pbox(key, flags=BindFlag.DEDICATED_THREAD):
    """Detach the current thread's pBox and associate it with ``key``."""
    return _require_runtime().unbind_pbox(key, flags)


def bind_pbox(key, flags=BindFlag.DEDICATED_THREAD):
    """Bind the pBox associated with ``key`` to the current thread."""
    return _require_runtime().bind_pbox(key, flags)


__all__ = [
    "BindFlag",
    "StateEvent",
    "activate_pbox",
    "bind_pbox",
    "create_pbox",
    "freeze_pbox",
    "get_current_pbox",
    "get_runtime",
    "release_pbox",
    "set_runtime",
    "unbind_pbox",
    "update_pbox",
]
