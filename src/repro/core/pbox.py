"""The pBox object: per-domain state kept by the kernel manager.

A pBox is a performance isolation domain.  Its lifecycle (Section 4.3.2)
is start -> (activate -> freeze)* -> destroy: a connection-scoped pBox is
*activated* once per request it handles and *frozen* when the request
finishes; tracing only happens while active.
"""

import enum
from collections import deque


class PBoxStatus(enum.Enum):
    """Lifecycle states tracked by the manager (Section 4.3.2)."""

    START = "start"
    ACTIVE = "active"
    FROZEN = "frozen"
    DESTROYED = "destroyed"


class ActivityRecord:
    """Summary of one finished activity: defer and execution time."""

    __slots__ = ("defer_us", "exec_us")

    def __init__(self, defer_us, exec_us):
        self.defer_us = defer_us
        self.exec_us = exec_us

    def __repr__(self):
        return "ActivityRecord(defer_us=%d, exec_us=%d)" % (
            self.defer_us,
            self.exec_us,
        )


class PBox:
    """One performance isolation domain.

    Created by :meth:`repro.core.manager.PBoxManager.create`; application
    code talks to it through the runtime APIs, never directly.
    """

    HISTORY_WINDOW = 64

    def __init__(self, psid, rule, thread=None):
        self.psid = psid
        self.rule = rule
        self.status = PBoxStatus.START
        self.thread = thread

        # --- current-activity accounting -------------------------------
        self.activity_start_us = None
        self.defer_time_us = 0          # Td accumulated in this activity
        self.holders = {}               # resource key -> hold start time
        self.prepares = {}              # resource key -> prepare time (open)

        # --- cross-activity accounting ---------------------------------
        self.history = deque(maxlen=self.HISTORY_WINDOW)
        self.activities_completed = 0
        self.total_defer_us = 0
        self.total_exec_us = 0

        # --- blame: who deferred us, for pBox-level detection ----------
        self.blame = {}                 # noisy psid -> accumulated defer us

        # --- penalty state ----------------------------------------------
        self.pending_penalty_us = 0     # delay to apply at next safe point
        self.pending_penalty_flow = None  # flow id linking detect -> penalty
        self.pending_since_us = 0       # when the pending amount was queued
        self.penalty_until_us = 0       # event-driven: defer queued tasks
        self.penalties_received = 0
        self.penalty_total_us = 0

        # --- event-driven binding ---------------------------------------
        self.shared_thread = False      # bound thread is shared (flag)
        self.detached = False           # lazily unbound (library-side)

    # ------------------------------------------------------------------
    # Interference-level math (Section 4.3.1)
    # ------------------------------------------------------------------

    def exec_time_us(self, now_us):
        """Execution time Te of the current activity so far."""
        if self.activity_start_us is None:
            return 0
        return now_us - self.activity_start_us

    def interference_level(self, now_us, extra_defer_us=0):
        """Approximate current interference level tf = td / (te - td).

        ``extra_defer_us`` lets Algorithm 1 include a still-open defer
        (the waiter has PREPAREd but not yet ENTERed).  Returns ``inf``
        when deferring dominates the whole execution.
        """
        td = self.defer_time_us + extra_defer_us
        te = self.exec_time_us(now_us)
        if td <= 0:
            return 0.0
        if te <= td:
            return float("inf")
        return td / (te - td)

    def average_interference_level(self):
        """Mean interference level over the activity history window."""
        td = sum(rec.defer_us for rec in self.history)
        te = sum(rec.exec_us for rec in self.history)
        if td <= 0:
            return 0.0
        if te <= td:
            return float("inf")
        return td / (te - td)

    def max_interference_level(self):
        """Max per-activity interference level over the history window."""
        worst = 0.0
        for rec in self.history:
            if rec.defer_us <= 0:
                continue
            if rec.exec_us <= rec.defer_us:
                return float("inf")
            worst = max(worst, rec.defer_us / (rec.exec_us - rec.defer_us))
        return worst

    def tail_interference_level(self):
        """95th-percentile per-activity interference level (history)."""
        levels = []
        for rec in self.history:
            if rec.defer_us <= 0:
                levels.append(0.0)
            elif rec.exec_us <= rec.defer_us:
                levels.append(float("inf"))
            else:
                levels.append(rec.defer_us / (rec.exec_us - rec.defer_us))
        if not levels:
            return 0.0
        levels.sort()
        index = min(len(levels) - 1, int(0.95 * len(levels)))
        return levels[index]

    def defer_ratio(self):
        """Lifetime defer ratio s = sum(Td) / sum(Te).

        This is the ``s(i)`` quantity the adaptive penalty compares
        across actions (Section 4.4.2).
        """
        if self.total_exec_us <= 0:
            return 0.0
        return self.total_defer_us / self.total_exec_us

    @property
    def holding_anything(self):
        """True while the pBox holds at least one tracked resource.

        The manager refuses to apply a delay penalty while this is true
        (Section 4.4.1: penalizing a holder makes victims wait longer).
        """
        return bool(self.holders)

    def snapshot_state(self, label=repr):
        """JSON-safe walk of the pBox (checkpoint walker).

        Resource keys render through ``label`` for cross-process
        stability; everything keyed by a dict is sorted so insertion
        order never leaks into the walk.
        """
        return {
            "psid": self.psid,
            "rule": self.rule.to_dict(),
            "status": self.status.value,
            "thread": None if self.thread is None else self.thread.tid,
            "activity_start_us": self.activity_start_us,
            "defer_time_us": self.defer_time_us,
            "holders": sorted((label(key), t)
                              for key, t in self.holders.items()),
            "prepares": sorted((label(key), t)
                               for key, t in self.prepares.items()),
            "history": [[rec.defer_us, rec.exec_us] for rec in self.history],
            "activities_completed": self.activities_completed,
            "total_defer_us": self.total_defer_us,
            "total_exec_us": self.total_exec_us,
            "blame": sorted(("%s/%s" % (psid, label(key)), us)
                            for (psid, key), us in self.blame.items()),
            "pending_penalty_us": self.pending_penalty_us,
            "pending_since_us": self.pending_since_us,
            "penalty_until_us": self.penalty_until_us,
            "penalties_received": self.penalties_received,
            "penalty_total_us": self.penalty_total_us,
            "shared_thread": self.shared_thread,
            "detached": self.detached,
        }

    def __repr__(self):
        return "PBox(psid=%d, status=%s, goal=%.2f)" % (
            self.psid,
            self.status.value,
            self.rule.goal,
        )
