"""State events: the four conditions of Table 1.

The paper's key insight is that the wide variety of application virtual
resources (buffers, queues, tickets, logs, custom locks) reduces, for the
purpose of interference detection, to four state events about a resource
identified by an opaque key:

PREPARE  the pBox is deferred by a virtual resource currently held by
         another pBox (it starts waiting);
ENTER    the pBox is no longer deferred by the resource;
HOLD     the pBox is holding the virtual resource;
UNHOLD   the pBox has released the virtual resource.

ENTER and HOLD are distinct because a resource may consist of multiple
parts: an activity can stop being deferred by one part while still not
holding the full resource.
"""

import enum


class StateEvent(enum.Enum):
    """The four state-event types an application reports via update_pbox."""

    PREPARE = "prepare"
    ENTER = "enter"
    HOLD = "hold"
    UNHOLD = "unhold"


class CompetitorEntry:
    """One waiter in the competitor map: which pBox, waiting since when.

    Mirrors the ``{p, now}`` tuples Algorithm 1 stores per resource key.
    """

    __slots__ = ("pbox", "time_us")

    def __init__(self, pbox, time_us):
        self.pbox = pbox
        self.time_us = time_us

    def __repr__(self):
        return "CompetitorEntry(pbox=%r, time_us=%d)" % (self.pbox, self.time_us)
