"""Shared penalty budget: bound the application-wide outstanding delay.

One pBox can never be over-penalized -- the manager refuses to queue a
second penalty while one is pending, and every decision is clamped at
``PENALTY_CAP_US``.  What *sharding* the manager per tenant removes is
the one place that used to see every penalty: with hundreds of shards
detecting independently, nothing bounds how much of the application can
be parked at once.  :class:`PenaltyBudget` is that bound, shared by
every shard of one application (see
:class:`~repro.core.shards.ShardedPBoxManager`): shards reserve from it
before queuing a delay penalty and release as penalties are delivered,
decayed, or clamped.

Accounting is best-effort by design: fault-injected penalties
(``inject_penalty``) bypass ``reserve``, so ``release`` saturates at
zero instead of going negative.  The budget keeps its own counters --
manager ``stats`` dicts are pinned by the golden corpus and must not
grow keys.
"""


class PenaltyBudget:
    """Cap on the total outstanding delay-penalty time of one app.

    Parameters
    ----------
    cap_us:
        Maximum outstanding (reserved but not yet delivered) penalty
        microseconds across all shards; ``None`` means unlimited, which
        makes the budget a pure accounting shim.
    """

    __slots__ = ("cap_us", "outstanding_us", "stats")

    def __init__(self, cap_us=None):
        if cap_us is not None and cap_us <= 0:
            raise ValueError("budget cap must be positive or None")
        self.cap_us = cap_us
        self.outstanding_us = 0
        self.stats = {
            "reserved_us": 0,    # total granted
            "released_us": 0,    # total returned
            "denied": 0,         # reservations refused outright
            "trimmed": 0,        # reservations granted partially
            "peak_outstanding_us": 0,
        }

    def reserve(self, amount_us):
        """Reserve up to ``amount_us``; returns the granted length.

        Returns 0 (and counts a denial) when the budget is exhausted;
        a partial grant (counted as trimmed) shortens the penalty to
        whatever headroom remains.
        """
        amount_us = int(amount_us)
        if amount_us <= 0:
            return 0
        if self.cap_us is not None:
            headroom = self.cap_us - self.outstanding_us
            if headroom <= 0:
                self.stats["denied"] += 1
                return 0
            if amount_us > headroom:
                self.stats["trimmed"] += 1
                amount_us = headroom
        self.outstanding_us += amount_us
        self.stats["reserved_us"] += amount_us
        if self.outstanding_us > self.stats["peak_outstanding_us"]:
            self.stats["peak_outstanding_us"] = self.outstanding_us
        return amount_us

    def release(self, amount_us):
        """Return ``amount_us`` to the budget (saturating at zero)."""
        amount_us = int(amount_us)
        if amount_us <= 0:
            return
        released = min(amount_us, self.outstanding_us)
        self.outstanding_us -= released
        self.stats["released_us"] += released

    def snapshot_state(self):
        """JSON-safe walk of the budget (checkpoint walker)."""
        return {
            "cap_us": self.cap_us,
            "outstanding_us": self.outstanding_us,
            "stats": dict(self.stats),
        }

    def __repr__(self):
        return "PenaltyBudget(cap_us=%r, outstanding_us=%d)" % (
            self.cap_us, self.outstanding_us)
