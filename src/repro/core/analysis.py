"""Analytical models of interference and penalties (the paper's §7).

The paper closes with "a related area of improvement is to provide a
more rigorous analysis of the pBox's actions, such as applying queuing
theory."  This module supplies that analysis for the paper's own
"simple but representative interference model" -- one noisy and one
victim pBox sharing a single virtual resource -- and derives:

- the victim's expected wait under renewal-reward reasoning (a noisy
  activity holds the resource for ``hold_us`` out of every
  ``period_us``; a victim arriving uniformly at random waits the
  residual hold time with probability hold/period);
- the victim's interference level as a function of the penalty length
  added to the noisy pBox's period;
- the penalty length that meets a given isolation goal, and the
  optimal single-step penalty that the paper's p1 formula
  ``p1 = sqrt(td * te) - te`` approximates.

The predictions are validated against the discrete-event simulator in
``tests/test_core_analysis.py``: the closed forms land within a few
percent of measured latencies across a parameter sweep, which is what
makes the adaptive engine's convergence behaviour explainable rather
than empirical.
"""

import math


class SingleResourceModel:
    """The paper's one-noisy/one-victim model, solved in closed form.

    Parameters
    ----------
    hold_us:
        How long the noisy activity holds the resource per cycle.
    gap_us:
        The noisy activity's own off-resource time per cycle (think
        time, other work) before it re-acquires.
    victim_service_us:
        The victim activity's resource-free execution time per request
        (its interference-free latency, To).
    """

    def __init__(self, hold_us, gap_us, victim_service_us):
        if hold_us <= 0 or gap_us < 0 or victim_service_us <= 0:
            raise ValueError("model parameters must be positive")
        self.hold_us = hold_us
        self.gap_us = gap_us
        self.victim_service_us = victim_service_us

    # -- no-penalty predictions ------------------------------------------

    def duty_cycle(self, penalty_us=0):
        """Fraction of time the noisy pBox holds the resource."""
        period = self.hold_us + self.gap_us + penalty_us
        return self.hold_us / period

    def expected_wait_us(self, penalty_us=0):
        """Victim's mean wait for the resource (renewal-reward).

        A victim arriving uniformly at random hits the hold window with
        probability ``duty`` and then waits the mean residual of the
        (deterministic) hold, ``hold/2``.
        """
        return self.duty_cycle(penalty_us) * self.hold_us / 2.0

    def victim_latency_us(self, penalty_us=0):
        """Victim's predicted mean latency under the model."""
        return self.victim_service_us + self.expected_wait_us(penalty_us)

    def interference_level(self, penalty_us=0):
        """Predicted ``tf = Td / (Te - Td)`` for the victim."""
        wait = self.expected_wait_us(penalty_us)
        return wait / self.victim_service_us

    # -- penalty design ----------------------------------------------------

    def penalty_for_goal(self, goal):
        """Penalty length that brings the victim's tf down to ``goal``.

        Solves ``duty(p) * hold/2 = goal * service`` for p; returns 0
        when the goal already holds without intervention.
        """
        if goal <= 0:
            raise ValueError("goal must be positive")
        target_wait = goal * self.victim_service_us
        if self.expected_wait_us(0) <= target_wait:
            return 0
        # duty(p) = hold / (hold + gap + p); wait = duty * hold / 2.
        period_needed = self.hold_us * self.hold_us / (2.0 * target_wait)
        penalty = period_needed - self.hold_us - self.gap_us
        return max(0.0, penalty)

    def paper_p1(self, victim_defer_us, noisy_exec_us):
        """The paper's initial-penalty formula for comparison.

        ``p1 = sqrt(td(victim) * te(noisy)) - te(noisy)``; the formula
        targets the same regime as :meth:`penalty_for_goal` -- making
        the noisy period long enough that the victim's deferring time
        is amortized -- and this method exposes it so tests can check
        that it lands within the right order of magnitude of the exact
        solution.
        """
        return math.sqrt(victim_defer_us * noisy_exec_us) - noisy_exec_us

    def reduction_ratio(self, penalty_us):
        """Predicted interference reduction ratio r for a penalty."""
        without = self.expected_wait_us(0)
        if without == 0:
            return 0.0
        with_penalty = self.expected_wait_us(penalty_us)
        return (without - with_penalty) / without

    def noisy_slowdown(self, penalty_us):
        """Relative slowdown imposed on the noisy activity itself."""
        period = self.hold_us + self.gap_us
        return penalty_us / period


def predict_equilibrium_penalty(model, goal, tolerance=0.01,
                                max_iterations=64):
    """Bisection on the model: the smallest penalty meeting ``goal``.

    Equivalent to :meth:`SingleResourceModel.penalty_for_goal` but
    computed numerically; exists so tests can cross-validate the closed
    form and so subclasses with non-deterministic holds can reuse it.
    """
    if model.interference_level(0) <= goal:
        return 0.0
    low, high = 0.0, model.hold_us
    while model.interference_level(high) > goal:
        high *= 2
        if high > 1e12:
            raise RuntimeError("goal unreachable under this model")
    for _ in range(max_iterations):
        mid = (low + high) / 2
        if model.interference_level(mid) > goal:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(high, 1.0):
            break
    return high
