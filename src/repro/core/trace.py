"""pBox trace log: what happened, to whom, and why.

Section 7 of the paper notes that "the log traces from pBox can provide
useful insights for developers to understand a performance interference
issue."  This module is that trace: attach a :class:`PBoxTracer` to the
manager and it records state events, detections, penalty actions and
penalty deliveries into a bounded ring buffer, with aggregation helpers
that answer the debugging questions directly -- which resource is
contended, who the recurring noisy pBox is, how much delay each pBox
absorbed.
"""

from collections import Counter, deque

from repro.obs.tracepoints import key_label


class TraceRecord:
    """One traced occurrence."""

    __slots__ = ("time_us", "kind", "psid", "key", "detail")

    def __init__(self, time_us, kind, psid, key=None, detail=None):
        self.time_us = time_us
        self.kind = kind
        self.psid = psid
        self.key = key
        self.detail = detail

    def __repr__(self):
        return "TraceRecord(t=%dus, %s, psid=%s, key=%r, detail=%r)" % (
            self.time_us, self.kind, self.psid, self.key, self.detail
        )


class PBoxTracer:
    """Bounded trace of manager activity.

    Record kinds:

    - ``event``: a state event (detail = event name);
    - ``detection``: Algorithm 1 found a victim (psid = noisy,
      detail = victim psid);
    - ``action``: a penalty was scheduled (detail = length_us);
    - ``penalty``: a penalty was served (detail = delay_us).
    """

    def __init__(self, capacity=10_000, record_events=False):
        self.capacity = capacity
        self.record_events = record_events
        # State events flood the trace orders of magnitude faster than
        # detections/actions/penalties do, so each class gets its own
        # ring: a burst of events can never evict the rare records a
        # debugging session is actually after.
        self._rich_records = deque(maxlen=capacity)
        self._event_records = deque(maxlen=capacity)
        self.dropped = Counter()              # record kind -> evictions
        self.event_counts = Counter()
        self.detections_by_pair = Counter()   # (noisy, victim) -> count
        self.actions_by_key = Counter()       # resource key -> count
        self.penalty_us_by_psid = Counter()   # noisy psid -> delay total
        self._bus = None

    @property
    def records(self):
        """All retained records, merged in time order."""
        if not self._event_records:
            return list(self._rich_records)
        merged = list(self._rich_records) + list(self._event_records)
        merged.sort(key=lambda record: record.time_us)
        return merged

    def _append(self, ring, record):
        if len(ring) == ring.maxlen:
            self.dropped[ring[0].kind] += 1
        ring.append(record)

    # -- bus wiring -------------------------------------------------------

    def attach(self, bus):
        """Subscribe to the ``pbox.*`` tracepoints of ``bus``.

        The manager fires those points; this adapter keeps the classic
        ``on_event``/``on_detection``/``on_action``/``on_penalty_served``
        entry points as the recording primitives, so existing callers
        (and tests) see identical behaviour.
        """
        if self._bus is not None:
            self.detach()
        self._handlers = {
            "pbox.event": self._bus_event,
            "pbox.detect": self._bus_detect,
            "pbox.action": self._bus_action,
            "pbox.penalty": self._bus_penalty,
        }
        for name, handler in self._handlers.items():
            bus.subscribe(name, handler)
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe from the bus."""
        if self._bus is None:
            return
        for name, handler in self._handlers.items():
            self._bus.unsubscribe(name, handler)
        self._bus = None

    def _bus_event(self, _name, time_us, fields):
        self.on_event(time_us, fields["pbox"], fields["key"],
                      fields["event"])

    def _bus_detect(self, _name, time_us, fields):
        self.on_detection(time_us, fields["noisy"], fields["victim"],
                          fields["key"])

    def _bus_action(self, _name, time_us, fields):
        self.on_action(time_us, fields["noisy"], fields["victim"],
                       fields["key"], fields["length_us"])

    def _bus_penalty(self, _name, time_us, fields):
        self.on_penalty_served(time_us, fields["pbox"], fields["delay_us"])

    # -- recording primitives ---------------------------------------------

    def on_event(self, time_us, pbox, key, event):
        """Record one state event (cheap counter unless record_events)."""
        self.event_counts[event.value] += 1
        if self.record_events:
            self._append(
                self._event_records,
                TraceRecord(time_us, "event", pbox.psid, key, event.value),
            )

    def on_detection(self, time_us, noisy, victim, key):
        """Record an Algorithm 1 detection."""
        self.detections_by_pair[(noisy.psid, victim.psid)] += 1
        self._append(
            self._rich_records,
            TraceRecord(time_us, "detection", noisy.psid, key, victim.psid),
        )

    def on_action(self, time_us, noisy, victim, key, length_us):
        """Record a scheduled penalty."""
        self.actions_by_key[self._key_name(key)] += 1
        self._append(
            self._rich_records,
            TraceRecord(time_us, "action", noisy.psid, key, length_us),
        )

    def on_penalty_served(self, time_us, pbox, delay_us):
        """Record a served penalty."""
        self.penalty_us_by_psid[pbox.psid] += delay_us
        self._append(
            self._rich_records,
            TraceRecord(time_us, "penalty", pbox.psid, None, delay_us),
        )

    # -- reporting --------------------------------------------------------

    @staticmethod
    def _key_name(key):
        # Shared with the span recorder/exporter so every surface labels
        # a resource key the same way (None, tuples, named objects).
        return key_label(key)

    def top_contended_resources(self, n=5):
        """Resources ranked by penalty actions taken over them."""
        return self.actions_by_key.most_common(n)

    def top_noisy_pboxes(self, n=5):
        """pBoxes ranked by total penalty delay absorbed."""
        return self.penalty_us_by_psid.most_common(n)

    def recurring_pairs(self, n=5):
        """(noisy psid, victim psid) pairs ranked by detections."""
        return self.detections_by_pair.most_common(n)

    def summary(self):
        """Aggregate dictionary for programmatic inspection."""
        return {
            "events": dict(self.event_counts),
            "detections": sum(self.detections_by_pair.values()),
            "actions": sum(self.actions_by_key.values()),
            "penalty_us": sum(self.penalty_us_by_psid.values()),
        }

    def format_report(self):
        """Human-readable interference report (the §7 debugging aid)."""
        lines = ["pBox trace report", "================="]
        totals = self.summary()
        lines.append("state events: %s" % (totals["events"] or "none"))
        lines.append("detections: %d, actions: %d, total penalty: %.1f ms"
                     % (totals["detections"], totals["actions"],
                        totals["penalty_us"] / 1_000))
        if self.actions_by_key:
            lines.append("most contended virtual resources:")
            for key, count in self.top_contended_resources():
                lines.append("  %-32s %d actions" % (key, count))
        if self.penalty_us_by_psid:
            lines.append("noisiest pBoxes (delay absorbed):")
            for psid, delay in self.top_noisy_pboxes():
                lines.append("  psid %-5d %.1f ms" % (psid, delay / 1_000))
        if self.detections_by_pair:
            lines.append("recurring noisy->victim pairs:")
            for (noisy, victim), count in self.recurring_pairs():
                lines.append("  %d -> %d: %d detections"
                             % (noisy, victim, count))
        return "\n".join(lines)
