"""pBox: the paper's primary contribution.

This package implements the pBox abstraction of Hu, Huang & Huang (SOSP
2023): performance-isolation domains inside an application.  It contains

- the developer-facing APIs of Figure 7 (:mod:`repro.core.api`,
  :mod:`repro.core.runtime`),
- the four state events of Table 1 (:mod:`repro.core.events`),
- isolation rules / goals (:mod:`repro.core.rules`),
- the kernel-side manager running the interference-detection Algorithm 1
  (:mod:`repro.core.manager`), and
- the adaptive penalty machinery of Section 4.4 (:mod:`repro.core.penalty`).
"""

from repro.core.events import StateEvent
from repro.core.pbox import PBox, PBoxStatus
from repro.core.rules import IsolationRule, RuleType
from repro.core.penalty import (
    AdaptivePenalty,
    FixedPenalty,
    PenaltyDecision,
    PenaltyPolicy,
)
from repro.core.manager import PBoxManager
from repro.core.budget import PenaltyBudget
from repro.core.shards import ShardedPBoxManager
from repro.core.runtime import BindFlag, OperationCosts, PBoxRuntime

__all__ = [
    "AdaptivePenalty",
    "BindFlag",
    "FixedPenalty",
    "IsolationRule",
    "OperationCosts",
    "PBox",
    "PBoxManager",
    "PBoxRuntime",
    "PBoxStatus",
    "PenaltyBudget",
    "PenaltyDecision",
    "PenaltyPolicy",
    "RuleType",
    "ShardedPBoxManager",
    "StateEvent",
]
