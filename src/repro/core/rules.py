"""Isolation rules: the developer-specified performance isolation goals.

A rule expresses *how much interference an activity may tolerate* rather
than a resource quota.  The main rule type is RELATIVE: "this pBox's
latency must not be more than X% worse than its interference-free
latency".  Because the interference-free baseline is unknown at runtime,
the manager treats an ideal execution as one with zero deferring time and
compares the measured interference level ``Tf = Td / (Te - Td)`` against
the goal (Section 4.3.1).
"""

import enum


class RuleType(enum.Enum):
    """Kinds of isolation rules supported by the manager."""

    RELATIVE = "relative"


class Metric(enum.Enum):
    """Which statistic of the interference level the rule constrains."""

    AVERAGE = "average"
    TAIL = "tail"      # 95th percentile over the activity history
    MAX = "max"


class IsolationRule:
    """A performance isolation goal attached to a pBox at creation.

    Parameters
    ----------
    isolation_level:
        Tolerated relative slowdown in percent.  ``50`` means execution
        latency may be at most 50% worse than the interference-free
        latency (the paper's default for the evaluation).
    rule_type:
        Only :attr:`RuleType.RELATIVE` is defined by the paper.
    metric:
        Statistic used for the pBox-level (cross-activity) check.
    """

    def __init__(self, isolation_level=50, rule_type=RuleType.RELATIVE,
                 metric=Metric.AVERAGE):
        if isolation_level <= 0:
            raise ValueError("isolation_level must be a positive percentage")
        self.isolation_level = isolation_level
        self.rule_type = rule_type
        self.metric = metric

    @property
    def goal(self):
        """The goal as a fraction: interference level lambda.

        A pBox violates its rule when ``Td / (Te - Td) > goal``.
        """
        return self.isolation_level / 100.0

    @property
    def goal_defer_ratio(self):
        """The goal converted to defer-ratio space ``s = Td / Te``.

        ``Tf = Td/(Te-Td) = s/(1-s)``, hence ``Tf = lambda`` corresponds
        to ``s = lambda / (1 + lambda)``.  The gap-based adaptive penalty
        policy works in s-space (Section 4.4.2) and needs this form.
        """
        goal = self.goal
        return goal / (1.0 + goal)

    def to_dict(self):
        """JSON-safe representation (checkpoint / hot-reload payloads)."""
        return {
            "isolation_level": self.isolation_level,
            "rule_type": self.rule_type.value,
            "metric": self.metric.value,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a rule from :meth:`to_dict` output."""
        return cls(
            isolation_level=data["isolation_level"],
            rule_type=RuleType(data["rule_type"]),
            metric=Metric(data["metric"]),
        )

    def same_as(self, other):
        """True when ``other`` expresses the identical isolation goal.

        Deliberately not ``__eq__``: rules are used as plain objects
        (occasionally in identity-keyed maps) and must stay hashable by
        identity.  The hot-reload path uses this to detect that a
        swapped-in rule set is a pure no-op.
        """
        return (isinstance(other, IsolationRule)
                and self.isolation_level == other.isolation_level
                and self.rule_type is other.rule_type
                and self.metric is other.metric)

    def __repr__(self):
        return "IsolationRule(type=%s, isolation_level=%d%%, metric=%s)" % (
            self.rule_type.value,
            self.isolation_level,
            self.metric.value,
        )
