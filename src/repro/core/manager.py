"""The kernel-side pBox manager.

Implements the monitoring and mitigation pipeline of Sections 4.3-4.4:

- per-activity tracing of state events (competitor map, holder map,
  deferring time);
- Algorithm 1: on every UNHOLD, predict from the waiters' current defer
  ratios whether an isolation goal is in danger, and identify the noisy
  and victim pBoxes;
- pBox-level detection: at freeze time, compare the history-averaged
  interference level against 90% of the goal and act on the most-blamed
  recent blocker (the paper's "also take action at the end of the
  activity" path);
- penalty actions: accumulate a delay on the noisy pBox which the
  kernel's resume hook applies at the first *safe point* -- when the
  noisy pBox holds no tracked virtual resource (Section 4.4.1); for
  pBoxes bound to shared (event-driven) threads, the penalty instead
  defers their queued tasks (Section 5).
"""

import itertools

from repro.core.events import CompetitorEntry, StateEvent
from repro.core.pbox import ActivityRecord, PBox, PBoxStatus
from repro.core.penalty import AdaptivePenalty
from repro.core.rules import Metric

# Sentinel resource key for pBox-level (freeze-time) actions that cannot
# be attributed to a specific resource.
PBOX_LEVEL_KEY = "__pbox_level__"

#: Hard ceiling on any single delivered delay penalty, matching the
#: adaptive engine's own clamp.  A pending penalty above this can only
#: come from a misfire (or an injected fault); the resume hook clamps
#: it and counts the event.
PENALTY_CAP_US = 5_000_000


class _HealState:
    """Per-(noisy, victim) trend the self-healing watchdog tracks."""

    __slots__ = ("last_level", "fails", "backoff", "actions")

    def __init__(self):
        self.last_level = None
        self.fails = 0
        self.backoff = 0
        self.actions = 0


class PBoxManager:
    """Kernel-resident manager coordinating all pBoxes of an application.

    Parameters
    ----------
    kernel:
        The simulated kernel; the manager registers a resume hook on it
        to deliver penalties.
    penalty_engine:
        Penalty length engine; defaults to the paper's adaptive engine.
        Pass :class:`~repro.core.penalty.FixedPenalty` for the Table 4
        ablation.
    near_goal_fraction:
        The pBox-level detector fires when the history-averaged
        interference level reaches this fraction of the goal (default
        90%, the paper's default).
    enabled:
        When False every entry point is a no-op; lets experiments run
        the exact same instrumented application with pBox "off".
    """

    def __init__(self, kernel, penalty_engine=None, near_goal_fraction=0.9,
                 min_defer_us=1_000, enabled=True, tracer=None,
                 safe_penalty_timing=True, early_detection=True,
                 penalty_mode="delay", self_heal=True,
                 penalty_cap_us=PENALTY_CAP_US, heal_retry_limit=4,
                 heal_max_backoff=5, heal_min_actions=6,
                 heal_cooldown_us=1_000_000,
                 heal_pending_timeout_us=1_000_000,
                 scan_policy="eager", psid_alloc=None,
                 penalty_budget=None, register_resume_hook=True):
        self.kernel = kernel
        self.penalty_engine = penalty_engine or AdaptivePenalty()
        self.near_goal_fraction = near_goal_fraction
        self.tracer = tracer
        # Ablation switches (DESIGN.md section 4): disabling safe
        # penalty timing applies delays even while the noisy pBox holds
        # resources; disabling early detection removes the Algorithm 1
        # UNHOLD path, leaving only the reactive end-of-activity check.
        self.safe_penalty_timing = safe_penalty_timing
        self.early_detection = early_detection
        # Penalty mechanism: "delay" is the paper's design (an injected
        # sleep at a safe point); "priority" is the Section 7 extension
        # (demote the noisy pBox's thread in the scheduler for the
        # penalty duration instead of parking it).
        if penalty_mode not in ("delay", "priority"):
            raise ValueError("unknown penalty mode %r" % penalty_mode)
        self.penalty_mode = penalty_mode
        # Noise floor: a waiter only counts as a potential victim once it
        # has accumulated this much deferring time in the activity.  The
        # worst-case estimate tf = td/(te-td) is unstable at the start of
        # an activity (te ~ td makes tf explode for microsecond waits);
        # without a floor, heavyweight background activities would be
        # "victimized" by trivial waits and the clients penalized.
        self.min_defer_us = min_defer_us
        self.enabled = enabled
        # Self-healing (robustness layer): a penalized pBox whose victim
        # keeps failing to recover gets its penalties backed off
        # (halved per backoff level after ``heal_retry_limit``
        # consecutive non-improving actions); past ``heal_max_backoff``
        # levels the noisy pBox enters a safe-mode release -- penalties
        # suspended for ``heal_cooldown_us``.  A pending penalty that
        # cannot find a safe point within ``heal_pending_timeout_us``
        # decays instead of blocking forever, and any pending amount
        # above ``penalty_cap_us`` (a misfire) is clamped.
        self.self_heal = self_heal
        self.penalty_cap_us = penalty_cap_us
        self.heal_retry_limit = heal_retry_limit
        self.heal_max_backoff = heal_max_backoff
        self.heal_min_actions = heal_min_actions
        self.heal_cooldown_us = heal_cooldown_us
        self.heal_pending_timeout_us = heal_pending_timeout_us
        self._heal_trend = {}        # (noisy psid, victim psid) -> _HealState
        self._safe_until = {}        # noisy psid -> safe-mode end time
        self._pboxes = {}
        # psid allocation: shards of one application share an allocator
        # (see shards.ShardedPBoxManager) so psids stay globally unique
        # and creation-ordered no matter which shard creates a pBox.
        self._psid_alloc = psid_alloc if psid_alloc is not None \
            else itertools.count(1)
        # Scan policy (docs/PERFORMANCE.md): "eager" evaluates each
        # pBox inline at its own freeze -- the finest-grained dirty-set
        # scan, byte-identical to the historical inline detection;
        # "deferred" only marks the dirty set and leaves evaluation to
        # explicit scan() calls (batch drains in sorted-psid order).
        if scan_policy not in ("eager", "deferred"):
            raise ValueError("unknown scan policy %r" % (scan_policy,))
        self.scan_policy = scan_policy
        # Shared penalty budget (PenaltyBudget or None=unlimited):
        # caps the application-wide outstanding delay-penalty time.
        self.penalty_budget = penalty_budget
        self.competitor_map = {}     # resource key -> [CompetitorEntry]
        self.last_releaser = {}      # resource key -> (psid, time_us)
        # Inverted holder index: resource key -> {psid: PBox}.  Kept in
        # sync with each pBox's ``holders`` dict so blame attribution is
        # O(holders of key) instead of a scan over every live pBox --
        # the difference between O(1) and O(P) per contended ENTER when
        # a shared manager supervises hundreds of pBoxes.
        self._key_holders = {}
        # Observability: everything the manager used to report to a
        # tracer now goes through the kernel's tracepoint bus; the
        # tracer (if any) is simply the first subscriber.
        trace = kernel.trace
        self._tp_create = trace.point("pbox.create")
        self._tp_release = trace.point("pbox.release")
        self._tp_activate = trace.point("pbox.activate")
        self._tp_freeze = trace.point("pbox.freeze")
        self._tp_event = trace.point("pbox.event")
        self._tp_detect = trace.point("pbox.detect")
        self._tp_action = trace.point("pbox.action")
        self._tp_penalty = trace.point("pbox.penalty")
        self._tp_heal = trace.point("pbox.heal")
        # Flow ids link each detection to the penalty it causes (used by
        # the trace exporter to draw detection -> penalty arrows).
        self._flow_ids = itertools.count(1)
        if tracer is not None:
            tracer.attach(trace)
        self.stats = {
            "detections": 0,
            "actions": 0,
            "pbox_level_actions": 0,
            "penalties_applied": 0,
            "penalty_applied_us": 0,
            "events": 0,
            "penalty_backoffs": 0,
            "safe_mode_releases": 0,
            "penalty_clamped": 0,
            "penalty_reverts": 0,
        }
        # Detection dirty set (ROADMAP item 1, landed): psids touched
        # by state events or freezes since the last scan drain.  scan()
        # consumes it -- detection work is proportional to this set,
        # never to the registered-pBox population.  Kept out of
        # ``stats`` deliberately: golden documents pin that dict.
        self.dirty_psids = set()
        # Observability window set: psids touched since the telemetry
        # pipeline's last drain_active().  Separate from the detection
        # set so a 100ms gauge drain can never starve (or double-feed)
        # the detector, and vice versa.
        self.active_psids = set()
        # Scan accounting -- also deliberately outside ``stats``.
        self.scan_stats = {
            "scans": 0,           # scan passes (incl. eager per-freeze)
            "evaluated": 0,       # pBoxes run through freeze detection
            "skipped_clean": 0,   # drained psids not frozen/evaluable
            "peak_dirty": 0,      # largest dirty set seen at a drain
        }
        if register_resume_hook:
            kernel.add_resume_hook(self._resume_hook)

    def drain_dirty(self):
        """Return and reset the detector's dirty set (scan work queue)."""
        dirty = self.dirty_psids
        self.dirty_psids = set()
        return dirty

    def drain_active(self):
        """Return and reset the telemetry window's active-psid set."""
        active = self.active_psids
        self.active_psids = set()
        return active

    # ------------------------------------------------------------------
    # Lifecycle (Section 4.3.2)
    # ------------------------------------------------------------------

    def create(self, rule, thread=None):
        """Create a pBox bound to ``thread`` (default: current thread)."""
        if thread is None:
            thread = self.kernel.current_thread
        pbox = PBox(next(self._psid_alloc), rule, thread=thread)
        self._pboxes[pbox.psid] = pbox
        if thread is not None:
            thread.pbox = pbox
        if self._tp_create.active:
            self._tp_create.fire(
                self.kernel.now_us, psid=pbox.psid,
                tid=None if thread is None else thread.tid,
                name=None if thread is None else thread.name,
            )
        return pbox

    def release(self, pbox):
        """Destroy a pBox, detaching it from maps and its thread."""
        if pbox.status is PBoxStatus.DESTROYED:
            return
        if pbox.status is PBoxStatus.ACTIVE:
            self.freeze(pbox)
        pbox.status = PBoxStatus.DESTROYED
        for key in list(self.competitor_map):
            entries = self.competitor_map[key]
            entries[:] = [entry for entry in entries if entry.pbox is not pbox]
            if not entries:
                del self.competitor_map[key]
        for key in pbox.holders:
            holders = self._key_holders.get(key)
            if holders is not None:
                holders.pop(pbox.psid, None)
                if not holders:
                    del self._key_holders[key]
        if pbox.thread is not None and pbox.thread.pbox is pbox:
            pbox.thread.pbox = None
        self._pboxes.pop(pbox.psid, None)
        if self._tp_release.active:
            self._tp_release.fire(self.kernel.now_us, psid=pbox.psid)

    def activate(self, pbox):
        """Start tracing a new activity inside the pBox.

        Any competitor entries left open by the previous activity (a
        PREPARE whose ENTER annotation was missed) are dropped here:
        a pBox starting a new activity is by definition not waiting.
        This is what makes the manager robust to incomplete
        update_pbox usage (Section 6.8).
        """
        for key in list(pbox.prepares):
            self._remove_competitor(key, pbox)
        pbox.prepares.clear()
        pbox.status = PBoxStatus.ACTIVE
        pbox.activity_start_us = self.kernel.now_us
        pbox.defer_time_us = 0
        if self._tp_activate.active:
            self._tp_activate.fire(self.kernel.now_us, psid=pbox.psid)

    def _remove_competitor(self, key, pbox):
        entries = self.competitor_map.get(key)
        if not entries:
            return
        entries[:] = [entry for entry in entries if entry.pbox is not pbox]
        if not entries:
            self.competitor_map.pop(key, None)

    def freeze(self, pbox):
        """Stop tracing the current activity and run pBox-level detection."""
        if pbox.status is not PBoxStatus.ACTIVE:
            return
        now = self.kernel.now_us
        exec_us = pbox.exec_time_us(now)
        record = ActivityRecord(pbox.defer_time_us, exec_us)
        pbox.history.append(record)
        pbox.total_defer_us += record.defer_us
        pbox.total_exec_us += record.exec_us
        pbox.activities_completed += 1
        pbox.status = PBoxStatus.FROZEN
        if self._tp_freeze.active:
            self._tp_freeze.fire(now, psid=pbox.psid,
                                 defer_us=record.defer_us,
                                 exec_us=record.exec_us)
        # A freeze dirties the pBox: it is the state change freeze-time
        # detection exists for, and marking it here guarantees a
        # deferred scan always re-evaluates a pBox whose activity ended
        # after the last drain -- even if no state event fired since.
        self.dirty_psids.add(pbox.psid)
        self.active_psids.add(pbox.psid)
        if self.enabled and self.scan_policy == "eager":
            # Eager mode: a one-psid dirty-set scan triggered by this
            # freeze.  Evaluating exactly the frozen pBox here is
            # byte-identical to the historical inline detection (the
            # golden corpus pins it); deferred mode leaves the set to
            # accumulate for a batched scan() drain.
            self.dirty_psids.discard(pbox.psid)
            self.scan_stats["scans"] += 1
            self.scan_stats["evaluated"] += 1
            self._pbox_level_detection(pbox)

    def scan(self, full=False):
        """Run freeze-time detection over the dirty set; return count.

        Drains ``dirty_psids`` and evaluates its *frozen* members in
        sorted-psid order -- deterministic no matter what order events
        dirtied them.  Cost is O(dirty set), never O(registered
        pBoxes): a quiescent pBox is never re-visited.  Dirty psids
        that are not frozen (mid-activity, or already released) are
        skipped; their own freeze re-marks them, so nothing is lost.

        ``full=True`` is the reference full-population scan: evaluate
        every registered pBox regardless of dirtiness.  It exists for
        the equivalence property tests (dirty-set verdicts must match
        it exactly); production paths never use it.
        """
        if not self.enabled:
            self.dirty_psids = set()
            return 0
        if full:
            pending = sorted(self._pboxes)
            self.dirty_psids = set()
        else:
            dirty = self.dirty_psids
            self.dirty_psids = set()
            pending = sorted(dirty)
        stats = self.scan_stats
        stats["scans"] += 1
        if len(pending) > stats["peak_dirty"]:
            stats["peak_dirty"] = len(pending)
        evaluated = 0
        for psid in pending:
            pbox = self._pboxes.get(psid)
            if pbox is None or pbox.status is not PBoxStatus.FROZEN:
                stats["skipped_clean"] += 1
                continue
            self._pbox_level_detection(pbox)
            evaluated += 1
        stats["evaluated"] += evaluated
        return evaluated

    def bind(self, pbox, thread, shared=False):
        """Bind ``pbox`` to ``thread`` (ownership transfer APIs)."""
        if pbox.thread is not None and pbox.thread.pbox is pbox:
            pbox.thread.pbox = None
        pbox.thread = thread
        pbox.shared_thread = shared
        if thread is not None:
            thread.pbox = pbox

    def unbind(self, pbox):
        """Detach ``pbox`` from its thread."""
        if pbox.thread is not None and pbox.thread.pbox is pbox:
            pbox.thread.pbox = None
        pbox.thread = None

    def get(self, psid):
        """Look up a pBox by id, or None."""
        return self._pboxes.get(psid)

    def contended(self, key, pbox=None):
        """True when ``key`` currently has waiters (library cost model).

        ``pbox`` is unused here but part of the signature contract: the
        sharded facade routes the question to the pBox's shard, whose
        competitor map is the only one that can contain its keys.
        """
        return key in self.competitor_map

    def pboxes(self):
        """Snapshot of live pBoxes."""
        return list(self._pboxes.values())

    # ------------------------------------------------------------------
    # State-event processing: Algorithm 1
    # ------------------------------------------------------------------

    def update(self, pbox, key, event):
        """Process one state event (the kernel side of update_pbox)."""
        self.stats["events"] += 1
        now = self.kernel.now_us
        # Fire before marking the dirty/active sets: a subscriber's
        # window roll (telemetry) must close the outgoing window
        # *without* this event's psid -- an event landing exactly on a
        # window boundary belongs to the new window, and marking first
        # double-counted the pBox in both.
        if self._tp_event.active:
            self._tp_event.fire(now, pbox=pbox, key=key, event=event)
        self.dirty_psids.add(pbox.psid)
        self.active_psids.add(pbox.psid)

        if event is StateEvent.PREPARE:
            if key in pbox.prepares:
                # A pBox waits on a key at most once at a time; a
                # duplicate PREPARE means the matching ENTER annotation
                # was missed -- replace the stale entry.
                self._remove_competitor(key, pbox)
            pbox.prepares[key] = now
            self.competitor_map.setdefault(key, []).append(
                CompetitorEntry(pbox, now)
            )
            return

        if event is StateEvent.ENTER:
            pbox.prepares.pop(key, None)
            entries = self.competitor_map.get(key)
            if not entries:
                return
            for entry in entries:
                if entry.pbox is pbox:
                    entries.remove(entry)
                    defer = now - entry.time_us
                    pbox.defer_time_us += defer
                    self._attribute_blame(pbox, key, defer)
                    break
            if not entries:
                self.competitor_map.pop(key, None)
            return

        if event is StateEvent.HOLD:
            pbox.holders[key] = now
            holders = self._key_holders.get(key)
            if holders is None:
                holders = self._key_holders[key] = {}
            holders[pbox.psid] = pbox
            return

        if event is StateEvent.UNHOLD:
            hold_start = pbox.holders.pop(key, None)
            if hold_start is None:
                return
            holders = self._key_holders.get(key)
            if holders is not None:
                holders.pop(pbox.psid, None)
                if not holders:
                    del self._key_holders[key]
            self.last_releaser[key] = (pbox.psid, now)
            if self.enabled and self.early_detection:
                self._detect_on_unhold(pbox, key, hold_start, now)
            return

        raise ValueError("unknown state event %r" % (event,))

    def _attribute_blame(self, waiter, key, defer_us):
        """Record who deferred ``waiter`` on ``key`` for freeze detection.

        Preference order: a current holder of the key, else the last
        pBox that released it while we were waiting.
        """
        blamed_psid = None
        holders = self._key_holders.get(key)
        if holders:
            # Lowest psid wins -- identical to the old full scan, which
            # walked _pboxes in creation (ascending-psid) order and took
            # the first holder.
            for psid in holders:
                if psid != waiter.psid and (blamed_psid is None
                                            or psid < blamed_psid):
                    blamed_psid = psid
        if blamed_psid is None:
            releaser = self.last_releaser.get(key)
            if releaser is not None and releaser[0] != waiter.psid:
                blamed_psid = releaser[0]
        if blamed_psid is not None:
            slot = (blamed_psid, key)
            waiter.blame[slot] = waiter.blame.get(slot, 0) + defer_us

    def _detect_on_unhold(self, holder, key, hold_start_us, now):
        """Algorithm 1, UNHOLD branch: find a victim among the waiters."""
        entries = self.competitor_map.get(key)
        if not entries:
            return
        victim = None
        victim_tf = 0.0
        victim_defer = 0
        for entry in entries:
            waiter = entry.pbox
            if waiter is holder or waiter.status is not PBoxStatus.ACTIVE:
                continue
            open_defer = now - entry.time_us
            total_defer = waiter.defer_time_us + open_defer
            if total_defer < self.min_defer_us:
                continue
            tf = waiter.interference_level(now, extra_defer_us=open_defer)
            if tf > waiter.rule.goal and hold_start_us < entry.time_us:
                if victim is None or tf > victim_tf:
                    victim = waiter
                    victim_tf = tf
                    victim_defer = total_defer
        if victim is not None:
            self.stats["detections"] += 1
            flow = next(self._flow_ids)
            if self._tp_detect.active:
                self._tp_detect.fire(now, noisy=holder, victim=victim,
                                     key=key, flow=flow)
            self.take_action(holder, victim, key, victim_defer_us=victim_defer,
                             flow_id=flow)

    def _pbox_level_detection(self, pbox):
        """Freeze-time detection over the activity history (Section 4.3.1).

        Uses the rule's metric (average by default) and fires when within
        ``near_goal_fraction`` of the goal, acting on the most-blamed
        (noisy pBox, key) pair recorded during recent activities.
        """
        metric = pbox.rule.metric
        if metric is Metric.AVERAGE:
            level = pbox.average_interference_level()
        elif metric is Metric.TAIL:
            level = pbox.tail_interference_level()
        else:
            level = pbox.max_interference_level()
        if level < self.near_goal_fraction * pbox.rule.goal:
            return
        if not pbox.blame:
            return
        if pbox.history and pbox.history[-1].defer_us < self.min_defer_us:
            return
        (noisy_psid, key), blamed_defer = max(
            pbox.blame.items(), key=lambda kv: kv[1]
        )
        noisy = self._pboxes.get(noisy_psid)
        if noisy is None or noisy is pbox:
            pbox.blame.clear()
            return
        self.stats["pbox_level_actions"] += 1
        self.take_action(noisy, pbox, key, victim_defer_us=blamed_defer)
        pbox.blame.clear()

    # ------------------------------------------------------------------
    # Actions (Section 4.4)
    # ------------------------------------------------------------------

    def take_action(self, noisy, victim, key, victim_defer_us=None,
                    flow_id=None):
        """Schedule a penalty on ``noisy`` for deferring ``victim``.

        The penalty is not applied immediately: for dedicated-thread
        pBoxes it is accumulated and delivered by the resume hook at the
        first point where the noisy pBox holds no tracked resource; for
        shared-thread (event-driven) pBoxes it becomes a task-deferral
        window instead.  ``victim_defer_us`` carries the victim's
        effective deferring time (including a still-open wait) to the
        penalty engine's p1 formula and policy chooser.
        """
        if not self.enabled or noisy is victim:
            return
        now = self.kernel.now_us
        if self.self_heal and now < self._safe_until.get(noisy.psid, 0):
            return  # safe-mode release: penalties suspended for cooldown
        if noisy.pending_penalty_us > 0:
            return  # a penalty is already queued and not yet served
        if noisy.shared_thread and now < noisy.penalty_until_us:
            return
        backoff = 0
        if self.self_heal:
            backoff = self._heal_observe(noisy, victim, now)
            if backoff is None:
                return  # safe mode engaged on this observation
        decision = self.penalty_engine.decide(
            now, noisy, victim, key, victim_defer_us=victim_defer_us
        )
        length_us = min(decision.length_us, self.penalty_cap_us)
        if backoff:
            length_us >>= backoff
        if (self.penalty_budget is not None and not noisy.shared_thread
                and self.penalty_mode == "delay"):
            # Shared budget across every shard of the application: the
            # outstanding delay-penalty time is bounded no matter how
            # many tenants detect at once.  A partial grant shortens
            # the penalty; an empty one drops the action (the budget
            # counts the denial -- manager ``stats`` keys are pinned
            # by the golden corpus and must not grow).
            length_us = self.penalty_budget.reserve(length_us)
            if length_us <= 0:
                return
        self.stats["actions"] += 1
        noisy.penalties_received += 1
        noisy.penalty_total_us += length_us
        if self._tp_action.active:
            self._tp_action.fire(now, noisy=noisy, victim=victim, key=key,
                                 length_us=length_us,
                                 victim_defer_us=victim_defer_us,
                                 flow=flow_id)
        if noisy.shared_thread:
            noisy.penalty_until_us = now + length_us
            if self._tp_penalty.active:
                self._tp_penalty.fire(now, pbox=noisy,
                                      delay_us=length_us,
                                      mode="defer-window", flow=flow_id)
        elif self.penalty_mode == "priority" and noisy.thread is not None:
            noisy.thread.demoted_until_us = max(
                noisy.thread.demoted_until_us, now + length_us
            )
            self.stats["penalties_applied"] += 1
            self.stats["penalty_applied_us"] += length_us
            if self._tp_penalty.active:
                self._tp_penalty.fire(now, pbox=noisy,
                                      delay_us=length_us,
                                      mode="demote", flow=flow_id)
        else:
            noisy.pending_penalty_us += length_us
            noisy.pending_penalty_flow = flow_id
            noisy.pending_since_us = now
        victim.blame.clear()

    def _heal_observe(self, noisy, victim, now):
        """Track whether penalizing ``noisy`` is actually helping ``victim``.

        Returns the backoff shift (0 = full-length penalties) to apply to
        the next penalty, or ``None`` when this observation tipped the
        pair into a safe-mode release.  An action "fails" when the
        victim's interference level neither improved since the previous
        action nor sits anywhere near its goal; ``heal_retry_limit``
        consecutive failures raise the backoff level (penalties halve per
        level), and past ``heal_max_backoff`` levels the penalties are
        evidently not the lever that helps this victim -- suspend them
        entirely for a cooldown instead of pounding a pBox to no effect.
        The first ``heal_min_actions`` actions are a grace period: the
        adaptive engine needs a few decisions to converge.
        """
        pair = (noisy.psid, victim.psid)
        state = self._heal_trend.get(pair)
        if state is None:
            state = self._heal_trend[pair] = _HealState()
        level = victim.interference_level(now)
        if level == float("inf"):
            level = 1e9
        state.actions += 1
        previous = state.last_level
        state.last_level = level
        if previous is None or state.actions <= self.heal_min_actions:
            return state.backoff
        improved = level < previous * 0.98
        recovered = level <= victim.rule.goal * 2
        if improved or recovered:
            state.fails = 0
            if state.backoff and improved:
                state.backoff -= 1
            return state.backoff
        state.fails += 1
        if state.fails < self.heal_retry_limit:
            return state.backoff
        state.fails = 0
        state.backoff += 1
        if state.backoff > self.heal_max_backoff:
            state.backoff = 0
            self._safe_until[noisy.psid] = now + self.heal_cooldown_us
            self.stats["safe_mode_releases"] += 1
            if self._tp_heal.active:
                self._tp_heal.fire(now, psid=noisy.psid, action="safe-mode",
                                   detail=self.heal_cooldown_us)
            return None
        self.stats["penalty_backoffs"] += 1
        if self._tp_heal.active:
            self._tp_heal.fire(now, psid=noisy.psid, action="backoff",
                               detail=state.backoff)
        return state.backoff

    def inject_penalty(self, pbox, delay_us):
        """Queue a raw delay penalty, bypassing the engine (fault hook).

        This is the "penalty misfire" surface the chaos harness uses: it
        deliberately skips the decide/cap/backoff pipeline so the resume
        hook's clamp and the invariant checkers are exercised against an
        out-of-policy pending amount.
        """
        pbox.pending_penalty_us += int(delay_us)
        pbox.pending_since_us = self.kernel.now_us

    def is_task_deferred(self, pbox):
        """True while an event-driven pBox's tasks should stay queued."""
        return self.kernel.now_us < pbox.penalty_until_us

    def make_queue_admission(self, pbox_of_item):
        """Build a TaskQueue admission callable.

        ``pbox_of_item(item)`` maps a queued task to its pBox (or None);
        tasks of penalized shared-thread pBoxes are kept in the queue,
        matching the patched accept/epoll behaviour described in
        Section 5.
        """

        def admission(item):
            pbox = pbox_of_item(item)
            if pbox is None:
                return True
            return not self.is_task_deferred(pbox)

        return admission

    def _resume_hook(self, thread):
        """Kernel resume hook: deliver pending penalties at safe points."""
        pbox = thread.pbox
        if pbox is None or pbox.pending_penalty_us <= 0:
            return 0
        if pbox.pending_penalty_us > self.penalty_cap_us:
            # Out-of-policy pending amount: the engine clamps its own
            # decisions, so this is a misfire (or an injected fault).
            # Bound it rather than parking the thread for an unbounded
            # stretch -- "penalties always bounded" is an invariant.
            if self.penalty_budget is not None:
                self.penalty_budget.release(
                    pbox.pending_penalty_us - self.penalty_cap_us)
            pbox.pending_penalty_us = self.penalty_cap_us
            self.stats["penalty_clamped"] += 1
            if self._tp_heal.active:
                self._tp_heal.fire(self.kernel.now_us, psid=pbox.psid,
                                   action="clamp",
                                   detail=self.penalty_cap_us)
        if self.safe_penalty_timing and pbox.holding_anything:
            if self.self_heal:
                now = self.kernel.now_us
                if now - pbox.pending_since_us > self.heal_pending_timeout_us:
                    # No safe point materialized for a whole timeout (the
                    # pBox re-acquires before every resume): decay the
                    # stuck penalty toward a full revert instead of
                    # letting it shadow the pBox forever.
                    decayed = pbox.pending_penalty_us >> 1
                    if self.penalty_budget is not None:
                        self.penalty_budget.release(
                            pbox.pending_penalty_us - decayed)
                    pbox.pending_penalty_us = decayed
                    pbox.pending_since_us = now
                    self.stats["penalty_reverts"] += 1
                    if pbox.pending_penalty_us < 1_000:
                        if self.penalty_budget is not None:
                            self.penalty_budget.release(
                                pbox.pending_penalty_us)
                        pbox.pending_penalty_us = 0
                        pbox.pending_penalty_flow = None
                    if self._tp_heal.active:
                        self._tp_heal.fire(now, psid=pbox.psid,
                                           action="revert",
                                           detail=pbox.pending_penalty_us)
            return 0  # Section 4.4.1: never delay a resource holder
        delay = pbox.pending_penalty_us
        pbox.pending_penalty_us = 0
        if self.penalty_budget is not None:
            self.penalty_budget.release(delay)
        self.stats["penalties_applied"] += 1
        self.stats["penalty_applied_us"] += delay
        if self._tp_penalty.active:
            self._tp_penalty.fire(self.kernel.now_us, pbox=pbox,
                                  delay_us=delay, mode="delay",
                                  flow=pbox.pending_penalty_flow)
        pbox.pending_penalty_flow = None
        return delay

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self, label=repr):
        """JSON-safe walk of the full manager state (checkpoint walker).

        Pure observation: no tracepoints fire, no psids or flow ids are
        allocated, and every dict iteration is sorted.  The flow-id
        counter is (like the kernel's ``_seq``) deliberately omitted --
        ``itertools.count`` cannot be read without advancing it, and
        replay reconstructs it exactly.
        """
        return {
            "enabled": self.enabled,
            "scan_policy": self.scan_policy,
            "stats": dict(self.stats),
            "scan_stats": dict(self.scan_stats),
            "dirty_psids": sorted(self.dirty_psids),
            "active_psids": sorted(self.active_psids),
            "safe_until": sorted(self._safe_until.items()),
            "heal_trend": sorted(
                ("%s/%s" % pair,
                 [state.last_level, state.fails, state.backoff,
                  state.actions])
                for pair, state in self._heal_trend.items()),
            "competitors": sorted(
                (label(key), [[entry.pbox.psid, entry.time_us]
                              for entry in entries])
                for key, entries in self.competitor_map.items()),
            "last_releaser": sorted(
                (label(key), list(releaser))
                for key, releaser in self.last_releaser.items()),
            "key_holders": sorted(
                (label(key), sorted(holders))
                for key, holders in self._key_holders.items()),
            "pboxes": [self._pboxes[psid].snapshot_state(label)
                       for psid in sorted(self._pboxes)],
            "budget": (None if self.penalty_budget is None
                       else self.penalty_budget.snapshot_state()),
        }
