"""Mini-C corpora modelling the five applications' waiting structure.

Table 5 of the paper reports, per application, how many state-event
sites were annotated manually and how many the static analyzer found.
We cannot ship MySQL's 1.74M SLOC, so each corpus synthesizes the same
*mix of waiting patterns* at the same proportions:

- ``direct``: a waiting call inside a loop guarded by a shared variable
  (Figure 9's shape) -- detectable;
- ``wrapper``: the wait hidden behind a direct wrapper function --
  detectable via the post-dominance wrapper check;
- ``deep``: the wait behind a two-level call chain -- missed, because
  the analyzer only resolves direct wrappers (Section 6.7);
- ``funcret``: the loop condition is a function call's return value --
  missed, because the analyzer does not trace shared state through
  return values (Section 6.7);
- ``extra`` (PostgreSQL only): detectable sites the manual porting
  overlooked; the analyzer reporting them is why Table 5 shows 110%
  for PostgreSQL.

Every site gets its own shared global, touched by a companion function
so the shared-variable analysis sees cross-activity access.
"""

from repro.analyzer.detect import Analyzer
from repro.analyzer.parser import parse_module


class CorpusSpec:
    """Pattern mix for one application's corpus."""

    def __init__(self, app, wait_func, direct, wrapper, deep, funcret,
                 extra=0):
        self.app = app
        self.wait_func = wait_func
        self.direct = direct
        self.wrapper = wrapper
        self.deep = deep
        self.funcret = funcret
        self.extra = extra

    @property
    def manual_events(self):
        """Sites the (simulated) manual porting annotated."""
        return self.direct + self.wrapper + self.deep + self.funcret - self.extra

    @property
    def detectable_events(self):
        """Sites Algorithm 2 can find."""
        return self.direct + self.wrapper


#: Pattern mixes chosen so manual/detected match Table 5:
#: MySQL 57/40, PostgreSQL 40/44, Apache 12/8, Varnish 16/12,
#: Memcached 14/12.
CORPUS_SPECS = {
    "mysql": CorpusSpec("mysql", "os_thread_sleep",
                        direct=28, wrapper=12, deep=10, funcret=7),
    "postgresql": CorpusSpec("postgresql", "pg_usleep",
                             direct=32, wrapper=12, deep=0, funcret=0,
                             extra=4),
    "apache": CorpusSpec("apache", "apr_sleep",
                         direct=6, wrapper=2, deep=2, funcret=2),
    "varnish": CorpusSpec("varnish", "usleep",
                          direct=8, wrapper=4, deep=2, funcret=2),
    "memcached": CorpusSpec("memcached", "pthread_cond_wait",
                            direct=9, wrapper=3, deep=1, funcret=1),
}


def build_corpus_source(spec):
    """Generate the mini-C source for one application's corpus."""
    parts = []
    app = spec.app
    wait = spec.wait_func

    # One shared wrapper (and one deep chain) per corpus.
    if spec.wrapper:
        parts.append(
            "void %s_wait_wrapper(int us) {\n"
            "    %s(us);\n"
            "}\n" % (app, wait)
        )
    if spec.deep:
        parts.append(
            "void %s_deep_inner(int us) {\n"
            "    %s(us);\n"
            "}\n" % (app, wait)
        )
        parts.append(
            "void %s_deep_outer(int us) {\n"
            "    %s_deep_inner(us);\n"
            "}\n" % (app, app)
        )

    def add_site(index, kind):
        var = "%s_%s_res_%d" % (app, kind, index)
        parts.append("int %s;\n" % var)
        parts.append(
            "void %s_%s_producer_%d(int v) {\n"
            "    %s = %s + v;\n"
            "}\n" % (app, kind, index, var, var)
        )
        if kind == "direct":
            body = "        %s(100);" % wait
        elif kind == "wrapper":
            body = "        %s_wait_wrapper(100);" % app
        elif kind in ("deep",):
            body = "        %s_deep_outer(100);" % app
        else:
            body = "        %s(100);" % wait
        if kind == "funcret":
            parts.append(
                "void %s_funcret_consumer_%d(int v) {\n"
                "    int w = %s;\n"
                "    while (%s_check_state_%d()) {\n"
                "%s\n"
                "    }\n"
                "}\n" % (app, index, var, app, index, body)
            )
        else:
            parts.append(
                "void %s_%s_consumer_%d(int v) {\n"
                "    while (%s < v) {\n"
                "%s\n"
                "    }\n"
                "}\n" % (app, kind, index, var, body)
            )

    for i in range(spec.direct):
        add_site(i, "direct")
    for i in range(spec.wrapper):
        add_site(i, "wrapper")
    for i in range(spec.deep):
        add_site(i, "deep")
    for i in range(spec.funcret):
        add_site(i, "funcret")
    return "".join(parts)


def analyze_corpus(app, analyzer=None):
    """Run Algorithm 2 on one app's corpus.

    Returns a dict with the Table 5 row: manual events, detected events,
    and the detection ratio.
    """
    spec = CORPUS_SPECS[app]
    module = parse_module(build_corpus_source(spec), name=app)
    analyzer = analyzer or Analyzer()
    locations = analyzer.analyze(module)
    detected = len(locations)
    manual = spec.manual_events
    return {
        "app": app,
        "manual": manual,
        "detected": detected,
        "ratio": detected / manual if manual else 0.0,
        "locations": locations,
    }


def table5():
    """All five Table 5 rows."""
    return [analyze_corpus(app) for app in
            ("mysql", "postgresql", "apache", "varnish", "memcached")]
