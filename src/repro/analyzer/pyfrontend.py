"""Python frontend for the static analyzer.

The paper's analyzer is an LLVM pass over C/C++.  Algorithm 2 itself is
language-independent, and since this reproduction is a Python library,
this frontend makes the analyzer useful to its own audience: it lowers
Python source (via :mod:`ast`) into the same IR the mini-C frontend
produces, so ``Analyzer().analyze(...)`` finds waiting calls inside
loops guarded by shared state in Python services too::

    from repro.analyzer import Analyzer
    from repro.analyzer.pyfrontend import parse_python

    module = parse_python(open("worker.py").read())
    for loc in Analyzer(wait_funcs=PY_WAIT_FUNCS).analyze(module):
        print(loc)

Supported subset: module-level functions and methods, ``while`` /
``for`` / ``if`` / ``else`` / ``break`` / ``continue`` / ``return``,
assignments, and call expressions.  Calls are named by their dotted
path (``time.sleep``, ``self.cond.wait``); candidate shared variables
are module-level names plus dotted attribute paths (``self.queue_len``)
-- an attribute read or written by two or more functions counts as
cross-activity state, the same heuristic the shared-variable pass
applies to C globals.
"""

import ast

from repro.analyzer.ir import Instr, Module
from repro.analyzer.parser import Lowerer

#: Waiting functions/methods commonly seen in Python services.
PY_WAIT_FUNCS = frozenset({
    "time.sleep",
    "sleep",
    "wait",                 # bare Condition/Event wait calls
    "select.select",
    "queue.Queue.get",
    "os.wait",
    "asyncio.sleep",
})


def _dotted_name(node):
    """Best-effort dotted path of a call target (None if dynamic)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _attribute_path(node):
    """Dotted path of an attribute *value* expression, or None."""
    return _dotted_name(node) if isinstance(node, ast.Attribute) else None


class _ExprScan(ast.NodeVisitor):
    """Collect variable uses and calls from an expression subtree."""

    def __init__(self):
        self.uses = []
        self.calls = []  # (callee dotted name, argument uses)

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load):
            self.uses.append(node.id)

    def visit_Attribute(self, node):
        path = _attribute_path(node)
        if path is not None and isinstance(node.ctx, ast.Load):
            self.uses.append(path)
            return  # don't descend: the path covers the chain
        self.generic_visit(node)

    def visit_Call(self, node):
        callee = _dotted_name(node.func)
        inner = _ExprScan()
        for arg in node.args:
            inner.visit(arg)
        for keyword in node.keywords:
            inner.visit(keyword.value)
        self.calls.extend(inner.calls)
        self.uses.extend(inner.uses)
        if callee is not None:
            self.calls.append((callee, tuple(inner.uses)))


def _scan(node):
    scanner = _ExprScan()
    if node is not None:
        scanner.visit(node)
    return tuple(scanner.uses), scanner.calls


class _PyLowerer:
    """Lower one Python function body into IR basic blocks."""

    def __init__(self, function):
        self.lowerer = Lowerer(function)

    def lower_body(self, statements):
        for statement in statements:
            self._statement(statement)
        self.lowerer.finish()

    def _emit_calls(self, calls, line):
        for callee, uses in calls:
            self.lowerer.emit(Instr("call", callee=callee, uses=uses,
                                    line=line))

    def _statement(self, node):
        line = getattr(node, "lineno", 0)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = getattr(node, "value", None)
            uses, calls = _scan(value)
            self._emit_calls(calls, line)
            targets = node.targets if isinstance(node, ast.Assign) else \
                [node.target]
            for target in targets:
                name = (target.id if isinstance(target, ast.Name)
                        else _attribute_path(target))
                extra = uses
                if isinstance(node, ast.AugAssign) and name:
                    extra = uses + (name,)
                self.lowerer.emit(Instr("assign", target=name, uses=extra,
                                        line=line))
        elif isinstance(node, ast.Expr):
            uses, calls = _scan(node.value)
            self._emit_calls(calls, line)
        elif isinstance(node, ast.Return):
            uses, calls = _scan(node.value)
            self._emit_calls(calls, line)
            self.lowerer.emit(Instr("return", uses=uses, line=line))
            self.lowerer.seal_block()
        elif isinstance(node, ast.While):
            self._while(node, line)
        elif isinstance(node, ast.For):
            self._for(node, line)
        elif isinstance(node, ast.If):
            self._if(node, line)
        elif isinstance(node, ast.Break):
            self.lowerer.emit_break(line)
        elif isinstance(node, ast.Continue):
            self.lowerer.emit_continue(line)
        elif isinstance(node, (ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested definitions are not lowered
        else:
            # Conservative fallback: record uses/calls, no control flow.
            uses, calls = _scan(node)
            self._emit_calls(calls, line)

    def _while(self, node, line):
        uses, calls = _scan(node.test)
        infinite = isinstance(node.test, ast.Constant) and bool(node.test.value)
        header, body, exit_label = self.lowerer.begin_loop(
            () if infinite else uses, calls, line, infinite=infinite
        )
        self.lowerer.enter_block(body)
        for statement in node.body:
            self._statement(statement)
        self.lowerer.jump_to(header)
        self.lowerer.end_loop()
        self.lowerer.enter_block(exit_label)

    def _for(self, node, line):
        uses, calls = _scan(node.iter)
        header, body, exit_label = self.lowerer.begin_loop(
            uses, calls, line, infinite=False
        )
        self.lowerer.enter_block(body)
        for statement in node.body:
            self._statement(statement)
        self.lowerer.jump_to(header)
        self.lowerer.end_loop()
        self.lowerer.enter_block(exit_label)

    def _if(self, node, line):
        uses, calls = _scan(node.test)
        self._emit_calls(calls, line)
        then_label, else_label, join_label = self.lowerer.begin_if(uses, line)
        self.lowerer.enter_block(then_label)
        for statement in node.body:
            self._statement(statement)
        self.lowerer.jump_to(join_label)
        self.lowerer.enter_block(else_label)
        for statement in node.orelse:
            self._statement(statement)
        self.lowerer.jump_to(join_label)
        self.lowerer.enter_block(join_label)


def parse_python(source, name="python-module"):
    """Lower Python ``source`` into an analyzer :class:`Module`.

    Module-level assignments become globals; every dotted attribute
    path read anywhere is also registered as a shared-variable
    candidate (instance state crossing activity boundaries).
    """
    tree = ast.parse(source)
    module = Module(name)

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module.declare_global(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            module.declare_global(node.target.id)

    def lower_function(node, qualname):
        from repro.analyzer.ir import Function

        params = tuple(arg.arg for arg in node.args.args)
        function = Function(qualname, params)
        module.add_function(function)
        _PyLowerer(function).lower_body(node.body)
        # Register attribute paths used by this function as shared-
        # variable candidates (the cross-activity heuristic needs them
        # in module.globals to count accesses).
        for used in function.variables_used():
            if used and "." in used:
                module.declare_global(used)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lower_function(node, node.name)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    lower_function(item, "%s.%s" % (node.name, item.name))
    return module
