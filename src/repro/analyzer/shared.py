"""Shared-variable analysis.

A virtual resource candidate is a variable "shared by multiple
activities" (Section 4.2.2).  Without thread-spawn tracking, the robust
approximation the analyzer uses is: a module-level (global) variable
accessed by more than one function.  Function parameters and locals are
never shared; a global touched by a single function is private state.
"""


def shared_variables(module):
    """Set of module globals accessed by two or more functions."""
    access_counts = {name: 0 for name in module.globals}
    for function in module.functions.values():
        used = function.variables_used()
        for name in module.globals:
            if name in used:
                access_counts[name] += 1
    return {name for name, count in access_counts.items() if count >= 2}


def functions_accessing(module, name):
    """Names of the functions that read or write global ``name``."""
    return sorted(
        function.name
        for function in module.functions.values()
        if name in function.variables_used()
    )
