"""Mini-C frontend for the static analyzer.

Parses a small C-like language -- just enough to express the waiting
structures the analyzer cares about (Figure 9 of the paper is valid
input modulo types) -- and lowers it to the :mod:`repro.analyzer.ir`
representation.

Supported syntax::

    int g_active, g_limit;              // module-level (global) variables

    void enter(int tid) {
        int mine = 0;
        for (;;) {
            if (g_active < g_limit) {
                g_active = g_active + 1;
                return;
            }
            os_thread_sleep(100);
        }
    }

Statements: local declarations, assignments, call statements, ``if`` /
``else``, ``while``, ``for (;;)``, ``break``, ``continue``, ``return``.
Expressions are scanned rather than fully parsed: the IR only needs the
variables an expression reads and the calls it makes.
"""

import re

from repro.analyzer.ir import Function, Instr, Module

_TOKEN_RE = re.compile(
    r"\s*(?://[^\n]*|/\*.*?\*/|\s+)*"
    r"([A-Za-z_][A-Za-z_0-9]*|\d+|==|!=|<=|>=|&&|\|\||[{}();,=<>!+\-*/&|%])",
    re.S,
)

_KEYWORDS = {
    "int", "void", "if", "else", "while", "for", "return", "break",
    "continue",
}


class ParseError(Exception):
    """Raised on malformed mini-C input."""


def _tokenize(source):
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            rest = source[pos:].strip()
            if not rest:
                break
            raise ParseError("cannot tokenize near %r" % rest[:40])
        line += source.count("\n", pos, match.start(1))
        tokens.append((match.group(1), line))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, source, module_name):
        self.tokens = _tokenize(source)
        self.pos = 0
        self.module = Module(module_name)

    # -- token plumbing --------------------------------------------------

    def peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index][0]
        return None

    def line(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][1]
        return self.tokens[-1][1] if self.tokens else 0

    def next(self):
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, token):
        got = self.next()
        if got != token:
            raise ParseError(
                "line %d: expected %r, got %r" % (self.line(), token, got)
            )
        return got

    # -- module level ------------------------------------------------------

    def parse(self):
        while self.peek() is not None:
            type_tok = self.next()
            if type_tok not in ("int", "void"):
                raise ParseError(
                    "line %d: expected declaration, got %r"
                    % (self.line(), type_tok)
                )
            name = self.next()
            if self.peek() == "(":
                self._parse_function(name)
            else:
                self.module.declare_global(name)
                while self.peek() == ",":
                    self.next()
                    self.module.declare_global(self.next())
                self.expect(";")
        return self.module

    def _parse_function(self, name):
        self.expect("(")
        params = []
        while self.peek() != ")":
            tok = self.next()
            if tok in ("int", "void", ","):
                continue
            params.append(tok)
        self.expect(")")
        function = Function(name, params)
        self.module.add_function(function)
        lowerer = _Lowerer(function)
        self.expect("{")
        self._parse_block(lowerer)
        lowerer.finish()

    # -- statements -----------------------------------------------------

    def _parse_block(self, lowerer):
        while True:
            token = self.peek()
            if token is None:
                raise ParseError("unterminated block")
            if token == "}":
                self.next()
                return
            self._parse_statement(lowerer)

    def _parse_statement(self, lowerer):
        token = self.peek()
        line = self.line()
        if token == "int":
            self.next()
            name = self.next()
            lowerer.function.locals.add(name)
            if self.peek() == "=":
                self.next()
                uses, calls = self._parse_expr((";",))
                lowerer.emit_expr_calls(calls, line)
                lowerer.emit(Instr("assign", target=name, uses=uses, line=line))
            self.expect(";")
            return
        if token == "if":
            self._parse_if(lowerer)
            return
        if token == "while":
            self._parse_while(lowerer)
            return
        if token == "for":
            self._parse_for(lowerer)
            return
        if token == "return":
            self.next()
            uses, calls = ((), [])
            if self.peek() != ";":
                uses, calls = self._parse_expr((";",))
            self.expect(";")
            lowerer.emit_expr_calls(calls, line)
            lowerer.emit(Instr("return", uses=uses, line=line))
            lowerer.seal_block()
            return
        if token == "break":
            self.next()
            self.expect(";")
            lowerer.emit_break(line)
            return
        if token == "continue":
            self.next()
            self.expect(";")
            lowerer.emit_continue(line)
            return
        # assignment or call statement
        name = self.next()
        if self.peek() == "(":
            self.next()
            uses, calls = self._parse_call_args(name)
            self.expect(";")
            lowerer.emit_expr_calls(calls[:-1], line)
            inner_callee, inner_uses = calls[-1]
            lowerer.emit(
                Instr("call", callee=inner_callee, uses=inner_uses, line=line)
            )
            return
        if self.peek() == "=":
            self.next()
            uses, calls = self._parse_expr((";",))
            self.expect(";")
            lowerer.emit_expr_calls(calls, line)
            lowerer.emit(Instr("assign", target=name, uses=uses, line=line))
            return
        raise ParseError("line %d: unexpected token %r" % (line, token))

    def _parse_if(self, lowerer):
        line = self.line()
        self.expect("if")
        self.expect("(")
        uses, calls = self._parse_expr((")",))
        self.expect(")")
        lowerer.emit_expr_calls(calls, line)
        then_label, else_label, join_label = lowerer.begin_if(uses, line)
        self.expect("{")
        lowerer.enter_block(then_label)
        self._parse_block(lowerer)
        lowerer.jump_to(join_label)
        if self.peek() == "else":
            self.next()
            self.expect("{")
            lowerer.enter_block(else_label)
            self._parse_block(lowerer)
            lowerer.jump_to(join_label)
        else:
            lowerer.enter_block(else_label)
            lowerer.jump_to(join_label)
        lowerer.enter_block(join_label)

    def _parse_while(self, lowerer):
        line = self.line()
        self.expect("while")
        self.expect("(")
        uses, calls = self._parse_expr((")",))
        self.expect(")")
        header, body, exit_label = lowerer.begin_loop(uses, calls, line)
        self.expect("{")
        lowerer.enter_block(body)
        self._parse_block(lowerer)
        lowerer.jump_to(header)
        lowerer.end_loop()
        lowerer.enter_block(exit_label)

    def _parse_for(self, lowerer):
        line = self.line()
        self.expect("for")
        self.expect("(")
        self.expect(";")
        self.expect(";")
        self.expect(")")
        header, body, exit_label = lowerer.begin_loop((), [], line,
                                                      infinite=True)
        self.expect("{")
        lowerer.enter_block(body)
        self._parse_block(lowerer)
        lowerer.jump_to(header)
        lowerer.end_loop()
        lowerer.enter_block(exit_label)

    # -- expressions -------------------------------------------------------

    def _parse_expr(self, terminators):
        """Scan an expression; returns (variable uses, [(callee, uses)]).

        Consumes tokens up to (not including) the terminator at paren
        depth zero, collecting identifier reads and call targets.
        """
        uses = []
        calls = []
        depth = 0
        while True:
            token = self.peek()
            if token is None:
                raise ParseError("unterminated expression")
            if depth == 0 and token in terminators:
                return tuple(uses), calls
            if token == "(":
                depth += 1
                self.next()
                continue
            if token == ")":
                if depth == 0:
                    return tuple(uses), calls
                depth -= 1
                self.next()
                continue
            self.next()
            if token[0].isalpha() or token[0] == "_":
                if token in _KEYWORDS:
                    continue
                if self.peek() == "(":
                    self.next()
                    _uses, inner_calls = self._parse_call_args(token)
                    calls.extend(inner_calls)
                else:
                    uses.append(token)

    def _parse_call_args(self, callee):
        """Parse a call's argument list (opening paren consumed).

        Returns (argument variable uses, calls) where ``calls`` ends
        with ``(callee, arg_uses)`` after any nested calls.
        """
        uses = []
        calls = []
        depth = 0
        while True:
            token = self.peek()
            if token is None:
                raise ParseError("unterminated call to %r" % callee)
            if token == ")" and depth == 0:
                self.next()
                calls.append((callee, tuple(uses)))
                return tuple(uses), calls
            self.next()
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
            elif token[0].isalpha() or token[0] == "_":
                if token in _KEYWORDS:
                    continue
                if self.peek() == "(":
                    self.next()
                    _inner_uses, inner_calls = self._parse_call_args(token)
                    calls.extend(inner_calls)
                else:
                    uses.append(token)


class _Lowerer:
    """Lowers parsed statements into basic blocks."""

    def __init__(self, function):
        self.function = function
        self._counter = 0
        self.current = function.new_block(self._label("entry"))
        self._sealed = False
        self.loop_stack = []  # (header_label, exit_label)

    def _label(self, hint):
        self._counter += 1
        return "%s_%d" % (hint, self._counter)

    def emit(self, instr):
        if self._sealed:
            # Dead code after return/break: park it in a fresh
            # unreachable block so the CFG stays well-formed.
            self.current = self.function.new_block(self._label("dead"))
            self._sealed = False
        self.current.add(instr)

    def emit_expr_calls(self, calls, line):
        for callee, uses in calls:
            self.emit(Instr("call", callee=callee, uses=uses, line=line))

    def seal_block(self):
        self._sealed = True

    def jump_to(self, label):
        if not self._sealed:
            self.current.successors.append(label)
        self._sealed = True

    def enter_block(self, label):
        block = self.function.blocks.get(label)
        if block is None:
            block = self.function.new_block(label)
        self.current = block
        self._sealed = False

    def begin_if(self, cond_uses, line):
        then_label = self._label("then")
        else_label = self._label("else")
        join_label = self._label("join")
        self.emit(Instr("branch", uses=cond_uses, line=line))
        self.current.successors.extend([then_label, else_label])
        self._sealed = True
        return then_label, else_label, join_label

    def begin_loop(self, cond_uses, cond_calls, line, infinite=False):
        header_label = self._label("loop")
        body_label = self._label("body")
        exit_label = self._label("exit")
        self.jump_to(header_label)
        self.enter_block(header_label)
        for callee, uses in cond_calls:
            self.emit(Instr("call", callee=callee, uses=uses, line=line))
        self.emit(Instr("branch", uses=cond_uses, line=line))
        self.current.successors.append(body_label)
        if not infinite:
            self.current.successors.append(exit_label)
        self._sealed = True
        self.loop_stack.append((header_label, exit_label))
        return header_label, body_label, exit_label

    def end_loop(self):
        self.loop_stack.pop()

    def emit_break(self, line):
        if not self.loop_stack:
            raise ParseError("line %d: break outside loop" % line)
        self.jump_to(self.loop_stack[-1][1])

    def emit_continue(self, line):
        if not self.loop_stack:
            raise ParseError("line %d: continue outside loop" % line)
        self.jump_to(self.loop_stack[-1][0])

    def finish(self):
        if not self._sealed:
            self.current.add(Instr("return", line=0))


def parse_module(source, name="module"):
    """Parse mini-C ``source`` into an IR :class:`Module`."""
    return _Parser(source, name).parse()


#: Public alias: the block lowerer is reusable by other frontends (the
#: Python frontend builds on it).
Lowerer = _Lowerer
