"""A small SSA-less intermediate representation.

The IR deliberately mirrors the subset of LLVM IR that Algorithm 2
consumes: call instructions (with callees), variable uses, and branch
conditions, organized into basic blocks with explicit successor labels.
"""


class Instr:
    """One IR instruction.

    Kinds:

    - ``call``: ``callee`` is the target name, ``uses`` the variables
      passed as arguments;
    - ``assign``: ``target`` is written, ``uses`` are read;
    - ``branch``: conditional transfer; ``uses`` are the condition
      variables (empty for unconditional jumps);
    - ``return``: function exit, ``uses`` optionally read.
    """

    KINDS = ("call", "assign", "branch", "return")

    __slots__ = ("kind", "callee", "target", "uses", "line")

    def __init__(self, kind, callee=None, target=None, uses=(), line=0):
        if kind not in self.KINDS:
            raise ValueError("unknown instruction kind %r" % kind)
        self.kind = kind
        self.callee = callee
        self.target = target
        self.uses = tuple(uses)
        self.line = line

    def __repr__(self):
        if self.kind == "call":
            return "Instr(call %s(%s) @%d)" % (
                self.callee, ", ".join(self.uses), self.line
            )
        return "Instr(%s %s uses=%s @%d)" % (
            self.kind, self.target or "", list(self.uses), self.line
        )


class BasicBlock:
    """A straight-line sequence of instructions with successor labels."""

    def __init__(self, label):
        self.label = label
        self.instrs = []
        self.successors = []

    def add(self, instr):
        """Append an instruction."""
        self.instrs.append(instr)
        return instr

    def calls(self):
        """All call instructions in the block."""
        return [instr for instr in self.instrs if instr.kind == "call"]

    def branch_uses(self):
        """Variables used by this block's branch condition (if any)."""
        used = []
        for instr in self.instrs:
            if instr.kind == "branch":
                used.extend(instr.uses)
        return used

    def __repr__(self):
        return "BasicBlock(%r, %d instrs, succ=%s)" % (
            self.label, len(self.instrs), self.successors
        )


class Function:
    """A function: ordered basic blocks plus parameter and local names."""

    def __init__(self, name, params=()):
        self.name = name
        self.params = tuple(params)
        self.blocks = {}
        self.block_order = []
        self.entry_label = None
        self.locals = set(params)

    def new_block(self, label):
        """Create and register a block; first block becomes the entry."""
        if label in self.blocks:
            raise ValueError("duplicate block label %r" % label)
        block = BasicBlock(label)
        self.blocks[label] = block
        self.block_order.append(label)
        if self.entry_label is None:
            self.entry_label = label
        return block

    def iter_blocks(self):
        """Blocks in insertion order."""
        return [self.blocks[label] for label in self.block_order]

    def call_instructions(self):
        """All (block, instr) call pairs in the function."""
        pairs = []
        for block in self.iter_blocks():
            for instr in block.calls():
                pairs.append((block, instr))
        return pairs

    def variables_used(self):
        """All variable names read or written anywhere in the function."""
        names = set()
        for block in self.iter_blocks():
            for instr in block.instrs:
                names.update(instr.uses)
                if instr.target:
                    names.add(instr.target)
        return names

    def __repr__(self):
        return "Function(%r, blocks=%d)" % (self.name, len(self.blocks))


class Module:
    """A translation unit: functions plus module-level (global) variables."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.globals = set()

    def add_function(self, function):
        """Register a function (unique names)."""
        if function.name in self.functions:
            raise ValueError("duplicate function %r" % function.name)
        self.functions[function.name] = function
        return function

    def declare_global(self, name):
        """Declare a module-level variable."""
        self.globals.add(name)

    def get(self, name):
        """Look up a function by name (None if external)."""
        return self.functions.get(name)

    def __repr__(self):
        return "Module(%r, functions=%d, globals=%d)" % (
            self.name, len(self.functions), len(self.globals)
        )
