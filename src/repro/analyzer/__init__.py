"""The companion static analyzer (Section 4.5, Algorithm 2).

The paper builds an LLVM pass (~800 SLOC of C++) that finds candidate
locations for update_pbox calls: callsites of waiting functions (or
wrappers around them) inside loops whose conditions involve variables
shared across activities.  Algorithm 2 is pure graph analysis, so this
package re-implements it language-independently:

- :mod:`repro.analyzer.ir` -- a small SSA-less IR (module / function /
  basic block / instruction);
- :mod:`repro.analyzer.cfg` -- control-flow graph, dominators and
  post-dominators (Cooper-Harvey-Kennedy), natural loops;
- :mod:`repro.analyzer.parser` -- a mini-C frontend so analyzer inputs
  can be written the way the paper's Figure 9 code reads;
- :mod:`repro.analyzer.pyfrontend` -- a Python (:mod:`ast`) frontend so
  the analyzer also works on Python services;
- :mod:`repro.analyzer.shared` -- the shared-variable (cross-activity)
  analysis;
- :mod:`repro.analyzer.detect` -- Algorithm 2 itself;
- :mod:`repro.analyzer.corpus` -- mini-C corpora modelling the waiting
  structure of the five evaluated applications (the Table 5 input).
"""

from repro.analyzer.cfg import CFG, dominators, natural_loops, post_dominators
from repro.analyzer.detect import Analyzer, DEFAULT_WAIT_FUNCS, Location
from repro.analyzer.ir import BasicBlock, Function, Instr, Module
from repro.analyzer.parser import ParseError, parse_module
from repro.analyzer.pyfrontend import PY_WAIT_FUNCS, parse_python
from repro.analyzer.shared import shared_variables

__all__ = [
    "Analyzer",
    "BasicBlock",
    "CFG",
    "DEFAULT_WAIT_FUNCS",
    "Function",
    "Instr",
    "Location",
    "Module",
    "ParseError",
    "dominators",
    "natural_loops",
    "PY_WAIT_FUNCS",
    "parse_module",
    "parse_python",
    "post_dominators",
    "shared_variables",
]
