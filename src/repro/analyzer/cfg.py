"""Control-flow graph analyses: dominators, post-dominators, loops.

Dominators use the Cooper-Harvey-Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm" -- the same reference the paper cites for its
post-dominator check).  Post-dominators are dominators of the reverse
CFG with a virtual exit node collecting every return block (and, for
infinite loops, every block without successors).
"""


class CFG:
    """Successor/predecessor maps over a function's basic blocks."""

    VIRTUAL_EXIT = "__exit__"

    def __init__(self, function):
        self.function = function
        self.succs = {}
        self.preds = {}
        for block in function.iter_blocks():
            self.succs[block.label] = list(block.successors)
            self.preds.setdefault(block.label, [])
        for label, succs in self.succs.items():
            for succ in succs:
                if succ not in self.preds:
                    raise ValueError(
                        "block %r jumps to undefined label %r" % (label, succ)
                    )
                self.preds[succ].append(label)
        self.entry = function.entry_label

    def exit_labels(self):
        """Blocks that leave the function (no successors or a return)."""
        exits = []
        for block in self.function.iter_blocks():
            returns = any(i.kind == "return" for i in block.instrs)
            if returns or not self.succs[block.label]:
                exits.append(block.label)
        return exits

    def reverse(self):
        """(succs, preds, entry) of the reversed graph with virtual exit.

        For each original edge u -> v the reverse graph has v -> u, so
        reverse successors are the original predecessors and vice versa;
        the virtual exit gains an edge to every exit block.
        """
        rsuccs = {label: list(preds) for label, preds in self.preds.items()}
        rpreds = {label: list(succs) for label, succs in self.succs.items()}
        exits = self.exit_labels()
        rsuccs[self.VIRTUAL_EXIT] = list(exits)
        rpreds[self.VIRTUAL_EXIT] = []
        for label in exits:
            rpreds[label].append(self.VIRTUAL_EXIT)
        return rsuccs, rpreds, self.VIRTUAL_EXIT


def _reverse_postorder(succs, entry):
    order = []
    seen = set()

    def visit(label):
        seen.add(label)
        for succ in succs.get(label, ()):
            if succ not in seen:
                visit(succ)
        order.append(label)

    visit(entry)
    order.reverse()
    return order


def _dominators_of(succs, preds, entry):
    """Iterative dominator computation (Cooper-Harvey-Kennedy style).

    Returns ``idom``: mapping label -> immediate dominator label (the
    entry maps to itself).  Unreachable blocks are omitted.
    """
    order = _reverse_postorder(succs, entry)
    index = {label: i for i, label in enumerate(order)}
    idom = {entry: entry}

    def intersect(a, b):
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            candidates = [p for p in preds.get(label, ()) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    return idom


def dominators(cfg):
    """idom map of ``cfg`` (entry dominates everything reachable)."""
    return _dominators_of(cfg.succs, cfg.preds, cfg.entry)


def post_dominators(cfg):
    """Immediate post-dominator map (over the virtual exit).

    A block B post-dominates A when every path from A to the function
    exit passes through B -- the property the wrapper check of
    Algorithm 2 needs.
    """
    rsuccs, rpreds, exit_label = cfg.reverse()
    return _dominators_of(rsuccs, rpreds, exit_label)


def dominates(idom, a, b):
    """True if ``a`` dominates ``b`` under the ``idom`` map."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def natural_loops(cfg):
    """Find natural loops via back edges (tail -> header it dominates).

    Returns a list of (header_label, set_of_body_labels); the body
    includes the header.  Loops sharing a header are merged.
    """
    idom = dominators(cfg)
    loops = {}
    for label, succs in cfg.succs.items():
        if label not in idom:
            continue  # unreachable
        for succ in succs:
            if succ in idom and dominates(idom, succ, label):
                body = loops.setdefault(succ, {succ})
                stack = [label]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(cfg.preds.get(node, ()))
    return sorted(loops.items(), key=lambda kv: kv[0])


def innermost_loop_containing(loops, label):
    """The smallest loop body containing ``label`` (or None)."""
    best = None
    for _header, body in loops:
        if label in body and (best is None or len(body) < len(best)):
            best = body
    return best
