"""Algorithm 2: identify locations to add state events.

The analyzer finds callsites of waiting functions (or of *direct
wrappers* around them) that sit inside a loop whose branch conditions
involve cross-activity shared variables.  Each hit is a candidate
location for the four update_pbox state events, with the shared
variables as the likely virtual resources.

Faithful to the paper, wrapper detection only looks one level deep
(a wrapper must call a waiting function on all paths -- checked via
post-dominance of the callsite's block over the function entry), and a
loop condition that is the return value of a function call is not
traced back to shared state.  Those two blind spots account for the
~19% of state events the paper's analyzer missed (Section 6.7).
"""

from repro.analyzer.cfg import (
    CFG,
    dominates,
    innermost_loop_containing,
    natural_loops,
    post_dominators,
)
from repro.analyzer.shared import shared_variables

#: Standard waiting functions and syscalls (Section 4.5 lists semaop,
#: pthread_sleep, pthread_cond_wait, pthread_yield, apr_sleep, ...).
DEFAULT_WAIT_FUNCS = frozenset({
    "semop",
    "sleep",
    "usleep",
    "nanosleep",
    "select",
    "poll",
    "epoll_wait",
    "futex_wait",
    "sched_yield",
    "pthread_yield",
    "pthread_sleep",
    "pthread_cond_wait",
    "pthread_cond_timedwait",
    "os_thread_sleep",
    "apr_sleep",
    "pg_usleep",
    "WaitLatch",
})


class Location:
    """A candidate location for update_pbox calls."""

    __slots__ = ("function", "line", "callee", "wait_func", "shared_vars")

    def __init__(self, function, line, callee, wait_func, shared_vars):
        self.function = function
        self.line = line
        self.callee = callee
        self.wait_func = wait_func
        self.shared_vars = tuple(shared_vars)

    def __repr__(self):
        return "Location(%s:%d call %s -> %s, shared=%s)" % (
            self.function,
            self.line,
            self.callee,
            self.wait_func,
            list(self.shared_vars),
        )


class Analyzer:
    """The static analyzer of Section 4.5."""

    def __init__(self, wait_funcs=DEFAULT_WAIT_FUNCS):
        self.wait_funcs = frozenset(wait_funcs)

    def analyze(self, module):
        """Run Algorithm 2 over ``module``; returns a list of Locations."""
        shared = shared_variables(module)
        wrappers = self.find_wrappers(module)
        locations = []
        for function in module.functions.values():
            cfg = CFG(function)
            loops = natural_loops(cfg)
            if not loops:
                continue
            for block, instr in function.call_instructions():
                wait_func = self._resolve_wait(instr.callee, wrappers)
                if wait_func is None:
                    continue
                body = innermost_loop_containing(loops, block.label)
                if body is None:
                    continue
                cond_vars = self._loop_condition_vars(function, body)
                shared_used = sorted(v for v in cond_vars if v in shared)
                if shared_used:
                    locations.append(
                        Location(function.name, instr.line, instr.callee,
                                 wait_func, shared_used)
                    )
        return locations

    def find_wrappers(self, module):
        """Map wrapper-function name -> the wait function it wraps.

        ``isWrapper`` (Algorithm 2 line 8): a function is a wrapper when
        a call to a waiting function sits in a block that post-dominates
        the entry block, i.e. every path through the function waits.
        Only direct wrappers are found (the paper's stated limitation).
        """
        wrappers = {}
        for function in module.functions.values():
            cfg = CFG(function)
            pdom = post_dominators(cfg)
            for block, instr in function.call_instructions():
                if instr.callee not in self.wait_funcs:
                    continue
                if block.label not in pdom:
                    continue
                if dominates(pdom, block.label, cfg.entry):
                    wrappers[function.name] = instr.callee
                    break
        return wrappers

    def _resolve_wait(self, callee, wrappers):
        if callee in self.wait_funcs:
            return callee
        return wrappers.get(callee)

    @staticmethod
    def _loop_condition_vars(function, loop_body):
        """Variables used in branch conditions of the loop's blocks.

        Covers both ``while (shared < limit)`` headers and Figure 9-style
        ``for (;;)`` loops whose guarding ``if`` tests the shared
        variable inside the body.
        """
        names = set()
        for label in loop_body:
            names.update(function.blocks[label].branch_uses())
        return names
