"""DARC-style baseline (Demoulin et al., SOSP 2021 "Persephone").

DARC profiles request service times by type and dedicates cores to short
request types so they never queue behind long ones, deliberately leaving
cores idle if needed.  Per the paper's methodology we classify requests
into types (the case harness labels each request dict with ``type``) and
implement a worker-equivalent: after a profiling window the shortest
request type gets a reserved slice of cores.

Structural failure mode on intra-app interference: reserving cores for
the victim's short requests guarantees them CPU, but they are blocked on
virtual resources; meanwhile the noisy requests lose cores, lengthening
their holds -- the paper measures DARC making 13 of 16 cases worse.
"""

from collections import defaultdict

from repro.baselines.base import SolutionPolicy


class DarcPolicy(SolutionPolicy):
    """Request-type profiling plus core dedication for the short type."""

    name = "darc"

    def __init__(self, profile_window_us=1_000_000, reserve_fraction=0.5):
        super().__init__()
        self.profile_window_us = profile_window_us
        self.reserve_fraction = reserve_fraction
        self._service_sums = defaultdict(float)
        self._service_counts = defaultdict(int)
        self.short_type = None
        self.reserved_cores = 0

    def finalize(self, groups):
        """Schedule the profiling pass."""
        self.kernel.post(self.profile_window_us, self._apply_profile)

    def before_request(self, ctx, request):
        """Tag the executing thread with the request's type."""
        thread = self.kernel.current_thread
        if thread is not None:
            thread.darc_tag = self._request_type(request)
        return
        yield  # pragma: no cover - keeps this a generator

    def after_request(self, ctx, request, latency_us):
        """Record the request's service time and clear the thread tag."""
        rtype = self._request_type(request)
        self._service_sums[rtype] += latency_us
        self._service_counts[rtype] += 1
        thread = self.kernel.current_thread
        if thread is not None:
            thread.darc_tag = None

    # ------------------------------------------------------------------

    @staticmethod
    def _request_type(request):
        if isinstance(request, dict):
            return request.get("type") or request.get("kind") or "default"
        return "default"

    def _apply_profile(self):
        """Reserve cores for the type with the shortest mean service time."""
        means = {
            rtype: self._service_sums[rtype] / self._service_counts[rtype]
            for rtype in self._service_counts
            if self._service_counts[rtype] > 0
        }
        if len(means) < 2:
            return  # nothing to separate
        self.short_type = min(means, key=means.get)
        cores = self.kernel.cores
        reserve = max(1, int(len(cores) * self.reserve_fraction))
        for core in cores[:reserve]:
            core.reserved_for = self.short_type
        self.reserved_cores = reserve
