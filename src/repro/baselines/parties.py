"""PARTIES-style baseline (Chen et al., ASPLOS 2019; Section 6.3 here).

PARTIES monitors each interactive service's latency against its QoS
target and, upon violation, incrementally shifts hardware resources
toward the violating service, taking them from services with slack.  Per
the paper's methodology we treat each client (group) as a PARTIES
control target; the resource being shifted is CPU bandwidth.

The structural reason it fails on intra-app interference is visible in
the control law: when the victim violates QoS, PARTIES gives the victim
*more CPU* and takes CPU from the noisy group -- but the victim is
blocked on a virtual resource held by the noisy activity, so slowing the
noisy group's CPU makes the hold (and the victim's wait) longer.
"""

from collections import deque

from repro.baselines.base import SolutionPolicy
from repro.sim.cgroup import Cgroup


class PartiesPolicy(SolutionPolicy):
    """QoS monitor + incremental CPU shifting between client groups."""

    name = "parties"

    def __init__(self, slo_by_group=None, interval_us=500_000,
                 step_fraction=0.1, min_fraction=0.05,
                 period_us=Cgroup.DEFAULT_PERIOD_US, window=64):
        super().__init__()
        self.slo_by_group = dict(slo_by_group or {})
        self.interval_us = interval_us
        self.step_fraction = step_fraction
        self.min_fraction = min_fraction
        self.period_us = period_us
        self.window = window
        self._groups = {}
        self._latencies = {}
        self.adjustments = 0

    def thread_options(self, group, role):
        """Place every thread in its group's controllable cgroup."""
        cgroup = self._groups.get(group)
        if cgroup is None:
            cgroup = self.kernel.create_cgroup(
                "parties:%s" % group, quota_us=None, period_us=self.period_us
            )
            self._groups[group] = cgroup
            self._latencies[group] = deque(maxlen=self.window)
        return {"cgroup": cgroup}

    def finalize(self, groups):
        """Start from an even split and begin the control loop."""
        if not self._groups:
            return
        total = self._total_us()
        share = max(1, total // len(self._groups))
        for cgroup in self._groups.values():
            cgroup.set_quota(share)
        self.kernel.call_every(self.interval_us, self._control_tick)

    def after_request(self, ctx, request, latency_us):
        """Record latency for the client's group."""
        window = self._latencies.get(ctx.group)
        if window is not None:
            window.append(latency_us)

    # ------------------------------------------------------------------

    def _total_us(self):
        return len(self.kernel.cores) * self.period_us

    def _mean_latency(self, group):
        window = self._latencies.get(group)
        if not window:
            return None
        return sum(window) / len(window)

    def _control_tick(self):
        violators = []
        satisfied = []
        for group in self._groups:
            slo = self.slo_by_group.get(group)
            mean = self._mean_latency(group)
            if slo is None or mean is None:
                satisfied.append(group)
            elif mean > slo:
                violators.append(group)
            else:
                satisfied.append(group)
        if not violators:
            return
        step = int(self._total_us() * self.step_fraction)
        floor = int(self._total_us() * self.min_fraction)
        # Donate from the satisfied group with the largest quota.
        donors = [g for g in satisfied if self._groups[g].quota_us and
                  self._groups[g].quota_us - step >= floor]
        if not donors:
            return
        donor = max(donors, key=lambda g: self._groups[g].quota_us)
        for violator in violators:
            donor_cg = self._groups[donor]
            victim_cg = self._groups[violator]
            if donor_cg.quota_us - step < floor:
                break
            donor_cg.set_quota(donor_cg.quota_us - step)
            victim_cg.set_quota((victim_cg.quota_us or 0) + step)
            self.adjustments += 1
