"""Retro-style baseline (Mace et al., NSDI 2015; Section 6.3 here).

Retro attributes resource usage (CPU, locks, thread pools) to workflows
and lets operators pick a policy; the paper evaluates BFAIR, which
throttles workflows to bottleneck-fair shares.  Following the paper's
methodology ("we trace each activity's resource usage ..., calculate the
slowdown and load factor, and run Retro's BFAIR policy to throttle noisy
requests"), this implementation:

- tracks, per workflow group, a recent latency window (slowdown =
  latency / interference-free baseline) and a usage proxy (sum of
  request service time, i.e. the workflow's load on the bottleneck);
- every control interval, if some workflow's slowdown exceeds the
  threshold, the workflow with the highest load factor is throttled by
  halving its token-bucket rate; when no workflow is slowed, rates
  recover multiplicatively.

Throttling happens *between* requests (admission), so unlike pBox it
cannot time its intervention relative to virtual-resource holds; its
throttle also slows every request of the workflow, not just the
contending ones.
"""

from collections import deque

from repro.baselines.base import SolutionPolicy
from repro.sim.syscalls import Now, Sleep


class _Workflow:
    __slots__ = ("latencies", "usage_us", "rate", "tokens", "last_refill_us")

    def __init__(self, window):
        self.latencies = deque(maxlen=window)
        self.usage_us = 0.0
        self.rate = None          # requests/sec cap; None = unthrottled
        self.tokens = 0.0
        self.last_refill_us = 0


class RetroPolicy(SolutionPolicy):
    """BFAIR-style throttling of the highest-load workflow."""

    name = "retro"

    def __init__(self, baseline_by_group=None, slowdown_threshold=1.5,
                 interval_us=500_000, recovery_factor=1.25, window=64):
        super().__init__()
        self.baseline_by_group = dict(baseline_by_group or {})
        self.slowdown_threshold = slowdown_threshold
        self.interval_us = interval_us
        self.recovery_factor = recovery_factor
        self.window = window
        self._workflows = {}
        self.throttle_events = 0

    def thread_options(self, group, role):
        """Register the thread's workflow."""
        if group not in self._workflows:
            self._workflows[group] = _Workflow(self.window)
        return {}

    def finalize(self, groups):
        """Ensure every workflow exists and start the control loop."""
        for group in groups:
            if group not in self._workflows:
                self._workflows[group] = _Workflow(self.window)
        self.kernel.call_every(self.interval_us, self._control_tick)

    def before_request(self, ctx, request):
        """Token-bucket admission for throttled workflows."""
        workflow = self._workflows.get(ctx.group)
        if workflow is None or workflow.rate is None:
            return
        while True:
            now = yield Now()
            elapsed = now - workflow.last_refill_us
            workflow.tokens = min(
                workflow.rate,  # burst of at most 1 second
                workflow.tokens + workflow.rate * elapsed / 1_000_000.0,
            )
            workflow.last_refill_us = now
            if workflow.tokens >= 1.0:
                workflow.tokens -= 1.0
                return
            deficit = 1.0 - workflow.tokens
            yield Sleep(us=max(1_000, int(deficit / workflow.rate * 1_000_000)))

    def after_request(self, ctx, request, latency_us):
        """Track latency (slowdown) and the usage (load) proxy."""
        workflow = self._workflows.get(ctx.group)
        if workflow is not None:
            workflow.latencies.append(latency_us)
            workflow.usage_us += latency_us

    # ------------------------------------------------------------------

    def _slowdown(self, group, workflow):
        baseline = self.baseline_by_group.get(group)
        if not baseline or not workflow.latencies:
            return 1.0
        mean = sum(workflow.latencies) / len(workflow.latencies)
        return mean / baseline

    def _control_tick(self):
        slowed = [
            group
            for group, wf in self._workflows.items()
            if self._slowdown(group, wf) > self.slowdown_threshold
        ]
        if slowed:
            # Throttle the workflow with the highest load factor.
            noisy = max(self._workflows, key=lambda g: self._workflows[g].usage_us)
            workflow = self._workflows[noisy]
            if workflow.rate is None:
                recent = len(workflow.latencies) or 1
                # Start from the observed rate over the window.
                workflow.rate = max(
                    1.0, recent / (self.interval_us / 1_000_000.0)
                )
            workflow.rate = max(0.5, workflow.rate / 2.0)
            self.throttle_events += 1
        else:
            for workflow in self._workflows.values():
                if workflow.rate is not None:
                    workflow.rate *= self.recovery_factor
                    if workflow.rate > 10_000:
                        workflow.rate = None
        for workflow in self._workflows.values():
            workflow.usage_us *= 0.5  # exponential decay of the load proxy
