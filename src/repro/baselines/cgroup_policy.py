"""The Linux-cgroup baseline (Section 6.3).

Mirrors the paper's methodology: "use a script to dynamically identify
threads that handle different types of workloads and put them into
different cgroups ... then configure an even CPU usage quota among the
cgroups."  Our case harness labels threads with their workload group, so
the "script" reduces to creating one cgroup per group and splitting the
machine's CPU bandwidth evenly.
"""

from repro.baselines.base import SolutionPolicy
from repro.sim.cgroup import Cgroup


class CgroupPolicy(SolutionPolicy):
    """Even CPU-quota split across workload groups."""

    name = "cgroup"

    def __init__(self, period_us=Cgroup.DEFAULT_PERIOD_US):
        super().__init__()
        self.period_us = period_us
        self._groups = {}

    def thread_options(self, group, role):
        """Every thread lands in its group's cgroup."""
        cgroup = self._groups.get(group)
        if cgroup is None:
            cgroup = self.kernel.create_cgroup(
                "cg:%s" % group, quota_us=None, period_us=self.period_us
            )
            self._groups[group] = cgroup
        return {"cgroup": cgroup}

    def finalize(self, groups):
        """Split total CPU bandwidth evenly across the observed groups."""
        if not self._groups:
            return
        total_us = len(self.kernel.cores) * self.period_us
        share = max(1, total_us // len(self._groups))
        for cgroup in self._groups.values():
            cgroup.set_quota(share)

    def quotas(self):
        """Mapping group -> quota_us (for tests and reports)."""
        return {name: cg.quota_us for name, cg in self._groups.items()}
