"""The solution-policy interface the case harness drives.

A policy sees three things:

- thread creation: every simulated thread a case spawns is labelled with
  a *group* (a workload class: one per client type plus one for
  background tasks, mirroring how the paper's scripts classified threads
  for cgroup/PARTIES); ``thread_options`` lets the policy attach a
  cgroup or core affinity;
- request boundaries: ``before_request`` is a generator driven right
  before each request (admission control / tagging) and
  ``after_request`` observes completion latencies;
- ``finalize`` runs once after the case is built so the policy can size
  quotas and start its control loop.
"""


class SolutionPolicy:
    """Base policy: does nothing (used for the vanilla runs)."""

    name = "none"

    def __init__(self):
        self.kernel = None

    def attach(self, kernel):
        """Give the policy access to the kernel (called by the harness)."""
        self.kernel = kernel

    def thread_options(self, group, role):
        """Return kwargs for ``kernel.spawn`` (cgroup / affinity)."""
        return {}

    def finalize(self, groups):
        """Called once all threads are spawned; ``groups`` is the set of
        group labels seen.  Policies size quotas / start control loops
        here."""

    def before_request(self, ctx, request):
        """Generator driven before each request; default no-op."""
        return
        yield  # pragma: no cover - keeps this a generator

    def after_request(self, ctx, request, latency_us):
        """Observe a completed request (latency in microseconds)."""


class RequestContext:
    """Per-client context handed to policy request hooks."""

    __slots__ = ("group", "client_name", "victim", "slo_us")

    def __init__(self, group, client_name, victim=False, slo_us=None):
        self.group = group
        self.client_name = client_name
        self.victim = victim
        self.slo_us = slo_us

    def __repr__(self):
        return "RequestContext(group=%r, client=%r, victim=%r)" % (
            self.group,
            self.client_name,
            self.victim,
        )
