"""State-of-the-art baseline solutions compared against pBox (Section 6.3).

Each baseline is a *solution policy* that plugs into the case harness:

- :class:`~repro.baselines.cgroup_policy.CgroupPolicy` -- Linux cgroup
  CPU bandwidth, an even quota split across activity groups;
- :class:`~repro.baselines.parties.PartiesPolicy` -- PARTIES-style QoS
  monitoring with incremental resource shifting on violations;
- :class:`~repro.baselines.retro.RetroPolicy` -- Retro's BFAIR policy:
  per-workflow slowdown tracking with token-bucket throttling of the
  highest-load workflow;
- :class:`~repro.baselines.darc.DarcPolicy` -- DARC-style request-type
  profiling with core dedication for short request types.

All of them act on hardware resources (CPU time / cores / admission),
which is precisely why they struggle on intra-application interference:
the victims are waiting on *virtual* resources held by the noisy
activity, and taking CPU away from the holder makes the wait longer.
"""

from repro.baselines.base import SolutionPolicy
from repro.baselines.cgroup_policy import CgroupPolicy
from repro.baselines.darc import DarcPolicy
from repro.baselines.parties import PartiesPolicy
from repro.baselines.retro import RetroPolicy

__all__ = [
    "CgroupPolicy",
    "DarcPolicy",
    "PartiesPolicy",
    "RetroPolicy",
    "SolutionPolicy",
]
