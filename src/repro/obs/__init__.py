"""Cross-layer observability: tracepoints, spans, export, metrics.

Section 7 of the paper presents pBox's log traces as the debugging aid
for interference incidents, and Figure 16's overhead claim requires the
instrumentation to be near-free when nobody is looking.  This package
provides both halves for the reproduction:

- :mod:`repro.obs.tracepoints` -- a named tracepoint bus.  The sim
  kernel, futex table, cgroups, the pBox manager, and the application
  resource models all fire tracepoints; with no subscribers each firing
  site costs one attribute check.
- :mod:`repro.obs.spans` -- a span recorder that subscribes to the bus
  and reconstructs per-thread and per-pBox timelines in virtual time.
- :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto
  compatible) serialization of a recorded run, including flow events
  linking each detection to the penalty it caused.
- :mod:`repro.obs.metrics` -- a unified registry of counters, gauges
  and mergeable log-bucketed latency histograms, fed from the bus by
  :class:`~repro.obs.metrics.MetricsCollector`.
- :mod:`repro.obs.attribution` -- the contention attribution profiler:
  a virtual-time wait-for graph (with cycle warnings) and a per-
  (aggressor pBox x resource x victim pBox) blame matrix, fed from the
  bus by :class:`~repro.obs.attribution.AttributionProfiler`.
- :mod:`repro.obs.profile` -- virtual-time flame profiles folded from
  recorded spans: flamegraph.pl folded stacks, speedscope JSON, and a
  self-contained HTML summary.
"""

from repro.obs.tracepoints import CATALOG, Tracepoint, TracepointBus, key_label
from repro.obs.spans import SpanRecorder
from repro.obs.attribution import (
    AttributionProfiler,
    BlameMatrix,
    WaitForGraph,
)
from repro.obs.profile import FoldedProfile
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)

__all__ = [
    "AttributionProfiler",
    "BlameMatrix",
    "CATALOG",
    "Counter",
    "FoldedProfile",
    "WaitForGraph",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "SpanRecorder",
    "Tracepoint",
    "TracepointBus",
    "chrome_trace",
    "chrome_trace_events",
    "key_label",
    "validate_chrome_trace",
    "write_chrome_trace",
]
