"""Cross-layer observability: tracepoints, spans, export, metrics.

Section 7 of the paper presents pBox's log traces as the debugging aid
for interference incidents, and Figure 16's overhead claim requires the
instrumentation to be near-free when nobody is looking.  This package
provides both halves for the reproduction:

- :mod:`repro.obs.tracepoints` -- a named tracepoint bus.  The sim
  kernel, futex table, cgroups, the pBox manager, and the application
  resource models all fire tracepoints; with no subscribers each firing
  site costs one attribute check.
- :mod:`repro.obs.spans` -- a span recorder that subscribes to the bus
  and reconstructs per-thread and per-pBox timelines in virtual time.
- :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto
  compatible) serialization of a recorded run, including flow events
  linking each detection to the penalty it caused.
- :mod:`repro.obs.metrics` -- a unified registry of counters, gauges
  and mergeable log-bucketed latency histograms, fed from the bus by
  :class:`~repro.obs.metrics.MetricsCollector`.
- :mod:`repro.obs.attribution` -- the contention attribution profiler:
  a virtual-time wait-for graph (with cycle warnings) and a per-
  (aggressor pBox x resource x victim pBox) blame matrix, fed from the
  bus by :class:`~repro.obs.attribution.AttributionProfiler`.
- :mod:`repro.obs.profile` -- virtual-time flame profiles folded from
  recorded spans: flamegraph.pl folded stacks, speedscope JSON, and a
  self-contained HTML summary.
- :mod:`repro.obs.sketch` -- mergeable DDSketch-style quantile
  sketches with order-independent canonical serialization.
- :mod:`repro.obs.slo` -- per-tenant SLO objectives with multi-window
  burn-rate alerting.
- :mod:`repro.obs.telemetry` -- the always-on per-tenant telemetry
  pipeline: sketches + windowed time-series + SLO evaluation, emitting
  derived ``slo.*`` tracepoints (excluded from golden digests); plus
  the :class:`~repro.obs.telemetry.BreachExplainer` bridging breaches
  to per-request causes via derived ``why.explain`` points.
- :mod:`repro.obs.critpath` -- per-request causal tracing: rebuilds
  each traced request's timeline from ``req.*`` + scheduler/futex/
  cgroup/penalty tracepoints and decomposes its latency into an
  exactly-summing segment breakdown (the ``repro why`` engine).
- :mod:`repro.obs.dashboard` -- terminal and self-contained HTML
  renderers over telemetry snapshots (the ``repro watch`` views).
"""

from repro.obs.tracepoints import (
    CATALOG,
    DERIVED_PREFIXES,
    Tracepoint,
    TracepointBus,
    is_derived,
    key_label,
)
from repro.obs.spans import SpanRecorder
from repro.obs.attribution import (
    AttributionProfiler,
    BlameMatrix,
    WaitForGraph,
)
from repro.obs.profile import FoldedProfile
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from repro.obs.sketch import QuantileSketch, merge_all
from repro.obs.slo import BurnRatePolicy, SLObjective, SLOEvaluator
from repro.obs.telemetry import BreachExplainer, TelemetryPipeline, tenant_of
from repro.obs.critpath import CritPathTracer, RequestTrace
from repro.obs.dashboard import render_frame, render_html, write_html

__all__ = [
    "AttributionProfiler",
    "BlameMatrix",
    "BreachExplainer",
    "BurnRatePolicy",
    "CATALOG",
    "Counter",
    "CritPathTracer",
    "DERIVED_PREFIXES",
    "FoldedProfile",
    "WaitForGraph",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "QuantileSketch",
    "RequestTrace",
    "SLOEvaluator",
    "SLObjective",
    "SpanRecorder",
    "TelemetryPipeline",
    "Tracepoint",
    "TracepointBus",
    "chrome_trace",
    "chrome_trace_events",
    "is_derived",
    "key_label",
    "merge_all",
    "render_frame",
    "render_html",
    "tenant_of",
    "validate_chrome_trace",
    "write_chrome_trace",
]
