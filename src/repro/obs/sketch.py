"""Mergeable quantile sketches with order-independent serialization.

The telemetry pipeline needs per-tenant latency distributions that can
be (a) kept always-on at O(1) memory, (b) merged across windows,
tenants, and -- once the kernel is sharded per process (ROADMAP item
2) -- across shard streams, and (c) compared byte-for-byte so a merged
document is reproducible regardless of which shard finished first.

:class:`QuantileSketch` is DDSketch-style: values land in log-spaced
buckets indexed by a pure function of the value (the same
16-sub-buckets-per-octave layout as
:func:`repro.obs.metrics.bucket_index`, <= 6.25% relative bucket
width).  Because the bucket index depends only on the value, merging is
plain bucket-count addition: an associative, commutative fold.  The
canonical serialization (:meth:`to_bytes`) sorts bucket indices and
delta-encodes them, so *any* merge order -- pairwise, tree-shaped,
left-to-right -- yields identical bytes for identical multisets.  The
property test in ``tests/test_obs_sketch.py`` pins exactly that.

Values are non-negative integers (microseconds, or milli-units for
dimensionless ratios); negative inputs clamp to zero like the metrics
histograms.
"""

import json

from repro.obs.metrics import bucket_bounds, bucket_index


class QuantileSketch:
    """Log-bucketed mergeable quantile sketch over non-negative ints."""

    __slots__ = ("name", "buckets", "count", "total", "min_value",
                 "max_value")

    def __init__(self, name="sketch"):
        self.name = name
        self.buckets = {}
        self.count = 0
        self.total = 0
        self.min_value = None
        self.max_value = None

    def record(self, value):
        """Record one value (negative values clamp to zero)."""
        value = int(value)
        if value < 0:
            value = 0
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other):
        """Fold ``other`` in; exact (adds bucket counts).  Returns self."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None and (
                self.min_value is None or other.min_value < self.min_value):
            self.min_value = other.min_value
        if other.max_value is not None and (
                self.max_value is None or other.max_value > self.max_value):
            self.max_value = other.max_value
        return self

    def copy(self, name=None):
        """Independent copy (used to snapshot an open window)."""
        duplicate = QuantileSketch(name or self.name)
        duplicate.buckets = dict(self.buckets)
        duplicate.count = self.count
        duplicate.total = self.total
        duplicate.min_value = self.min_value
        duplicate.max_value = self.max_value
        return duplicate

    # -- queries ---------------------------------------------------------

    def mean(self):
        """Exact mean, or 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p):
        """Nearest-rank percentile reported as its bucket upper bound.

        Same convention as :meth:`repro.obs.metrics.Histogram.percentile`
        (conservative for latency: true value is at most one bucket
        width -- <= 6.25% -- below).  Empty sketches report 0.
        """
        if self.count == 0:
            return 0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = min(int(self.count * p / 100.0), self.count - 1)
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return bucket_bounds(index)[1]
        raise AssertionError("unreachable: rank below total count")

    # -- canonical serialization ----------------------------------------

    def to_compact(self):
        """Delta-encoded JSON-safe form.

        ``b`` holds the first bucket index followed by the gaps between
        consecutive occupied indices (always positive, usually small --
        cheaper in JSON than absolute indices); ``c`` the matching
        counts.  Sorting makes the encoding a pure function of the
        multiset, which is what makes merged documents byte-comparable.
        """
        indices = sorted(self.buckets)
        deltas = []
        previous = 0
        for position, index in enumerate(indices):
            deltas.append(index if position == 0 else index - previous)
            previous = index
        return {
            "b": deltas,
            "c": [self.buckets[index] for index in indices],
            "n": self.count,
            "s": self.total,
            "lo": self.min_value,
            "hi": self.max_value,
        }

    @classmethod
    def from_compact(cls, data, name="sketch"):
        """Rebuild a sketch from :meth:`to_compact` output."""
        sketch = cls(name)
        index = 0
        for position, delta in enumerate(data["b"]):
            index = delta if position == 0 else index + delta
            sketch.buckets[index] = data["c"][position]
        sketch.count = data["n"]
        sketch.total = data["s"]
        sketch.min_value = data["lo"]
        sketch.max_value = data["hi"]
        return sketch

    def to_bytes(self):
        """Canonical bytes: identical multiset => identical bytes."""
        return json.dumps(self.to_compact(), sort_keys=True,
                          separators=(",", ":")).encode()

    def __len__(self):
        return self.count

    def __repr__(self):
        return "QuantileSketch(name=%r, count=%d, buckets=%d)" % (
            self.name, self.count, len(self.buckets))


def merge_all(sketches, name="merged"):
    """Merge an iterable of sketches into a fresh one."""
    merged = QuantileSketch(name)
    for sketch in sketches:
        merged.merge(sketch)
    return merged
