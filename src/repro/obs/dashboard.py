"""Dashboard renderers for telemetry snapshots: terminal and HTML.

Both renderers are pure functions of a
:meth:`~repro.obs.telemetry.TelemetryPipeline.snapshot` dict, so the
``repro watch`` live view, the ``--html`` export, and the tests all
consume the same data and stay in lockstep.  The HTML export is fully
self-contained (inline CSS + inline SVG, zero external assets or
scripts) so the file can be attached to a bug report or served by the
future serving layer (ROADMAP item 5) as-is.
"""

import html

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=60):
    """Unicode sparkline of ``values``, resampled to ``width`` cells."""
    if not values:
        return ""
    if len(values) > width:
        # Max-pool each cell so spikes survive the resample.
        factor = -(-len(values) // width)
        values = [max(values[i:i + factor])
                  for i in range(0, len(values), factor)]
    top = max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    scale = len(_SPARKS) - 1
    return "".join(_SPARKS[min(scale, int(v * scale / top))]
                   for v in values)


def _column(rows, columns, name):
    index = columns.index(name)
    return [row[index] for row in rows]


def _fmt_us(us):
    if us >= 1_000_000:
        return "%.2fs" % (us / 1_000_000.0)
    if us >= 1_000:
        return "%.1fms" % (us / 1_000.0)
    return "%dus" % us


def render_frame(snapshot, width=78, max_tenants=12, max_events=5):
    """One terminal frame (plain text, no escape codes)."""
    rows = snapshot["rows"]
    columns = snapshot["columns"]
    lines = []
    lines.append("repro telemetry  t=%s  windows=%d  tenants=%d" % (
        _fmt_us(snapshot["now_us"]), len(rows), len(snapshot["tenants"])))
    lines.append("=" * min(width, 78))

    if rows:
        spark_width = min(width - 18, 60)
        for label, name in (("req/win", "requests"),
                            ("p95 us", "p95_us"),
                            ("penalties", "penalties"),
                            ("active set", "active"),
                            ("breached", "breached")):
            series = _column(rows, columns, name)
            lines.append("%-10s %s %8d" % (
                label, sparkline(series, spark_width), series[-1]))
    else:
        lines.append("(no closed windows yet)")

    lines.append("")
    lines.append("%-10s %8s %6s %9s %9s %9s %6s %6s %s" % (
        "tenant", "reqs", "bad", "p50", "p95", "wait95",
        "burn", "long", "slo"))
    for entry in snapshot["tenants"][:max_tenants]:
        lines.append("%-10s %8d %6d %9s %9s %9s %6.2f %6.2f %s" % (
            entry["tenant"], entry["requests"], entry["bad"],
            _fmt_us(entry["p50_us"]), _fmt_us(entry["p95_us"]),
            _fmt_us(entry["wait_p95_us"]),
            entry["burn_short"], entry["burn_long"],
            "BREACH" if entry["breached"] else "ok"))
    hidden = len(snapshot["tenants"]) - max_tenants
    if hidden > 0:
        lines.append("... %d more tenants" % hidden)

    events = snapshot["slo_events"]
    if events:
        lines.append("")
        lines.append("slo events (%d total):" % len(events))
        for event in events[-max_events:]:
            if event["kind"] == "breach":
                lines.append("  %s BREACH %s burn=%.1f/%.1f" % (
                    _fmt_us(event["time_us"]), event["tenant"],
                    event["burn_short"], event["burn_long"]))
            else:
                lines.append("  %s recover %s after %s" % (
                    _fmt_us(event["time_us"]), event["tenant"],
                    _fmt_us(event["breach_us"])))
    return "\n".join(lines)


def _svg_chart(title, values, width=640, height=90, color="#2563eb"):
    """One inline SVG line chart for a numeric series."""
    if not values:
        return ""
    top = max(max(values), 1)
    n = max(len(values) - 1, 1)
    points = " ".join(
        "%.1f,%.1f" % (index * width / n,
                       height - value * (height - 4) / top - 2)
        for index, value in enumerate(values))
    return (
        '<div class="chart"><h3>%s <span>max %s</span></h3>'
        '<svg viewBox="0 0 %d %d" preserveAspectRatio="none">'
        '<polyline fill="none" stroke="%s" stroke-width="1.5" '
        'points="%s"/></svg></div>'
        % (html.escape(title), top, width, height, color, points))


_HTML_STYLE = """
body { font-family: ui-monospace, Menlo, monospace; margin: 2em;
       background: #0b1020; color: #d8e0f0; }
h1 { font-size: 1.2em; } h3 { font-size: 0.9em; margin: 0.4em 0 0.1em; }
h3 span { color: #7a86a8; font-weight: normal; }
svg { width: 100%; height: 90px; background: #121a33;
      border: 1px solid #26304f; }
table { border-collapse: collapse; margin-top: 1em; font-size: 0.85em; }
td, th { border: 1px solid #26304f; padding: 0.25em 0.6em;
         text-align: right; }
th { background: #121a33; } td:first-child { text-align: left; }
.breach { color: #f87171; font-weight: bold; }
.ok { color: #4ade80; } .events { margin-top: 1em; font-size: 0.85em; }
"""


def render_html(snapshot, title="repro telemetry"):
    """Self-contained HTML dashboard for a telemetry snapshot."""
    rows = snapshot["rows"]
    columns = snapshot["columns"]
    charts = []
    if rows:
        for label, name in (("requests / window", "requests"),
                            ("p95 latency (us)", "p95_us"),
                            ("penalty deliveries", "penalties"),
                            ("manager events", "events"),
                            ("active pBoxes", "active"),
                            ("tenants in breach", "breached")):
            charts.append(_svg_chart(label, _column(rows, columns, name)))

    tenant_rows = []
    for entry in snapshot["tenants"]:
        state = ('<span class="breach">BREACH</span>'
                 if entry["breached"] else '<span class="ok">ok</span>')
        tenant_rows.append(
            "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td>"
            "<td>%s</td><td>%s</td><td>%.2f</td><td>%.2f</td>"
            "<td>%s</td></tr>"
            % (html.escape(entry["tenant"]), entry["requests"],
               entry["bad"], _fmt_us(entry["p50_us"]),
               _fmt_us(entry["p95_us"]), _fmt_us(entry["wait_p95_us"]),
               entry["burn_short"], entry["burn_long"], state))

    event_items = []
    for event in snapshot["slo_events"]:
        if event["kind"] == "breach":
            event_items.append(
                "<li>%s <b class=\"breach\">BREACH</b> %s "
                "(burn %.1f short / %.1f long)</li>"
                % (_fmt_us(event["time_us"]),
                   html.escape(event["tenant"]),
                   event["burn_short"], event["burn_long"]))
        else:
            event_items.append(
                "<li>%s <b class=\"ok\">recover</b> %s after %s</li>"
                % (_fmt_us(event["time_us"]),
                   html.escape(event["tenant"]),
                   _fmt_us(event["breach_us"])))

    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        "<title>%(title)s</title><style>%(style)s</style></head><body>"
        "<h1>%(title)s &mdash; t=%(now)s, %(windows)d windows, "
        "%(tenants)d tenants</h1>"
        "%(charts)s"
        "<table><tr><th>tenant</th><th>requests</th><th>bad</th>"
        "<th>p50</th><th>p95</th><th>wait p95</th><th>burn (short)</th>"
        "<th>burn (long)</th><th>slo</th></tr>%(tenant_rows)s</table>"
        "<div class=\"events\"><b>SLO events</b><ul>%(events)s</ul></div>"
        "</body></html>"
        % {
            "title": html.escape(title),
            "style": _HTML_STYLE,
            "now": _fmt_us(snapshot["now_us"]),
            "windows": len(rows),
            "tenants": len(snapshot["tenants"]),
            "charts": "".join(charts),
            "tenant_rows": "".join(tenant_rows),
            "events": "".join(event_items) or "<li>none</li>",
        })


def write_html(snapshot, path, title="repro telemetry"):
    """Render and write the HTML dashboard; returns ``path``."""
    with open(path, "w") as handle:
        handle.write(render_html(snapshot, title=title))
    return path
