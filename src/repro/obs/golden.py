"""Golden-trace digests: the bit-for-bit determinism regression net.

A golden trace is a compact, committed fingerprint of one case run: the
SHA-256 of the canonically-serialized tracepoint stream, a chain of
rolling checkpoint digests (one every :data:`CHECKPOINT_EVERY` events)
that localizes *where* two runs first diverge, and the run's final
kernel/manager statistics.  The kernel's determinism contract says two
runs of the same (case, solution, seed, duration) produce the same
stream; a kernel change that breaks the contract -- or silently changes
scheduling -- flips the digest, and the checkpoint chain narrows the
divergence to a window of events that a re-run can print.

Canonical serialization rules (``event_line``): field names are sorted,
values are rendered without memory addresses (pBoxes by psid, resource
keys through :func:`~repro.obs.tracepoints.key_label`, enums by name),
so the digest is stable across processes, platforms and Python
versions.
"""

import hashlib

from repro.obs.tracepoints import is_derived, key_label

#: Events per rolling checkpoint in a golden document.
CHECKPOINT_EVERY = 4096

#: Schema version of golden documents (bump when the serialization or
#: the document layout changes; regenerating the corpus is then
#: mandatory).
GOLDEN_SCHEMA = 1


def canonical_names(bus):
    """The bus's tracepoint names minus the derived namespaces."""
    return [name for name in bus.names() if not is_derived(name)]


def canonical_value(value):
    """Render one tracepoint field value deterministically."""
    if value is None:
        return "~"
    if value is True:
        return "T"
    if value is False:
        return "F"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # Floats never feed scheduling, but a few fields carry derived
        # measures; repr is exact for IEEE doubles on every platform.
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_value(part) for part in value) + "]"
    psid = getattr(value, "psid", None)
    if psid is not None:
        return "pbox:%s" % psid
    name = getattr(value, "name", None)
    if name is not None and value.__class__.__module__.startswith("repro.core"):
        # StateEvent and friends: enum members render by name.
        return str(name)
    return key_label(value)


def event_line(name, time_us, fields):
    """One canonical text line for a fired tracepoint."""
    if fields:
        rendered = " ".join(
            "%s=%s" % (key, canonical_value(fields[key]))
            for key in sorted(fields)
        )
        return "%s %d %s" % (name, time_us, rendered)
    return "%s %d" % (name, time_us)


class TraceDigest:
    """Tracepoint subscriber computing a rolling SHA-256 of the stream.

    Subscribe with ``bus.subscribe_all(digest)``; afterwards
    :meth:`document` returns the JSON-safe golden payload.  The
    ``checkpoints`` list holds the running digest after every
    :data:`CHECKPOINT_EVERY` events, so two documents can be compared
    block by block to find the first divergent window.
    """

    def __init__(self, checkpoint_every=CHECKPOINT_EVERY):
        self.checkpoint_every = checkpoint_every
        self.events = 0
        self.checkpoints = []
        self._sha = hashlib.sha256()

    def __call__(self, name, time_us, fields):
        self._sha.update(event_line(name, time_us, fields).encode())
        self._sha.update(b"\n")
        self.events += 1
        if self.events % self.checkpoint_every == 0:
            self.checkpoints.append(self._sha.hexdigest())

    def attach(self, bus):
        """Subscribe to every *canonical* tracepoint of ``bus``.

        Derived points (``slo.*`` -- fired by observability subscribers,
        not the simulation) are excluded: the canonical stream must be
        identical whether or not telemetry is attached.
        """
        bus.subscribe_all(self, names=canonical_names(bus))
        return self

    def detach(self, bus):
        """Unsubscribe from every tracepoint of ``bus``."""
        bus.unsubscribe_all(self)

    def digest_so_far(self):
        """Current rolling digest without finalizing the stream.

        ``hashlib`` digests are non-consuming, so the checkpoint layer
        can fingerprint the stream at a barrier and keep feeding the
        same digest afterwards.
        """
        return self._sha.hexdigest()

    def document(self, stats=None):
        """JSON-safe golden payload for this stream."""
        return {
            "schema": GOLDEN_SCHEMA,
            "events": self.events,
            "digest": self._sha.hexdigest(),
            "checkpoint_every": self.checkpoint_every,
            "checkpoints": list(self.checkpoints),
            "stats": stats if stats is not None else {},
        }


class WindowRecorder:
    """Record the raw event lines of one checkpoint window.

    Used when a golden comparison fails: re-running the case with a
    recorder scoped to the first divergent window turns an opaque
    digest mismatch into the actual events around the divergence.
    """

    def __init__(self, start_event, count=CHECKPOINT_EVERY):
        self.start_event = start_event
        self.count = count
        self.lines = []
        self._seen = 0

    def __call__(self, name, time_us, fields):
        index = self._seen
        self._seen += 1
        if self.start_event <= index < self.start_event + self.count:
            self.lines.append("%7d  %s" % (index, event_line(name, time_us,
                                                             fields)))

    def attach(self, bus):
        bus.subscribe_all(self, names=canonical_names(bus))
        return self


def first_divergence(expected, actual):
    """Index of the first divergent checkpoint window, or None.

    Compares two golden documents' checkpoint chains; returns the
    0-based window index where they first differ (so events
    ``[index * checkpoint_every, (index + 1) * checkpoint_every)`` are
    the first window containing a divergent event).  ``None`` means the
    documents match.
    """
    if expected["digest"] == actual["digest"] \
            and expected["events"] == actual["events"] \
            and expected.get("stats") == actual.get("stats"):
        return None
    exp = expected.get("checkpoints", [])
    act = actual.get("checkpoints", [])
    for index, (have, want) in enumerate(zip(act, exp)):
        if have != want:
            return index
    # All shared checkpoints match: the divergence is in the tail
    # window after the last common checkpoint.
    return min(len(exp), len(act))


def run_golden_case(case_id, duration_s, seed, observer=None,
                    manager_factory=None, driver=None, sched=None):
    """Run ``case_id`` under pBox with a digest attached; returns a doc.

    The canonical golden parameters live with the corpus
    (``tests/golden``); this helper only fixes the solution (pBox, the
    full pipeline) and the digest wiring so the regeneration tool and
    the test suite produce identical documents.  ``manager_factory``
    and ``driver`` pass through to
    :func:`~repro.cases.base.run_case` -- the sharded-manager
    equivalence suite replays the corpus through a facade, and the
    checkpoint layer replaces the single ``kernel.run`` call with a
    stepped loop that pauses at barriers; both assert the digests do
    not move.
    """
    from repro.cases import Solution, get_case, run_case
    from repro.sim.thread import reset_thread_ids

    # Thread ids are allocated from a process-global counter; without a
    # reset, a golden run's tids (and thus its digest) would depend on
    # which runs preceded it in the same process.
    reset_thread_ids()
    digest = TraceDigest()

    def _observer(env):
        digest.attach(env.kernel.trace)
        if observer is not None:
            observer(env)

    run = run_case(get_case(case_id), Solution.PBOX, seed=seed,
                   duration_s=duration_s, observer=_observer,
                   manager_factory=manager_factory, driver=driver,
                   sched=sched)
    return digest.document(stats=golden_stats(run))


def golden_stats(run):
    """The final-state slice of a :class:`CaseRun` a golden doc pins."""
    kernel = run.env.kernel
    return {
        "kernel": dict(kernel.stats),
        "manager": dict(run.manager.stats),
        "victim_mean_us": round(run.victim_mean_us, 6),
        "victim_p95_us": run.victim_p95_us,
        "final_time_us": kernel.now_us,
        "threads": len(kernel.threads),
    }
