"""Virtual-time flame profiles from recorded spans.

Turns a :class:`~repro.obs.spans.SpanRecorder` run into the two
interchange formats the profiling ecosystem already understands, plus a
self-contained HTML summary:

- **folded stacks** (``frame;frame;frame weight`` lines), directly
  consumable by Brendan Gregg's ``flamegraph.pl``;
- **speedscope JSON** (the ``"sampled"`` profile type, weights in
  virtual microseconds), loadable at speedscope.app;
- **HTML**: one dependency-free page with the heaviest stacks as
  horizontal bars and, when supplied, the contention attribution
  summary next to them.

Stack model.  Thread tracks fold as ``thread;state[;detail]`` --
``running``, ``wait;futex:<key>``, ``wait;sleep``, ``penalty`` -- and
pBox lanes as ``pbox:<label>;activity[;defer:<key>|hold:<key>]``.
Because a folded line's weight is *self* time, activity spans have the
time of their nested defer/hold children subtracted (the span recorder
emits them well-nested: defer and hold windows always sit inside an
activity window).
"""

import html as _html
import json

from repro.obs.spans import PBOX_TRACK, THREAD_TRACK

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


class FoldedProfile:
    """A weighted multiset of call stacks in virtual microseconds."""

    def __init__(self, name="repro profile"):
        self.name = name
        self.weights = {}   # tuple(frame, ...) -> weight_us

    def add(self, frames, weight_us):
        """Add ``weight_us`` to the stack ``frames`` (an iterable)."""
        if weight_us <= 0:
            return
        stack = tuple(frames)
        if not stack:
            return
        self.weights[stack] = self.weights.get(stack, 0) + weight_us

    def total_us(self):
        """Sum of all stack weights."""
        return sum(self.weights.values())

    def stacks(self):
        """``[(frames, weight_us)]`` sorted heaviest-first, then by name."""
        return sorted(self.weights.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- construction -----------------------------------------------------

    @classmethod
    def from_recorder(cls, recorder, name="repro profile"):
        """Fold a :class:`SpanRecorder`'s spans into a profile."""
        profile = cls(name=name)
        pbox_children = {}   # psid -> child span time inside activities
        pbox_activity = {}   # psid -> total activity time
        for track, tid, span_name, cat, _start, dur, _args in recorder.spans:
            if dur <= 0:
                continue
            if track == THREAD_TRACK:
                profile.add(cls._thread_stack(recorder, tid, span_name, cat),
                            dur)
            elif track == PBOX_TRACK:
                label = "pbox:%d" % tid
                if span_name == "activity":
                    pbox_activity[tid] = pbox_activity.get(tid, 0) + dur
                elif span_name == "penalty":
                    profile.add((label, "penalty"), dur)
                else:
                    # defer:<key>, hold:<key>, queued:<pool> -- nested
                    # inside an activity window; charge as its child.
                    profile.add((label, "activity", span_name), dur)
                    pbox_children[tid] = pbox_children.get(tid, 0) + dur
        for psid, activity_us in pbox_activity.items():
            self_us = activity_us - pbox_children.get(psid, 0)
            profile.add(("pbox:%d" % psid, "activity"), max(0, self_us))
        return profile

    @staticmethod
    def _thread_stack(recorder, tid, span_name, cat):
        thread = recorder.thread_names.get(tid, "thread-%d" % tid)
        if span_name == "running":
            return (thread, "running")
        if span_name == "pbox penalty":
            return (thread, "penalty")
        if cat in ("futex", "cgroup") or span_name == "sleep":
            return (thread, "wait", span_name)
        return (thread, span_name)

    # -- folded stacks (flamegraph.pl) ------------------------------------

    def folded_lines(self):
        """``"frame;frame weight"`` lines, heaviest stack first."""
        return ["%s %d" % (";".join(frames), weight)
                for frames, weight in self.stacks()]

    def write_folded(self, path):
        """Write flamegraph.pl-compatible folded stacks to ``path``."""
        with open(path, "w") as handle:
            for line in self.folded_lines():
                handle.write(line + "\n")

    # -- speedscope -------------------------------------------------------

    def to_speedscope(self):
        """The profile as a speedscope ``"sampled"`` file (a dict)."""
        frame_index = {}
        frames = []
        samples = []
        weights = []
        for stack, weight in self.stacks():
            indexed = []
            for frame in stack:
                index = frame_index.get(frame)
                if index is None:
                    index = frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                indexed.append(index)
            samples.append(indexed)
            weights.append(weight)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": self.name,
            "exporter": "repro-profile",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": self.name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": self.total_us(),
                "samples": samples,
                "weights": weights,
            }],
        }

    def write_speedscope(self, path):
        """Write the speedscope JSON document to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_speedscope(), handle, indent=1)
            handle.write("\n")

    # -- HTML summary -----------------------------------------------------

    def to_html(self, attribution=None, top=40):
        """Self-contained HTML summary (inline CSS, no scripts).

        ``attribution`` is an optional
        :meth:`AttributionProfiler.to_dict` snapshot rendered alongside
        the heaviest stacks.
        """
        total = self.total_us() or 1
        rows = []
        for frames, weight in self.stacks()[:top]:
            percent = 100.0 * weight / total
            rows.append(
                "<tr><td class=\"bar\"><div style=\"width:%.1f%%\"></div>"
                "</td><td class=\"num\">%.2f ms</td>"
                "<td class=\"num\">%.1f%%</td><td>%s</td></tr>"
                % (percent, weight / 1_000, percent,
                   _html.escape(" &rarr; ".join(frames), quote=False))
            )
        sections = [
            "<h1>%s</h1>" % _html.escape(self.name),
            "<p>%d stacks, %.2f ms of virtual time.</p>"
            % (len(self.weights), self.total_us() / 1_000),
            "<h2>Heaviest stacks</h2>",
            "<table><tr><th></th><th>time</th><th>share</th>"
            "<th>stack</th></tr>%s</table>" % "".join(rows),
        ]
        if attribution:
            sections.append(self._attribution_html(attribution))
        return _HTML_TEMPLATE % {
            "title": _html.escape(self.name),
            "body": "\n".join(sections),
        }

    @staticmethod
    def _attribution_html(attribution):
        rows = []
        for cell in attribution.get("cells", [])[:20]:
            rows.append(
                "<tr><td>%s</td><td>%s</td><td>%s</td>"
                "<td class=\"num\">%.2f ms</td><td class=\"num\">%d</td>"
                "<td class=\"num\">%.2f ms</td><td class=\"num\">%d</td>"
                "</tr>" % (
                    _html.escape(str(cell["aggressor"])),
                    _html.escape(str(cell["resource"])),
                    _html.escape(str(cell["victim"])),
                    cell["blamed_us"] / 1_000, cell["waits"],
                    cell["p95_us"] / 1_000, cell["actions"],
                )
            )
        cycles = attribution.get("cycles", [])
        cycle_html = ("<p>%d wait-for cycle warning(s).</p>" % len(cycles)
                      if cycles else "<p>No wait-for cycles observed.</p>")
        return (
            "<h2>Contention attribution</h2>"
            "<table><tr><th>aggressor</th><th>resource</th><th>victim</th>"
            "<th>blamed</th><th>waits</th><th>p95</th><th>actions</th></tr>"
            "%s</table>%s" % ("".join(rows), cycle_html)
        )

    def write_html(self, path, attribution=None, top=40):
        """Write the HTML summary to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_html(attribution=attribution, top=top))

    def __repr__(self):
        return "FoldedProfile(name=%r, stacks=%d, total_us=%d)" % (
            self.name, len(self.weights), self.total_us()
        )


_HTML_TEMPLATE = """\
<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>%(title)s</title>
<style>
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2em;
       color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; width: 100%%; font-size: 0.85em; }
th, td { text-align: left; padding: 3px 8px;
         border-bottom: 1px solid #e5e5e5; }
td.num { text-align: right; white-space: nowrap; font-variant-numeric:
         tabular-nums; }
td.bar { width: 18%%; min-width: 120px; }
td.bar div { background: #e5703a; height: 11px; border-radius: 2px; }
</style>
</head>
<body>
%(body)s
</body>
</html>
"""
