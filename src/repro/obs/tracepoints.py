"""The tracepoint bus: named, near-free-when-disabled event hooks.

Modeled on kernel tracepoints (``trace_sched_switch`` and friends): a
firing site looks like ::

    tp = kernel.trace.point("sched.switch")   # once, at construction
    ...
    if tp.active:                             # hot path: one attr check
        tp.fire(now_us, tid=thread.tid, core=core.index)

``active`` is a plain boolean attribute maintained by subscribe and
unsubscribe, so a disabled tracepoint costs a single attribute load and
truth test -- the property Figure 16's "overhead when idle" story
depends on.  Keyword fields are only materialized into a dict when at
least one subscriber exists.

Subscribers are callables ``fn(name, time_us, fields)`` where ``fields``
is a dict.  They run synchronously, in firing order, in zero virtual
time; a subscriber must not mutate simulation state.
"""

#: The standard tracepoint catalog: every point the stack fires, with
#: the fields each carries.  ``TracepointBus`` pre-registers these so
#: ``subscribe_all`` and the docs always see the full set.
CATALOG = [
    ("sched.enqueue", "thread becomes runnable (tid, name)"),
    ("sched.switch", "thread begins a CPU slice (tid, name, core, slice_us)"),
    ("sched.switchout", "thread ends a CPU slice (tid, core, ran_us, done)"),
    ("sched.sleep", "timed sleep begins (tid, us)"),
    ("futex.wait", "thread blocks on a futex key (tid, key, waiters, "
                   "holders, holder_psids)"),
    ("futex.wake", "wake-up pops waiters (key, requested, woken, waker)"),
    ("futex.owner_exit", "a thread exited while registered as a key's "
                         "holder; ownership purged (tid, key, holds)"),
    ("fault.inject", "fault injector fires a planned fault (kind, at_us, "
                     "target, param_us)"),
    ("fault.recover", "idle-watchdog repair or deadlock verdict (kind, "
                      "woken)"),
    ("pbox.heal", "manager self-healing event (psid, action, detail)"),
    ("cgroup.throttle", "thread hits its group's CPU quota (group, tid)"),
    ("cgroup.unthrottle", "period refresh releases threads (group, tids)"),
    ("penalty.inject", "resume hook injects a delay (tid, psid, delay_us)"),
    ("pbox.create", "a pBox is created (psid, tid, name)"),
    ("pbox.release", "a pBox is destroyed (psid)"),
    ("pbox.activate", "an activity starts tracing (psid)"),
    ("pbox.freeze", "an activity ends (psid, defer_us, exec_us)"),
    ("pbox.event", "state event reaches the manager (pbox, key, event)"),
    ("pbox.detect", "Algorithm 1 detection (noisy, victim, key, flow)"),
    ("pbox.action", "penalty scheduled (noisy, victim, key, length_us, "
                    "victim_defer_us, flow)"),
    ("pbox.penalty", "penalty delivered (pbox, delay_us, mode, flow)"),
    ("vres.acquire", "app starts acquiring a virtual resource (tid, key)"),
    ("vres.hold", "app holds a virtual resource (tid, key)"),
    ("vres.release", "app releases a virtual resource (tid, key)"),
    ("pool.enqueue", "task enqueued on an event-driven pool (pool, psid)"),
    ("pool.dispatch", "worker picks a task (pool, psid, queued_us)"),
    ("pool.complete", "task finished (pool, psid, service_us)"),
    ("app.note", "application state note (what, plus point-specific fields)"),
    ("req.begin", "client request issued (rid, tid, tenant)"),
    ("req.end", "client request completed (rid, tid, latency_us)"),
    ("req.serve", "pool worker starts serving a request (rid, tid, pool, "
                  "queued_us)"),
    ("req.done", "pool worker finished serving a request (rid, tid, pool, "
                 "service_us)"),
    ("slo.breach", "tenant SLO burn-rate breach -- derived (tenant, "
                   "burn_short, burn_long)"),
    ("slo.recover", "tenant SLO recovered -- derived (tenant, "
                    "burn_short, breach_us)"),
    ("why.explain", "critical-path explanation of an SLO breach -- "
                    "derived (tenant, at_us, top)"),
]

#: Namespaces of *derived* tracepoints: points fired by observability
#: subscribers (the SLO evaluator, the breach explainer) rather than by
#: the simulation itself.  The golden digest excludes them from the
#: canonical stream, so attaching telemetry can never flip a golden
#: trace -- and derived emissions stay consumable by everything else on
#: the bus (chaos invariants, the attribution profiler, ``repro
#: watch``).
DERIVED_PREFIXES = ("slo.", "why.")


def is_derived(name):
    """True when ``name`` is in a derived (non-canonical) namespace."""
    return name.startswith(DERIVED_PREFIXES)


def key_label(key):
    """Human-readable label for a virtual-resource key.

    Resource keys are arbitrary objects: strings, primitives with a
    ``name`` attribute, tuples, or ``None``.  This renders all of them
    without repr noise and is shared by the tracer, the span recorder
    and the exporter.
    """
    if key is None:
        return "<none>"
    if isinstance(key, str):
        return key
    name = getattr(key, "name", None)
    if isinstance(name, str) and name:
        return name
    if isinstance(key, tuple):
        return "(" + ", ".join(key_label(part) for part in key) + ")"
    cls = type(key)
    if cls.__str__ is object.__str__ and cls.__repr__ is object.__repr__:
        # Default repr embeds the memory address, which varies between
        # processes -- labels must be stable for replayed runs to match.
        return "<%s>" % cls.__name__
    return str(key)


class Tracepoint:
    """One named tracepoint.

    ``active`` is public and read by firing sites; it is True exactly
    while at least one subscriber is attached.
    """

    __slots__ = ("name", "active", "_subs")

    def __init__(self, name):
        self.name = name
        self.active = False
        self._subs = []

    def subscribe(self, fn):
        """Attach ``fn(name, time_us, fields)``; enables the point."""
        self._subs.append(fn)
        self.active = True
        return fn

    def unsubscribe(self, fn):
        """Detach ``fn``; disables the point when no subscriber remains."""
        try:
            self._subs.remove(fn)
        except ValueError:
            pass
        self.active = bool(self._subs)

    @property
    def subscriber_count(self):
        """Number of attached subscribers."""
        return len(self._subs)

    def fire(self, time_us, **fields):
        """Dispatch one occurrence to every subscriber."""
        for fn in self._subs:
            fn(self.name, time_us, fields)

    def __bool__(self):
        return self.active

    def __repr__(self):
        return "Tracepoint(name=%r, active=%s, subscribers=%d)" % (
            self.name, self.active, len(self._subs)
        )


class TracepointBus:
    """Registry of tracepoints for one kernel instance.

    The standard catalog is pre-registered at construction; additional
    points may be created lazily with :meth:`point` (application models
    are free to define their own).
    """

    def __init__(self):
        self._points = {}
        for name, _desc in CATALOG:
            self._points[name] = Tracepoint(name)

    def point(self, name):
        """Get (or lazily create) the tracepoint called ``name``."""
        tp = self._points.get(name)
        if tp is None:
            tp = Tracepoint(name)
            self._points[name] = tp
        return tp

    def names(self):
        """Sorted names of every registered tracepoint."""
        return sorted(self._points)

    def enabled(self, name):
        """True while ``name`` has at least one subscriber."""
        tp = self._points.get(name)
        return tp is not None and tp.active

    def subscribe(self, name, fn):
        """Subscribe ``fn`` to one tracepoint by name."""
        self.point(name).subscribe(fn)
        return fn

    def unsubscribe(self, name, fn):
        """Remove ``fn`` from one tracepoint by name."""
        tp = self._points.get(name)
        if tp is not None:
            tp.unsubscribe(fn)

    def subscribe_all(self, fn, names=None):
        """Subscribe ``fn`` to every (or the given) registered points."""
        for name in (names if names is not None else list(self._points)):
            self.point(name).subscribe(fn)
        return fn

    def unsubscribe_all(self, fn, names=None):
        """Remove ``fn`` wherever it is subscribed."""
        for name in (names if names is not None else list(self._points)):
            self.unsubscribe(name, fn)

    def __repr__(self):
        active = sum(1 for tp in self._points.values() if tp.active)
        return "TracepointBus(points=%d, active=%d)" % (
            len(self._points), active
        )
