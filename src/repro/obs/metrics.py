"""The unified metrics registry: counters, gauges, latency histograms.

This subsumes the ad-hoc aggregation scattered across the seed repo
(``workloads.stats`` kept raw sample lists, ``core.trace`` kept
Counters): every layer now records into one
:class:`MetricsRegistry`, and the ``python -m repro metrics`` command
and ``report.py`` read the same registry.

The histogram is HDR-style: log-bucketed with 16 linear sub-buckets per
power of two, so any recorded value lands in a bucket whose width is at
most 1/16 (6.25%) of its magnitude.  Buckets are indexed by a pure
function of the value, which makes histograms mergeable by adding
bucket counts -- the property needed to combine per-client or per-run
histograms without keeping raw samples.
"""

import json

_SUB_BITS = 4
_SUB = 1 << _SUB_BITS  # 16 linear sub-buckets per power of two


def bucket_index(value):
    """Histogram bucket index for a non-negative value."""
    value = int(value)
    if value < 0:
        value = 0
    if value < _SUB:
        return value
    shift = value.bit_length() - (_SUB_BITS + 1)
    return ((shift + 1) << _SUB_BITS) + ((value >> shift) - _SUB)


def bucket_bounds(index):
    """Half-open value range ``[lo, hi)`` covered by a bucket index."""
    if index < _SUB:
        return (index, index + 1)
    shift = (index >> _SUB_BITS) - 1
    mantissa = (index & (_SUB - 1)) + _SUB
    return (mantissa << shift, (mantissa + 1) << shift)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        """Add ``n`` (default 1)."""
        self.value += n

    def merge(self, other):
        """Fold another counter's value in."""
        self.value += other.value

    def __repr__(self):
        return "Counter(name=%r, value=%d)" % (self.name, self.value)


class Gauge:
    """A point-in-time value, with the max it ever reached."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, value):
        """Set the current value."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta):
        """Adjust the current value by ``delta``."""
        self.set(self.value + delta)

    def merge(self, other):
        """Fold another gauge in (sums values, maxes the maxima)."""
        self.value += other.value
        self.max_value = max(self.max_value, other.max_value)

    def __repr__(self):
        return "Gauge(name=%r, value=%s, max=%s)" % (
            self.name, self.value, self.max_value
        )


class Histogram:
    """Mergeable log-bucketed histogram of non-negative values.

    Bucket boundaries are fixed (a pure function of the value), so two
    histograms -- from different clients, runs, or shards -- merge by
    adding bucket counts.  Exact count/sum/min/max are kept alongside
    the buckets.
    """

    __slots__ = ("name", "buckets", "count", "total", "min_value",
                 "max_value")

    def __init__(self, name):
        self.name = name
        self.buckets = {}
        self.count = 0
        self.total = 0
        self.min_value = None
        self.max_value = None

    def record(self, value):
        """Record one value."""
        value = int(value)
        if value < 0:
            value = 0
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values):
        """Record an iterable of values."""
        for value in values:
            self.record(value)

    def merge(self, other):
        """Fold another histogram's buckets and totals in."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        for bound in (other.min_value,):
            if bound is not None and (self.min_value is None
                                      or bound < self.min_value):
                self.min_value = bound
        for bound in (other.max_value,):
            if bound is not None and (self.max_value is None
                                      or bound > self.max_value):
                self.max_value = bound

    def mean(self):
        """Exact mean of recorded values."""
        if self.count == 0:
            raise ValueError("histogram %r is empty" % self.name)
        return self.total / self.count

    def percentile_bounds(self, p):
        """Bucket ``[lo, hi)`` containing the ``p``-th percentile.

        Uses the same nearest-rank convention as
        :func:`repro.workloads.stats.percentile`, so the exact
        percentile of the recorded multiset always falls inside the
        returned bounds.
        """
        if self.count == 0:
            raise ValueError("histogram %r is empty" % self.name)
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = min(int(self.count * p / 100.0), self.count - 1)
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return bucket_bounds(index)
        raise AssertionError("unreachable: rank below total count")

    def percentile(self, p):
        """The ``p``-th percentile, reported as its bucket upper bound.

        The true value is below this by at most one bucket width
        (<= 6.25% relative), a conservative convention for latency.
        """
        return self.percentile_bounds(p)[1]

    def __repr__(self):
        return "Histogram(name=%r, count=%d)" % (self.name, self.count)


class MetricsRegistry:
    """Named counters, gauges and histograms for one run.

    Accessors are get-or-create, so producers never need to declare
    metrics up front, and consumers can iterate everything that was
    actually recorded.
    """

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        """Get or create the counter called ``name``."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def inc(self, name, n=1):
        """Shorthand: increment a counter."""
        self.counter(name).inc(n)

    def gauge(self, name):
        """Get or create the gauge called ``name``."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        """Get or create the histogram called ``name``."""
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def merge(self, other):
        """Fold another registry in (shared names merge pairwise)."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)

    # -- serialization ---------------------------------------------------

    def to_dict(self):
        """JSON-serializable snapshot of every metric."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: [g.value, g.max_value]
                       for n, g in self.gauges.items()},
            "histograms": {
                n: {
                    "buckets": {str(i): c for i, c in h.buckets.items()},
                    "count": h.count,
                    "total": h.total,
                    "min": h.min_value,
                    "max": h.max_value,
                }
                for n, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, (value, max_value) in data.get("gauges", {}).items():
            gauge = registry.gauge(name)
            gauge.value = value
            gauge.max_value = max_value
        for name, spec in data.get("histograms", {}).items():
            histogram = registry.histogram(name)
            histogram.buckets = {int(i): c
                                 for i, c in spec["buckets"].items()}
            histogram.count = spec["count"]
            histogram.total = spec["total"]
            histogram.min_value = spec["min"]
            histogram.max_value = spec["max"]
        return registry

    def save_json(self, path):
        """Write the snapshot as JSON; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load_json(cls, path):
        """Read a snapshot previously written by :meth:`save_json`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- rendering -------------------------------------------------------

    def format_table(self):
        """Tab-separated rows (``report.py`` renders these as markdown)."""
        lines = ["metric\tkind\tcount\tvalue/p50\tp95\tp99\tmax"]
        for name in sorted(self.counters):
            lines.append("%s\tcounter\t\t%d\t\t\t"
                         % (name, self.counters[name].value))
        for name in sorted(self.gauges):
            gauge = self.gauges[name]
            lines.append("%s\tgauge\t\t%s\t\t\t%s"
                         % (name, gauge.value, gauge.max_value))
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count == 0:
                lines.append("%s\thistogram\t0\t\t\t\t" % name)
                continue
            lines.append("%s\thistogram\t%d\t%d\t%d\t%d\t%d" % (
                name, histogram.count, histogram.percentile(50),
                histogram.percentile(95), histogram.percentile(99),
                histogram.max_value,
            ))
        return lines

    def format_report(self):
        """Human-readable summary for the CLI."""
        lines = ["metrics registry", "================"]
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append("  %-36s %d" % (name,
                                             self.counters[name].value))
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                gauge = self.gauges[name]
                lines.append("  %-36s %s (max %s)"
                             % (name, gauge.value, gauge.max_value))
        if self.histograms:
            lines.append("latency histograms (us):")
            lines.append("  %-30s %8s %8s %8s %8s %8s"
                         % ("name", "count", "p50", "p95", "p99", "max"))
            for name in sorted(self.histograms):
                histogram = self.histograms[name]
                if histogram.count == 0:
                    continue
                lines.append("  %-30s %8d %8d %8d %8d %8d" % (
                    name, histogram.count, histogram.percentile(50),
                    histogram.percentile(95), histogram.percentile(99),
                    histogram.max_value,
                ))
        if len(lines) == 2:
            lines.append("(empty)")
        return "\n".join(lines)


class MetricsCollector:
    """Bus subscriber that populates standard metrics from tracepoints.

    One collector drives one registry; attach it to a kernel's bus and
    every layer's activity lands in named metrics:

    - counters: context switches, futex waits/wakes, throttles, pBox
      state events by kind, detections, actions, penalties, app notes;
    - gauges: live pBoxes (with high-water mark);
    - histograms: futex/sleep/throttle wait times, penalty delays,
      per-activity defer and exec times, pool queueing delay.
    """

    def __init__(self, registry=None):
        self.registry = registry or MetricsRegistry()
        self._bus = None
        self._wait_since = {}   # tid -> (kind, start_us)

    def attach(self, bus):
        """Subscribe to every relevant tracepoint; returns ``self``."""
        handlers = {
            "sched.switch": self._on_switch,
            "sched.enqueue": self._on_enqueue,
            "sched.sleep": self._on_sleep,
            "futex.wait": self._on_futex_wait,
            "futex.wake": self._on_futex_wake,
            "cgroup.throttle": self._on_throttle,
            "cgroup.unthrottle": self._on_unthrottle,
            "penalty.inject": self._on_penalty_inject,
            "pbox.create": self._on_pbox_create,
            "pbox.release": self._on_pbox_release,
            "pbox.event": self._on_pbox_event,
            "pbox.detect": self._on_detect,
            "pbox.action": self._on_action,
            "pbox.penalty": self._on_penalty,
            "pbox.freeze": self._on_freeze,
            "pool.enqueue": self._on_pool_enqueue,
            "pool.dispatch": self._on_pool_dispatch,
            "app.note": self._on_app_note,
        }
        self._handlers = handlers
        for name, handler in handlers.items():
            bus.subscribe(name, handler)
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe from the bus."""
        if self._bus is None:
            return
        for name, handler in self._handlers.items():
            self._bus.unsubscribe(name, handler)
        self._bus = None

    # -- handlers --------------------------------------------------------

    def _on_switch(self, _name, _t, _f):
        self.registry.inc("sched.context_switches")

    def _on_enqueue(self, _name, now, fields):
        waited = self._wait_since.pop(fields["tid"], None)
        if waited is not None:
            kind, start = waited
            self.registry.histogram("%s_us" % kind).record(now - start)

    def _on_sleep(self, _name, now, fields):
        self._wait_since[fields["tid"]] = ("sched.sleep", now)

    def _on_futex_wait(self, _name, now, fields):
        self.registry.inc("futex.waits")
        self._wait_since[fields["tid"]] = ("futex.wait", now)

    def _on_futex_wake(self, _name, _t, fields):
        self.registry.inc("futex.wakes")
        self.registry.inc("futex.woken", len(fields["woken"]))

    def _on_throttle(self, _name, now, fields):
        self.registry.inc("cgroup.throttles")
        self._wait_since[fields["tid"]] = ("cgroup.throttled", now)

    def _on_unthrottle(self, _name, now, fields):
        for tid in fields["tids"]:
            waited = self._wait_since.pop(tid, None)
            if waited is not None:
                self.registry.histogram("cgroup.throttled_us").record(
                    now - waited[1]
                )

    def _on_penalty_inject(self, _name, _t, fields):
        self.registry.inc("penalty.injections")
        self.registry.histogram("penalty.injected_us").record(
            fields["delay_us"]
        )

    def _on_pbox_create(self, _name, _t, _f):
        self.registry.inc("pbox.created")
        self.registry.gauge("pbox.live").add(1)

    def _on_pbox_release(self, _name, _t, _f):
        self.registry.gauge("pbox.live").add(-1)

    def _on_pbox_event(self, _name, _t, fields):
        self.registry.inc("pbox.events.%s" % fields["event"].value)

    def _on_detect(self, _name, _t, _f):
        self.registry.inc("pbox.detections")

    def _on_action(self, _name, _t, fields):
        self.registry.inc("pbox.actions")
        self.registry.histogram("pbox.penalty_length_us").record(
            fields["length_us"]
        )

    def _on_penalty(self, _name, _t, fields):
        self.registry.inc("pbox.penalties_served")
        self.registry.histogram("pbox.penalty_served_us").record(
            fields["delay_us"]
        )

    def _on_freeze(self, _name, _t, fields):
        if "defer_us" in fields:
            self.registry.histogram("pbox.activity_defer_us").record(
                fields["defer_us"]
            )
            self.registry.histogram("pbox.activity_exec_us").record(
                fields["exec_us"]
            )

    def _on_pool_enqueue(self, _name, _t, fields):
        self.registry.inc("pool.enqueued")
        depth = fields.get("depth")
        if depth is not None:
            self.registry.gauge("pool.queue_depth").set(depth)

    def _on_pool_dispatch(self, _name, _t, fields):
        self.registry.inc("pool.dispatched")
        self.registry.histogram("pool.queue_delay_us").record(
            fields["queued_us"]
        )

    def _on_app_note(self, _name, _t, fields):
        self.registry.inc("app.%s" % fields["what"])
