"""Chrome trace-event (Perfetto-compatible) JSON export.

Serializes a :class:`~repro.obs.spans.SpanRecorder` into the JSON
object format of the Chrome trace-event spec, which ``ui.perfetto.dev``
(and ``chrome://tracing``) load directly:

- process 1 ("threads") carries one track per simulated thread;
- process 2 ("pBoxes") carries one lane per pBox id;
- spans are ``"X"`` complete events (``ts``/``dur`` in microseconds of
  *virtual* time), instants are ``"i"`` events;
- each detection -> penalty causality link is a flow event pair
  (``"s"``/``"f"`` with a shared ``id``).

``validate_chrome_trace`` checks the invariants the format requires; it
is used by the test suite and the ``make verify`` smoke target.
"""

import json

THREADS_PID = 1
PBOXES_PID = 2

_TRACK_PIDS = {"thread": THREADS_PID, "pbox": PBOXES_PID}


def _clean_args(args):
    if not args:
        return {}
    return {key: value for key, value in args.items() if value is not None}


def chrome_trace_events(recorder):
    """Flatten a SpanRecorder into a list of trace-event dicts."""
    events = []

    # Metadata: name the two processes and every known track.
    for pid, label in ((THREADS_PID, "threads"), (PBOXES_PID, "pBoxes")):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    for tid, name in sorted(recorder.thread_names.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": THREADS_PID,
                       "tid": tid, "args": {"name": name}})
    for psid in sorted(recorder.pbox_ids):
        events.append({"ph": "M", "name": "thread_name", "pid": PBOXES_PID,
                       "tid": psid, "args": {"name": "pbox %d" % psid}})

    for track, tid, name, cat, start, dur, args in recorder.spans:
        events.append({"ph": "X", "name": name, "cat": cat,
                       "pid": _TRACK_PIDS[track], "tid": tid,
                       "ts": start, "dur": dur, "args": _clean_args(args)})
    for track, tid, name, cat, ts, args in recorder.instants:
        events.append({"ph": "i", "s": "t", "name": name, "cat": cat,
                       "pid": _TRACK_PIDS[track], "tid": tid,
                       "ts": ts, "args": _clean_args(args)})

    paired = recorder.paired_flows()
    for track, tid, flow, ts in recorder.flow_starts:
        if flow not in paired:
            continue
        events.append({"ph": "s", "name": "detection->penalty",
                       "cat": "pbox-flow", "id": flow,
                       "pid": _TRACK_PIDS[track], "tid": tid, "ts": ts})
    for track, tid, flow, ts in recorder.flow_ends:
        if flow not in paired:
            continue
        events.append({"ph": "f", "bp": "e", "name": "detection->penalty",
                       "cat": "pbox-flow", "id": flow,
                       "pid": _TRACK_PIDS[track], "tid": tid, "ts": ts})
    return events


def chrome_trace(recorder, case_id=None):
    """The full trace-event JSON object for one recorded run."""
    other = {"source": "pBox reproduction (python -m repro trace)",
             "clock": "virtual microseconds"}
    if case_id is not None:
        other["case"] = case_id
    if recorder.truncated:
        other["truncated"] = ("event cap reached; tail of the run "
                              "was not recorded")
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(recorder, path, case_id=None):
    """Serialize the recorder to ``path``; returns ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(recorder, case_id=case_id), handle)
        handle.write("\n")
    return path


def validate_chrome_trace(obj):
    """Validate a trace-event JSON object; returns summary statistics.

    Raises :class:`ValueError` on the first violation.  Checks the
    fields Perfetto's legacy JSON importer requires: every event has
    ``ph``/``pid``/``tid``, non-metadata events carry a numeric ``ts``,
    ``X`` events carry a non-negative ``dur``, and every flow-finish
    ``id`` has a matching flow-start.
    """
    if isinstance(obj, list):
        events = obj
    elif isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("traceEvents must be a list")
    else:
        raise ValueError("trace must be a JSON object or array")
    counts = {}
    flow_starts = set()
    flow_ends = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError("event %d is not an object" % index)
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError("event %d lacks ph" % index)
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError("event %d lacks integer %s" % (index, field))
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError("event %d lacks numeric ts" % index)
            if not isinstance(event.get("name"), str):
                raise ValueError("event %d lacks name" % index)
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError("event %d: X needs non-negative dur" % index)
        if ph in ("s", "f"):
            if "id" not in event:
                raise ValueError("event %d: flow event needs id" % index)
            (flow_starts if ph == "s" else flow_ends).add(event["id"])
        counts[ph] = counts.get(ph, 0) + 1
    unmatched = flow_ends - flow_starts
    if unmatched:
        raise ValueError("flow finish without start: %r"
                         % sorted(unmatched)[:5])
    return {
        "events": len(events),
        "by_phase": counts,
        "flows_paired": len(flow_starts & flow_ends),
    }
