"""Per-tenant SLO objectives and multi-window burn-rate alerting.

An :class:`SLObjective` declares what "good" means for one tenant: a
request is *good* when its latency is at or below ``latency_us`` (when
set) **and** its slowdown ratio -- measured latency over the workload's
nominal uncontended latency -- is at or below ``slowdown``.  ``target``
is the fraction of requests that must be good (e.g. 0.95), leaving an
error budget of ``1 - target``.

Alerting follows the SRE multi-window burn-rate recipe: the *burn rate*
of a window is its bad-request fraction divided by the error budget (a
burn of 1.0 exhausts the budget exactly at the target horizon; 2.0
exhausts it twice as fast).  A breach fires only when **both** a short
window (fast signal) and a long window (evidence it is not a blip)
burn above ``threshold``; recovery fires when the short-window burn
falls below ``clear_below``.  Requiring both windows suppresses
one-window noise without giving up responsiveness -- the short window
gates how fast an alert can clear, the long window how easily one bad
burst can raise it.

The evaluator is driven by the telemetry pipeline once per closed
virtual-time window, so its behavior is a pure function of the
simulated run: deterministic, replayable, and cheap (a ring buffer sum
per tenant per window).
"""


class SLObjective:
    """What "good" means for one tenant's requests."""

    __slots__ = ("latency_us", "slowdown", "target")

    def __init__(self, latency_us=None, slowdown=None, target=0.95):
        if latency_us is None and slowdown is None:
            raise ValueError("objective needs latency_us and/or slowdown")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.latency_us = latency_us
        self.slowdown = slowdown
        self.target = target

    @property
    def error_budget(self):
        """Allowed bad-request fraction (``1 - target``)."""
        return 1.0 - self.target

    def is_good(self, latency_us, slowdown=None):
        """True when a request meets every configured bound."""
        if self.latency_us is not None and latency_us > self.latency_us:
            return False
        if self.slowdown is not None and slowdown is not None \
                and slowdown > self.slowdown:
            return False
        return True

    def to_dict(self):
        return {"latency_us": self.latency_us, "slowdown": self.slowdown,
                "target": self.target}

    def __repr__(self):
        return "SLObjective(latency_us=%r, slowdown=%r, target=%r)" % (
            self.latency_us, self.slowdown, self.target)


class BurnRatePolicy:
    """Window counts and thresholds for breach/recover decisions."""

    __slots__ = ("short_windows", "long_windows", "threshold",
                 "clear_below")

    def __init__(self, short_windows=5, long_windows=30, threshold=2.0,
                 clear_below=1.0):
        if short_windows < 1 or long_windows < short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")
        if clear_below > threshold:
            raise ValueError("clear_below must not exceed threshold")
        self.short_windows = short_windows
        self.long_windows = long_windows
        self.threshold = threshold
        self.clear_below = clear_below

    def to_dict(self):
        return {"short_windows": self.short_windows,
                "long_windows": self.long_windows,
                "threshold": self.threshold,
                "clear_below": self.clear_below}


class _TenantState:
    """Ring buffer of (good, bad) per window plus the breach latch."""

    __slots__ = ("rows", "breached", "breached_since_us")

    def __init__(self):
        self.rows = []            # newest last: (good, bad) per window
        self.breached = False
        self.breached_since_us = None

    def push(self, good, bad, capacity):
        self.rows.append((good, bad))
        if len(self.rows) > capacity:
            del self.rows[:len(self.rows) - capacity]

    def burn_rate(self, windows, error_budget):
        """Burn rate over the newest ``windows`` rows (0.0 when idle)."""
        good = bad = 0
        for row_good, row_bad in self.rows[-windows:]:
            good += row_good
            bad += row_bad
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / error_budget


class SLOEvaluator:
    """Window-driven breach/recover state machine over all tenants.

    Feed one ``observe_window`` call per tenant per closed window; each
    call returns a list of event dicts (possibly empty) describing the
    transitions to emit.  The caller owns turning those into
    ``slo.breach`` / ``slo.recover`` tracepoint firings.
    """

    def __init__(self, objectives, default=None, policy=None):
        #: tenant -> SLObjective; ``default`` covers unlisted tenants.
        self.objectives = dict(objectives or {})
        self.default = default
        self.policy = policy or BurnRatePolicy()
        self._states = {}

    def objective_for(self, tenant):
        """The objective governing ``tenant`` (or None: unmonitored)."""
        return self.objectives.get(tenant, self.default)

    def observe_window(self, tenant, good, bad, now_us):
        """Account one closed window; returns transition event dicts."""
        objective = self.objective_for(tenant)
        if objective is None:
            return []
        state = self._states.get(tenant)
        if state is None:
            state = self._states[tenant] = _TenantState()
        state.push(good, bad, self.policy.long_windows)

        budget = objective.error_budget
        short = state.burn_rate(self.policy.short_windows, budget)
        long_ = state.burn_rate(self.policy.long_windows, budget)

        events = []
        if not state.breached:
            if short >= self.policy.threshold \
                    and long_ >= self.policy.threshold:
                state.breached = True
                state.breached_since_us = now_us
                events.append({
                    "kind": "breach", "tenant": tenant, "time_us": now_us,
                    "burn_short": round(short, 4),
                    "burn_long": round(long_, 4),
                })
        else:
            if short < self.policy.clear_below:
                duration = now_us - state.breached_since_us
                state.breached = False
                state.breached_since_us = None
                events.append({
                    "kind": "recover", "tenant": tenant, "time_us": now_us,
                    "burn_short": round(short, 4),
                    "breach_us": duration,
                })
        return events

    def breached_tenants(self):
        """Sorted tenants currently latched in breach."""
        return sorted(tenant for tenant, state in self._states.items()
                      if state.breached)

    def burn_rates(self, tenant):
        """(short, long) burn rates for ``tenant`` right now."""
        objective = self.objective_for(tenant)
        state = self._states.get(tenant)
        if objective is None or state is None:
            return (0.0, 0.0)
        budget = objective.error_budget
        return (state.burn_rate(self.policy.short_windows, budget),
                state.burn_rate(self.policy.long_windows, budget))
