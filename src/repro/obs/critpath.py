"""Per-request causal tracing: critical-path latency decomposition.

The tracepoint bus already carries everything needed to explain one
request's latency -- it just arrives interleaved across every thread in
the run.  :class:`CritPathTracer` is a pure bus subscriber that
reconstructs each traced request's timeline between its ``req.begin``
and ``req.end`` events and decomposes the latency into an
*exactly-summing* set of segments:

============  =========================================================
``oncpu``     CPU slices (``sched.switch`` -> ``sched.switchout``)
``runnable``  run-queue wait (``sched.enqueue``/requeue -> switch)
``lock``      blocked on a futex (``futex.wait`` -> wakeup), blamed on
              the holders' pBoxes registered at wait start
``pool_queue``the share of a lock wait spent queued on an event-driven
              pool (from the worker's ``req.serve`` report)
``sleep``     timed sleeps inside the request window (e.g. a baseline
              policy's admission-control stall)
``throttle``  parked on a cgroup quota (``cgroup.throttle`` ->
              ``cgroup.unthrottle``)
``penalty``   pBox penalty delays (``penalty.inject`` -> resume)
============  =========================================================

The sum identity is structural, not approximate: the tracer shifts a
per-thread state at every event and charges ``now - state_since`` to
the outgoing state's bucket, so the buckets telescope to exactly
``end - begin`` -- the same two ``Now()`` readings the latency recorder
samples.  ``pool_queue`` is carved out of ``lock`` after the fact
(sum-preserving), since the client spends that time blocked on the task
futex while the pool holds the work.

Like the attribution profiler, the attached cost is kept off the hot
path: recorder closures append flat tuples for *live* request threads
only (one set lookup per scheduler event) and the analysis replays the
log lazily on first query.  Detached cost is the usual one ``active``
check per firing site.
"""

import heapq
import json

from repro.obs.tracepoints import key_label

#: Aggressor label when a lock wait had no identifiable holder.
UNKNOWN = "<unknown>"

#: Segment kinds, in display order.
SEGMENTS = ("oncpu", "runnable", "lock", "pool_queue", "sleep",
            "throttle", "penalty")

#: Cap on per-request segments kept while in flight; beyond it only the
#: bucket sums keep growing (the sum identity never degrades).
MAX_LIVE_SEGMENTS = 512

#: Segments retained per completed request (longest first).
KEPT_SEGMENTS = 12


class RequestTrace:
    """One completed request's decomposed timeline."""

    __slots__ = ("rid", "tid", "tenant", "begin_us", "end_us",
                 "latency_us", "buckets", "lock_blame", "segments",
                 "dropped_segments", "penalty_psids")

    def __init__(self, rid, tid, tenant, begin_us, end_us, buckets,
                 lock_blame, segments, dropped_segments, penalty_psids):
        self.rid = rid
        self.tid = tid
        self.tenant = tenant
        self.begin_us = begin_us
        self.end_us = end_us
        self.latency_us = end_us - begin_us
        self.buckets = buckets              # {segment kind: us}
        self.lock_blame = lock_blame        # {(psid|UNKNOWN, key): us}
        self.segments = segments            # [(kind, start, dur, detail)]
        self.dropped_segments = dropped_segments
        self.penalty_psids = penalty_psids  # {psid|None: us}

    def dominant(self):
        """``(kind, us)`` of the largest bucket (ties: SEGMENTS order)."""
        best = SEGMENTS[0]
        for kind in SEGMENTS:
            if self.buckets[kind] > self.buckets[best]:
                best = kind
        return best, self.buckets[best]

    def critical_path(self, top=KEPT_SEGMENTS):
        """Longest retained segments, descending by duration."""
        ordered = sorted(self.segments, key=lambda seg: (-seg[2], seg[1]))
        return ordered[:top]

    def to_dict(self):
        """JSON-serializable form (WHY.json rows)."""
        blame = [
            {"holder": holder, "resource": resource, "us": us}
            for (holder, resource), us in sorted(
                self.lock_blame.items(),
                key=lambda item: (-item[1], str(item[0])))
        ]
        return {
            "rid": self.rid,
            "tid": self.tid,
            "tenant": self.tenant,
            "begin_us": self.begin_us,
            "latency_us": self.latency_us,
            "buckets": {kind: self.buckets[kind] for kind in SEGMENTS},
            "lock_blame": blame,
            "critical_path": [
                {"kind": kind, "start_us": start, "dur_us": dur,
                 "detail": detail}
                for kind, start, dur, detail in self.critical_path()
            ],
            "dropped_segments": self.dropped_segments,
        }

    def __repr__(self):
        kind, us = self.dominant()
        return "RequestTrace(rid=%d, tenant=%r, latency_us=%d, %s=%d)" % (
            self.rid, self.tenant, self.latency_us, kind, us,
        )


class _LiveRequest:
    """Replay-side state for one in-flight request."""

    __slots__ = ("rid", "tid", "tenant", "begin_us", "state",
                 "state_since", "buckets", "lock_blame", "segments",
                 "dropped_segments", "lock_key", "lock_holders",
                 "pool_queued_us", "penalty_psids", "detail")

    def __init__(self, rid, tid, tenant, begin_us):
        self.rid = rid
        self.tid = tid
        self.tenant = tenant
        self.begin_us = begin_us
        # Between two events the thread body runs synchronously in zero
        # virtual time, so the zero-width initial state is arbitrary;
        # oncpu keeps any assumption-breaking gap visible as CPU time.
        self.state = "oncpu"
        self.state_since = begin_us
        self.buckets = dict.fromkeys(SEGMENTS, 0)
        self.lock_blame = {}
        self.segments = []
        self.dropped_segments = 0
        self.lock_key = None
        self.lock_holders = ()
        self.pool_queued_us = 0
        self.penalty_psids = {}
        self.detail = None


class CritPathTracer:
    """Reconstructs per-request critical paths from the tracepoint bus.

    Parameters
    ----------
    slowest:
        Slowest requests retained per tenant (a min-heap by latency).
    recent:
        Most recent completions retained per tenant, for breach-window
        explanations (:meth:`explain`).
    """

    def __init__(self, slowest=32, recent=64):
        self.slowest_k = slowest
        self.recent_k = recent
        self._pending = []         # raw record log, tag-first tuples
        self._live_tids = set()    # record-time filter for sched events
        self._rid_tid = {}         # replay: rid -> tid (pool joins)
        self._live = {}            # replay: tid -> _LiveRequest
        self._slowest = {}         # tenant -> [(latency, seq, trace)]
        self._recent = {}          # tenant -> [trace, ...] ring
        self._totals = {}          # tenant -> {kind: us}
        self._counts = {}          # tenant -> completed count
        self._dropped = 0          # completions evicted from retention
        self._seq = 0
        self._pbox_names = {}      # psid -> display name
        self._key_labels = {}
        self._recorders = None
        self._bus = None
        self._replay = {
            "req.begin": self._replay_begin,
            "req.end": self._replay_end,
            "req.serve": self._replay_serve,
            "sched.enqueue": self._replay_enqueue,
            "sched.switch": self._replay_switch,
            "sched.switchout": self._replay_switchout,
            "sched.sleep": self._replay_sleep,
            "futex.wait": self._replay_futex_wait,
            "cgroup.throttle": self._replay_throttle,
            "cgroup.unthrottle": self._replay_unthrottle,
            "penalty.inject": self._replay_penalty,
            "pbox.create": self._replay_pbox_create,
        }

    # -- wiring ----------------------------------------------------------

    def attach(self, bus):
        """Subscribe to every tracepoint this tracer understands."""
        if self._recorders is None:
            self._recorders = self._make_recorders()
        for name, recorder in self._recorders.items():
            bus.subscribe(name, recorder)
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe (the recorded log stays queryable)."""
        if self._bus is None:
            return
        for name, recorder in self._recorders.items():
            self._bus.unsubscribe(name, recorder)
        self._bus = None

    def _make_recorders(self):
        """Fire-time recorder closures: the entire attached cost.

        Scheduler points fire for every thread in the run; the ``tid in
        live`` set test keeps the log (and the append cost) proportional
        to traced-request activity, not total activity.  Records are
        flat tuples of atomics -- cheap to append, invisible to the
        cyclic GC (see the attribution profiler for the long form of
        this argument).
        """
        append = self._pending.append
        live = self._live_tids
        labels = self._key_labels

        def record_begin(_name, now, fields, append=append, live=live):
            tid = fields["tid"]
            live.add(tid)
            append(("req.begin", now, fields["rid"], tid,
                    fields["tenant"]))

        def record_end(_name, now, fields, append=append, live=live):
            tid = fields["tid"]
            live.discard(tid)
            append(("req.end", now, fields["rid"], tid))

        def record_serve(_name, now, fields, append=append):
            append(("req.serve", now, fields["rid"],
                    fields["queued_us"]))

        def record_tid(name, now, fields, append=append, live=live):
            tid = fields["tid"]
            if tid in live:
                append((name, now, tid))

        def record_switchout(_name, now, fields, append=append, live=live):
            tid = fields["tid"]
            if tid in live:
                append(("sched.switchout", now, tid, fields["done"]))

        def record_futex_wait(_name, now, fields, append=append, live=live,
                              labels=labels, key_label=key_label):
            tid = fields["tid"]
            if tid not in live:
                return
            key = fields.get("key")
            label = labels.get(key)
            if label is None:
                label = labels[key] = key_label(key)
            psids = fields.get("holder_psids")
            append(("futex.wait", now, tid, label,
                    tuple(psids) if psids else ()))

        def record_unthrottle(_name, now, fields, append=append, live=live):
            tids = [tid for tid in fields["tids"] if tid in live]
            if tids:
                append(("cgroup.unthrottle", now, tuple(tids)))

        def record_penalty(_name, now, fields, append=append, live=live):
            tid = fields["tid"]
            if tid in live:
                append(("penalty.inject", now, tid, fields.get("psid")))

        def record_pbox_create(_name, now, fields, append=append):
            append(("pbox.create", now, fields["psid"],
                    fields.get("name")))

        return {
            "req.begin": record_begin,
            "req.end": record_end,
            "req.serve": record_serve,
            "sched.enqueue": record_tid,
            "sched.switch": record_tid,
            "sched.switchout": record_switchout,
            "sched.sleep": record_tid,
            "futex.wait": record_futex_wait,
            "cgroup.throttle": record_tid,
            "cgroup.unthrottle": record_unthrottle,
            "penalty.inject": record_penalty,
            "pbox.create": record_pbox_create,
        }

    def _drain(self):
        pending = self._pending
        if not pending:
            return
        replay = self._replay
        for rec in pending:
            replay[rec[0]](rec)
        del pending[:]

    # -- replay: the per-thread state machine ----------------------------

    def _shift(self, req, now, new_state, detail=None):
        """Charge time since the last event to the outgoing state."""
        dur = now - req.state_since
        if dur > 0:
            state = req.state
            req.buckets[state] += dur
            if state == "lock":
                holders = req.lock_holders
                blame = req.lock_blame
                if holders:
                    share = dur // len(holders)
                    rem = dur - share * len(holders)
                    for index, psid in enumerate(holders):
                        slot = (psid, req.lock_key)
                        blame[slot] = (blame.get(slot, 0) + share
                                       + (rem if index == 0 else 0))
                else:
                    slot = (UNKNOWN, req.lock_key)
                    blame[slot] = blame.get(slot, 0) + dur
            if len(req.segments) < MAX_LIVE_SEGMENTS:
                req.segments.append((state, req.state_since, dur,
                                     req.detail))
            else:
                req.dropped_segments += 1
        req.state = new_state
        req.state_since = now
        req.detail = detail

    def _replay_begin(self, rec):
        _, now, rid, tid, tenant = rec
        stale = self._live.pop(tid, None)
        if stale is not None:
            # A begin with no matching end (should not happen for the
            # sequential clients); finalize the stale one defensively.
            self._finalize(stale, now)
        self._rid_tid[rid] = tid
        self._live[tid] = _LiveRequest(rid, tid, tenant, now)

    def _replay_end(self, rec):
        _, now, rid, tid = rec
        req = self._live.pop(tid, None)
        self._rid_tid.pop(rid, None)
        if req is None or req.rid != rid:
            return
        self._finalize(req, now)

    def _replay_serve(self, rec):
        _, _now, rid, queued_us = rec
        tid = self._rid_tid.get(rid)
        if tid is None:
            return
        req = self._live.get(tid)
        if req is not None and req.rid == rid:
            req.pool_queued_us += queued_us

    def _replay_enqueue(self, rec):
        req = self._live.get(rec[2])
        if req is not None:
            self._shift(req, rec[1], "runnable")

    def _replay_switch(self, rec):
        req = self._live.get(rec[2])
        if req is not None:
            self._shift(req, rec[1], "oncpu")

    def _replay_switchout(self, rec):
        req = self._live.get(rec[2])
        if req is None:
            return
        # done=False re-queues the thread with no sched.enqueue; done=True
        # resumes the body synchronously (zero-width, any state works).
        self._shift(req, rec[1], "oncpu" if rec[3] else "runnable")

    def _replay_sleep(self, rec):
        req = self._live.get(rec[2])
        if req is not None:
            self._shift(req, rec[1], "sleep")

    def _replay_futex_wait(self, rec):
        _, now, tid, label, psids = rec
        req = self._live.get(tid)
        if req is None:
            return
        self._shift(req, now, "lock", detail=label)
        req.lock_key = label
        req.lock_holders = psids

    def _replay_throttle(self, rec):
        req = self._live.get(rec[2])
        if req is not None:
            self._shift(req, rec[1], "throttle")

    def _replay_unthrottle(self, rec):
        _, now, tids = rec
        for tid in tids:
            req = self._live.get(tid)
            if req is not None:
                self._shift(req, now, "runnable")

    def _replay_penalty(self, rec):
        _, now, tid, psid = rec
        req = self._live.get(tid)
        if req is None:
            return
        self._shift(req, now, "penalty", detail=psid)
        req.penalty_psids[psid] = req.penalty_psids.get(psid, 0)

    def _replay_pbox_create(self, rec):
        _, _now, psid, name = rec
        if name:
            self._pbox_names[psid] = name

    def _finalize(self, req, end_us):
        self._shift(req, end_us, "oncpu")
        buckets = req.buckets
        # Penalty blame: each penalty segment's duration is in the
        # penalty bucket; re-walk retained segments for the per-psid
        # split (exact unless segments were dropped, in which case the
        # bucket total still is).
        for kind, _start, dur, detail in req.segments:
            if kind == "penalty":
                req.penalty_psids[detail] = (
                    req.penalty_psids.get(detail, 0) + dur)
        # Pool queue time is a sub-division of the client's lock wait
        # on the task futex: carve it out, sum-preserving, and move the
        # matching unknown-holder blame to the pool.
        pool_us = min(req.pool_queued_us, buckets["lock"])
        if pool_us > 0:
            buckets["lock"] -= pool_us
            buckets["pool_queue"] += pool_us
            for (holder, resource), us in list(req.lock_blame.items()):
                if holder != UNKNOWN or pool_us <= 0:
                    continue
                take = min(us, pool_us)
                if take == us:
                    del req.lock_blame[(holder, resource)]
                else:
                    req.lock_blame[(holder, resource)] = us - take
                pool_us -= take
        trace = RequestTrace(
            req.rid, req.tid, req.tenant, req.begin_us, end_us,
            buckets, req.lock_blame, req.segments, req.dropped_segments,
            req.penalty_psids,
        )
        self._retain(trace)

    def _retain(self, trace):
        tenant = trace.tenant
        totals = self._totals.get(tenant)
        if totals is None:
            totals = self._totals[tenant] = dict.fromkeys(SEGMENTS, 0)
        for kind in SEGMENTS:
            totals[kind] += trace.buckets[kind]
        self._counts[tenant] = self._counts.get(tenant, 0) + 1
        recent = self._recent.setdefault(tenant, [])
        recent.append(trace)
        if len(recent) > self.recent_k:
            del recent[0]
        heap = self._slowest.setdefault(tenant, [])
        self._seq += 1
        entry = (trace.latency_us, self._seq, trace)
        if len(heap) < self.slowest_k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
            self._dropped += 1
        else:
            self._dropped += 1

    # -- queries ---------------------------------------------------------

    def label(self, holder):
        """Display name for a lock-blame holder (psid or UNKNOWN)."""
        if holder == UNKNOWN or holder is None:
            return UNKNOWN
        name = self._pbox_names.get(holder)
        if name is None:
            return "pbox-%s" % (holder,)
        return "%s (pbox %s)" % (name, holder)

    def completed_count(self, tenant=None):
        """Completed traced requests (optionally one tenant's)."""
        self._drain()
        if tenant is not None:
            return self._counts.get(tenant, 0)
        return sum(self._counts.values())

    def tenants(self):
        """Tenants with at least one completed request, sorted."""
        self._drain()
        return sorted(self._counts)

    def tenant_totals(self):
        """``{tenant: {segment: us, "requests": n}}`` aggregates."""
        self._drain()
        out = {}
        for tenant in sorted(self._totals):
            row = dict(self._totals[tenant])
            row["requests"] = self._counts.get(tenant, 0)
            out[tenant] = row
        return out

    def slowest(self, tenant=None, k=None):
        """Slowest retained requests, descending latency.

        ``tenant=None`` merges every tenant's retained set.
        """
        self._drain()
        entries = []
        for name, heap in sorted(self._slowest.items()):
            if tenant is not None and name != tenant:
                continue
            entries.extend(heap)
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        if k is not None:
            entries = entries[:k]
        return [trace for _latency, _seq, trace in entries]

    def recent(self, tenant, window_us=None, until_us=None):
        """Recent completions for ``tenant`` (optionally a time window)."""
        self._drain()
        traces = list(self._recent.get(tenant, ()))
        if until_us is not None:
            traces = [t for t in traces if t.end_us <= until_us]
        if window_us is not None:
            floor = (until_us if until_us is not None
                     else (traces[-1].end_us if traces else 0)) - window_us
            traces = [t for t in traces if t.end_us > floor]
        return traces

    def explain(self, tenant, until_us=None, window_us=None, top=3):
        """Top breach-window offenders as JSON-safe tuples.

        Returns ``[(rid, latency_us, dominant_kind, dominant_us), ...]``
        for the slowest ``top`` requests the tenant completed in the
        window -- the payload of the derived ``why.explain`` point.
        """
        traces = self.recent(tenant, window_us=window_us, until_us=until_us)
        traces.sort(key=lambda t: (-t.latency_us, t.rid))
        out = []
        for trace in traces[:top]:
            kind, us = trace.dominant()
            out.append((trace.rid, trace.latency_us, kind, us))
        return out

    # -- rendering -------------------------------------------------------

    def format_table(self, slowest=5, tenant=None):
        """Human-readable per-request critical-path table."""
        self._drain()
        lines = ["per-request critical paths", "=========================="]
        traces = self.slowest(tenant=tenant, k=slowest)
        if not traces:
            lines.append("(no completed traced requests)")
            return "\n".join(lines)
        header = "  %-6s %-10s %10s" % ("rid", "tenant", "latency ms")
        for kind in SEGMENTS:
            header += " %10s" % kind
        lines.append(header)
        for trace in traces:
            row = "  %-6d %-10s %10.2f" % (
                trace.rid, trace.tenant, trace.latency_us / 1_000)
            for kind in SEGMENTS:
                row += " %10.2f" % (trace.buckets[kind] / 1_000)
            lines.append(row)
            total = sum(trace.buckets.values())
            check = "ok" if total == trace.latency_us else "MISMATCH"
            top = ", ".join(
                "%s %.2fms%s" % (
                    kind, dur / 1_000,
                    " (%s)" % self._detail_label(kind, detail)
                    if detail is not None else "")
                for kind, _start, dur, detail in trace.critical_path(3))
            lines.append("         path: %s  [sum %s]" % (top or "-", check))
            blame = sorted(trace.lock_blame.items(),
                           key=lambda item: (-item[1], str(item[0])))
            if blame:
                (holder, resource), us = blame[0]
                lines.append("         lock blame: %s via %s (%.2f ms)"
                             % (self.label(holder), resource, us / 1_000))
        lines.append("retained %d of %d completed requests"
                     % (len(self.slowest()), self.completed_count()))
        return "\n".join(lines)

    def _detail_label(self, kind, detail):
        if kind == "lock":
            return detail
        if kind == "penalty":
            return self.label(detail)
        return str(detail)

    def to_json_dict(self, budget_bytes=None, slowest=None):
        """WHY.json document under an optional byte budget.

        The squeeze is deterministic: halve the per-tenant slowest list
        (floor 3) until the serialized document fits, recording what was
        dropped -- the same discipline the telemetry snapshot uses.
        """
        self._drain()
        keep = self.slowest_k if slowest is None else slowest
        while True:
            doc = self._document(keep)
            if budget_bytes is None:
                return doc
            size = len(json.dumps(doc, sort_keys=True,
                                  separators=(",", ":")))
            if size <= budget_bytes or keep <= 3:
                doc["squeezed_to"] = keep
                return doc
            keep = max(3, keep // 2)

    def _document(self, keep):
        tenants = {}
        for tenant in self.tenants():
            traces = self.slowest(tenant=tenant, k=keep)
            totals = dict(self._totals[tenant])
            tenants[tenant] = {
                "requests": self._counts.get(tenant, 0),
                "totals_us": totals,
                "slowest": [trace.to_dict() for trace in traces],
            }
        return {
            "schema": 1,
            "segments": list(SEGMENTS),
            "completed": self.completed_count(),
            "dropped_from_retention": self._dropped,
            "pbox_names": {str(psid): name
                           for psid, name in sorted(self._pbox_names.items())},
            "tenants": tenants,
        }

    def __repr__(self):
        return "CritPathTracer(live=%d, completed=%d, pending=%d)" % (
            len(self._live), sum(self._counts.values()), len(self._pending),
        )
