"""Contention attribution: wait-for graphs and per-pBox blame.

The tracepoint bus (PR 1) says *what happened*; this module answers the
question an operator actually asks during an interference incident:
**which pBox/resource is to blame, and for how much of my victim's
latency?**  Three structures, all maintained online from tracepoints by
:class:`AttributionProfiler`:

- a virtual-time **wait-for graph** over pBoxes and threads, keyed by
  the resource each wait blocks on, with cycle detection surfaced as
  warnings (a transient A-waits-B-waits-A loop is exactly what an
  operator wants flagged before it becomes a deadlock);
- a **blame matrix** attributing every victim wait interval to the
  holder's pBox: one cell per (aggressor pBox, resource, victim pBox)
  with total and p95 blamed time.  Intervals are *split when the holder
  changes mid-wait*, so a wait served by two successive holders charges
  each for its own share;
- **penalty attribution**: Algorithm 1 detections and the penalties
  they cause are folded back into the matrix, so a report can say
  "penalties on X recovered an estimated Y ms of blamed wait"
  (rate-before vs rate-after the first action).

Everything is computed in virtual microseconds and costs nothing when
the profiler is not attached (the usual tracepoint guarantee).
"""

from repro.core.events import StateEvent
from repro.obs.metrics import Histogram
from repro.obs.tracepoints import key_label

#: Enum -> value strings, prebuilt: a dict hit is much cheaper at fire
#: time than the enum's DynamicClassAttribute ``.value`` descriptor.
_EVENT_VALUES = {event: event.value for event in StateEvent}

#: Aggressor label used when no holder or releaser could be identified.
UNKNOWN = "<unknown>"


class WaitForGraph:
    """A directed wait-for graph with online cycle detection.

    Nodes are opaque hashables (the profiler uses ``("pbox", psid)`` and
    ``("thread", tid)``).  An edge ``waiter -> holder`` labeled with a
    resource means "waiter is blocked on resource, currently held by
    holder".  Each edge insertion runs a DFS from the holder back to the
    waiter; a hit records a cycle warning (deduplicated by node set).
    """

    def __init__(self, max_warnings=32):
        self.max_warnings = max_warnings
        self._edges = {}          # waiter -> {holder: (resource, since_us)}
        self.cycle_warnings = []  # [{"nodes", "resources", "at_us"}]
        self._seen_cycles = set()

    def add_wait(self, waiter, holder, resource, now_us):
        """Add (or refresh) the edge ``waiter -> holder``."""
        if waiter == holder:
            return
        self._edges.setdefault(waiter, {})[holder] = (resource, now_us)
        cycle = self._find_cycle(waiter)
        if cycle is not None:
            self._record_cycle(cycle, now_us)

    def clear_waits(self, waiter, resource=None):
        """Drop ``waiter``'s outgoing edges (optionally one resource's)."""
        targets = self._edges.get(waiter)
        if targets is None:
            return
        if resource is None:
            del self._edges[waiter]
            return
        for holder in [h for h, (res, _) in targets.items()
                       if res == resource]:
            del targets[holder]
        if not targets:
            del self._edges[waiter]

    def edges(self):
        """Snapshot: ``[(waiter, holder, resource, since_us), ...]``."""
        out = []
        for waiter, targets in self._edges.items():
            for holder, (resource, since) in targets.items():
                out.append((waiter, holder, resource, since))
        return out

    def waiting_on(self, waiter):
        """Current holders ``waiter`` is blocked behind."""
        return list(self._edges.get(waiter, ()))

    def _find_cycle(self, start):
        """Path ``start -> ... -> start`` following edges, or ``None``."""
        stack = [(start, [start])]
        visited = set()
        while stack:
            node, path = stack.pop()
            for succ in self._edges.get(node, ()):
                if succ == start:
                    return path
                if succ in visited:
                    continue
                visited.add(succ)
                stack.append((succ, path + [succ]))
        return None

    def _record_cycle(self, cycle, now_us):
        signature = frozenset(cycle)
        if signature in self._seen_cycles:
            return
        self._seen_cycles.add(signature)
        if len(self.cycle_warnings) >= self.max_warnings:
            return
        resources = []
        for index, node in enumerate(cycle):
            succ = cycle[(index + 1) % len(cycle)]
            edge = self._edges.get(node, {}).get(succ)
            resources.append(None if edge is None else edge[0])
        self.cycle_warnings.append(
            {"nodes": list(cycle), "resources": resources, "at_us": now_us}
        )

    def __repr__(self):
        return "WaitForGraph(edges=%d, cycles=%d)" % (
            len(self.edges()), len(self.cycle_warnings)
        )


class BlameCell:
    """One (aggressor, resource, victim) cell of the blame matrix."""

    __slots__ = ("aggressor", "resource", "victim", "total_us", "waits",
                 "hist", "actions", "penalty_us")

    def __init__(self, aggressor, resource, victim):
        self.aggressor = aggressor
        self.resource = resource
        self.victim = victim
        self.total_us = 0
        self.waits = 0
        self.hist = Histogram("blame")
        self.actions = 0
        self.penalty_us = 0

    def p95_us(self):
        """p95 of the blamed intervals (bucket upper bound), or 0."""
        if self.hist.count == 0:
            return 0
        return self.hist.percentile(95)

    def __repr__(self):
        return "BlameCell(%r -> %r via %r: %dus/%d waits)" % (
            self.aggressor, self.victim, self.resource,
            self.total_us, self.waits,
        )


class BlameMatrix:
    """Per-(aggressor pBox x resource x victim pBox) interference matrix.

    ``record_wait`` charges one blamed interval; ``record_action``
    registers an Algorithm 1 penalty against the aggressor, which also
    anchors the before/after split used by :meth:`recovered_us`.
    """

    def __init__(self):
        self.cells = {}            # (aggressor, resource, victim) -> cell
        self.unknown_us = 0        # blamed time with no identifiable holder
        self.first_us = None       # observation window bounds
        self.last_us = None
        self._penalty_until = {}   # aggressor -> end of its penalty window
        self._penalty_span = {}    # aggressor -> total penalized time
        self._during_us = {}       # aggressor -> blamed us inside penalties
        self._outside_us = {}      # aggressor -> blamed us outside penalties

    def note_time(self, now_us):
        """Extend the observation window to include ``now_us``."""
        if self.first_us is None or now_us < self.first_us:
            self.first_us = now_us
        if self.last_us is None or now_us > self.last_us:
            self.last_us = now_us

    def cell(self, aggressor, resource, victim):
        """Get or create one cell."""
        slot = (aggressor, resource, victim)
        cell = self.cells.get(slot)
        if cell is None:
            cell = self.cells[slot] = BlameCell(aggressor, resource, victim)
        return cell

    def record_wait(self, aggressor, resource, victim, start_us, end_us):
        """Blame ``victim``'s wait ``[start_us, end_us)`` on ``aggressor``."""
        duration = end_us - start_us
        if duration <= 0:
            return
        self.note_time(start_us)
        self.note_time(end_us)
        cell = self.cell(aggressor, resource, victim)
        cell.total_us += duration
        cell.waits += 1
        cell.hist.record(duration)
        until = self._penalty_until.get(aggressor, 0)
        during = min(duration, max(0, min(end_us, until) - start_us))
        self._during_us[aggressor] = (
            self._during_us.get(aggressor, 0) + during
        )
        self._outside_us[aggressor] = (
            self._outside_us.get(aggressor, 0) + duration - during
        )

    def record_unknown(self, duration_us):
        """Count blamed time whose aggressor could not be identified."""
        if duration_us > 0:
            self.unknown_us += duration_us

    def record_action(self, aggressor, resource, victim, length_us, now_us):
        """Register a penalty action scheduled against ``aggressor``."""
        self.note_time(now_us)
        cell = self.cell(aggressor, resource, victim)
        cell.actions += 1
        cell.penalty_us += length_us

    def record_penalty(self, aggressor, delay_us, now_us):
        """Extend ``aggressor``'s penalty window by a delivered delay.

        Consecutive penalties stack: a delay delivered while a previous
        window is still open extends it rather than overlapping it.
        """
        self.note_time(now_us)
        start = max(now_us, self._penalty_until.get(aggressor, 0))
        self._penalty_until[aggressor] = start + delay_us
        self._penalty_span[aggressor] = (
            self._penalty_span.get(aggressor, 0) + delay_us
        )

    # -- aggregation -----------------------------------------------------

    def rows(self):
        """Cells sorted by total blamed time, descending."""
        return sorted(self.cells.values(),
                      key=lambda cell: (-cell.total_us, str(cell.resource)))

    def total_us(self):
        """Sum of all blamed time (excluding unknown)."""
        return sum(cell.total_us for cell in self.cells.values())

    def victim_total_us(self, victim):
        """All blamed wait time suffered by ``victim``."""
        return sum(cell.total_us for cell in self.cells.values()
                   if cell.victim == victim)

    def aggressor_total_us(self, aggressor):
        """All blamed wait time caused by ``aggressor``."""
        return sum(cell.total_us for cell in self.cells.values()
                   if cell.aggressor == aggressor)

    def aggressor_share(self, victim):
        """``{aggressor: fraction}`` of ``victim``'s blamed wait time."""
        total = self.victim_total_us(victim)
        if total <= 0:
            return {}
        shares = {}
        for cell in self.cells.values():
            if cell.victim == victim:
                shares[cell.aggressor] = (
                    shares.get(cell.aggressor, 0) + cell.total_us
                )
        return {agg: us / total for agg, us in shares.items()}

    def recovered_us(self, aggressor):
        """Estimated blamed wait recovered by penalizing ``aggressor``.

        While the aggressor serves a penalty it cannot hold resources,
        so victims accrue (almost) no blamed wait.  The estimate scales
        the blame accrual rate observed *outside* penalty windows over
        the penalized time and subtracts what little was still blamed
        inside: ``rate_outside * penalized_span - blamed_inside``.
        Returns ``None`` when no penalty was delivered or the
        observation window is degenerate.
        """
        penalized = self._penalty_span.get(aggressor, 0)
        if (penalized <= 0 or self.first_us is None
                or self.last_us is None):
            return None
        span = self.last_us - self.first_us
        outside_span = span - penalized
        if outside_span <= 0:
            return None
        rate = self._outside_us.get(aggressor, 0) / outside_span
        return max(0.0, rate * penalized - self._during_us.get(aggressor, 0))

    def to_dict(self, labels=None):
        """JSON-serializable snapshot (labels map psid -> display name)."""
        labels = labels or {}

        def label(who):
            if who == UNKNOWN:
                return UNKNOWN
            return labels.get(who, "pbox-%s" % (who,))

        cells = []
        for cell in self.rows():
            cells.append({
                "aggressor": label(cell.aggressor),
                "aggressor_psid": (None if cell.aggressor == UNKNOWN
                                   else cell.aggressor),
                "resource": cell.resource,
                "victim": label(cell.victim),
                "victim_psid": cell.victim,
                "blamed_us": cell.total_us,
                "waits": cell.waits,
                "p95_us": cell.p95_us(),
                "actions": cell.actions,
                "penalty_us": cell.penalty_us,
            })
        aggressors = sorted(
            {cell.aggressor for cell in self.cells.values()},
            key=str,
        )
        summary = []
        for aggressor in aggressors:
            recovered = self.recovered_us(aggressor)
            summary.append({
                "aggressor": label(aggressor),
                "aggressor_psid": (None if aggressor == UNKNOWN
                                   else aggressor),
                "blamed_us": self.aggressor_total_us(aggressor),
                "recovered_est_us": recovered,
            })
        return {
            "window_us": [self.first_us, self.last_us],
            "total_blamed_us": self.total_us(),
            "unknown_us": self.unknown_us,
            "cells": cells,
            "aggressors": summary,
        }


class _OpenWait:
    """One victim pBox's in-progress wait on a resource."""

    __slots__ = ("victim", "resource", "start_us", "seg_start_us", "holders")

    def __init__(self, victim, resource, now_us, holders):
        self.victim = victim
        self.resource = resource
        self.start_us = now_us
        self.seg_start_us = now_us
        self.holders = holders     # tuple of psids at segment start


class AttributionProfiler:
    """Bus subscriber maintaining blame matrix + wait-for graphs.

    Attach with :meth:`attach`; everything is rebuilt from tracepoints,
    with no access to kernel or manager internals:

    - pBox-level holder tracking comes from ``pbox.event`` HOLD/UNHOLD;
    - victim waits come from PREPARE -> ENTER windows, split into
      segments whenever the holder set of the contended resource
      changes (so each holder is charged exactly for its tenure);
    - thread-level wait edges come from ``futex.wait`` (which names the
      registered owners of the key) and are cleared on ``futex.wake``;
    - penalties come from ``pbox.detect`` / ``pbox.action`` /
      ``pbox.penalty``.

    Like ``perf record`` / ``perf report``, the attached cost is kept
    off the simulation's critical path: each firing only appends the
    raw record to a log, and the analysis replays the log on the first
    query (any access to :attr:`matrix`, the graphs, :attr:`stats`, or
    a report method).  Replay order equals firing order, so the results
    are identical to online processing.
    """

    def __init__(self, max_cycle_warnings=32):
        self._matrix = BlameMatrix()
        self._pbox_graph = WaitForGraph(max_warnings=max_cycle_warnings)
        self._thread_graph = WaitForGraph(max_warnings=max_cycle_warnings)
        self._pbox_names = {}      # psid -> display name
        self._thread_pbox = {}     # tid -> psid (creation-time binding)
        self._stats = {
            "events": 0,
            "waits_recorded": 0,
            "segments": 0,
            "abandoned_waits": 0,
            "detections": 0,
            "actions": 0,
            "penalties": 0,
            "penalty_us": 0,
            "unknown_thread_waits": 0,
        }
        self._holders = {}         # resource -> {psid: hold count}
        self._last_release = {}    # resource -> (psid, time_us)
        self._open = {}            # (victim psid, resource) -> _OpenWait
        self._pending = []         # raw record log, tag-first tuples
        self._key_labels = {}      # resource key -> cached display label
        self._recorders = None     # built per attach(), see _make_recorders
        self._replay = {
            "pbox.event": self._replay_state_event,
            "futex.wait": self._replay_futex_wait,
            "futex.wake": self._replay_futex_wake,
            "pbox.create": self._replay_create,
            "pbox.release": self._replay_release,
            "pbox.activate": self._replay_activate,
            "pbox.detect": self._replay_detect,
            "pbox.action": self._replay_action,
            "pbox.penalty": self._replay_penalty,
        }
        self._bus = None

    # -- wiring ----------------------------------------------------------

    def attach(self, bus):
        """Subscribe to every tracepoint this profiler understands."""
        if self._recorders is None:
            self._recorders = self._make_recorders()
        for name, recorder in self._recorders.items():
            bus.subscribe(name, recorder)
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe from the bus (the recorded log stays queryable)."""
        if self._bus is None:
            return
        for name, recorder in self._recorders.items():
            self._bus.unsubscribe(name, recorder)
        self._bus = None

    def _make_recorders(self):
        """Build the fire-time recorder closures.

        These are the profiler's entire attached cost, so they are
        tuned hard: locals prebound as default arguments, and every
        high-volume record flattened to a tuple of atomics (ints and
        interned-ish strings).  Flattening matters twice over -- the
        per-fire kwargs dict dies immediately (keeping CPython's dict
        freelist effective), and the retained tuples become invisible
        to the cyclic GC, whose full collections would otherwise crawl
        the whole log.  Rare points just keep their fields dict.
        """
        append = self._pending.append
        labels = self._key_labels

        def record_state_event(_name, now, fields, append=append,
                               labels=labels, values=_EVENT_VALUES,
                               key_label=key_label):
            key = fields.get("key")
            label = labels.get(key)
            if label is None:
                label = labels[key] = key_label(key)
            append(("pbox.event", now, fields["pbox"].psid, label,
                    values[fields["event"]]))

        def record_futex_wait(_name, now, fields, append=append,
                              labels=labels, key_label=key_label):
            key = fields.get("key")
            label = labels.get(key)
            if label is None:
                label = labels[key] = key_label(key)
            holders = fields.get("holders")
            append(("futex.wait", now, fields["tid"], label,
                    tuple(holders) if holders else ()))

        def record_futex_wake(_name, now, fields, append=append):
            woken = fields.get("woken")
            append(("futex.wake", now, tuple(woken) if woken else ()))

        def record_fields(name, now, fields, append=append):
            append((name, now, fields))

        return {
            "pbox.event": record_state_event,
            "futex.wait": record_futex_wait,
            "futex.wake": record_futex_wake,
            "pbox.create": record_fields,
            "pbox.release": record_fields,
            "pbox.activate": record_fields,
            "pbox.detect": record_fields,
            "pbox.action": record_fields,
            "pbox.penalty": record_fields,
        }

    def _drain(self):
        """Replay the raw log through the analysis handlers.

        The log list is cleared in place, never rebound: the recorder
        closures hold a direct reference to its ``append``.
        """
        pending = self._pending
        if not pending:
            return
        replay = self._replay
        for rec in pending:
            replay[rec[0]](rec)
        del pending[:]

    # -- lazily computed views -------------------------------------------

    @property
    def matrix(self):
        """The blame matrix (replays any pending records first)."""
        self._drain()
        return self._matrix

    @property
    def pbox_graph(self):
        """pBox-level wait-for graph (replays pending records first)."""
        self._drain()
        return self._pbox_graph

    @property
    def thread_graph(self):
        """Thread-level wait-for graph (replays pending records first)."""
        self._drain()
        return self._thread_graph

    @property
    def pbox_names(self):
        """``{psid: name}`` seen so far (replays pending records first)."""
        self._drain()
        return self._pbox_names

    @property
    def thread_pbox(self):
        """``{tid: psid}`` creation-time bindings (replays first)."""
        self._drain()
        return self._thread_pbox

    @property
    def stats(self):
        """Event-processing counters (replays pending records first)."""
        self._drain()
        return self._stats

    # -- labels ----------------------------------------------------------

    def label(self, psid):
        """Display name of a pBox (or UNKNOWN)."""
        if psid == UNKNOWN:
            return UNKNOWN
        name = self._pbox_names.get(psid)
        if name is None:
            return "pbox-%s" % (psid,)
        return "%s (pbox %s)" % (name, psid)

    def _node_label(self, node):
        kind, ident = node
        if kind == "pbox":
            return self.label(ident)
        return "thread-%s" % (ident,)

    # -- pBox lifecycle --------------------------------------------------

    def _replay_create(self, rec):
        _, now, fields = rec
        psid = fields["psid"]
        name = fields.get("name")
        if name:
            self._pbox_names[psid] = name
        tid = fields.get("tid")
        if tid is not None:
            self._thread_pbox[tid] = psid
        self._matrix.note_time(now)

    def _replay_release(self, rec):
        _, now, fields = rec
        psid = fields["psid"]
        self._drop_open_waits(psid)
        for holders in self._holders.values():
            holders.pop(psid, None)
        self._pbox_graph.clear_waits(("pbox", psid))
        self._matrix.note_time(now)

    def _replay_activate(self, rec):
        # A pBox starting a new activity is by definition not waiting;
        # mirror the manager's cleanup of stale PREPAREs.
        self._drop_open_waits(rec[2]["psid"])

    def _drop_open_waits(self, psid):
        for slot in [slot for slot in self._open if slot[0] == psid]:
            del self._open[slot]
            self._stats["abandoned_waits"] += 1
        self._pbox_graph.clear_waits(("pbox", psid))

    # -- state events: waits, holds, splitting ---------------------------

    def _replay_state_event(self, rec):
        _, now, psid, resource, event = rec
        self._stats["events"] += 1
        self._matrix.note_time(now)
        if event == "prepare":
            slot = (psid, resource)
            if slot in self._open:
                # Duplicate PREPARE: the matching ENTER was missed.
                del self._open[slot]
                self._stats["abandoned_waits"] += 1
            holders = self._holder_snapshot(resource, exclude=psid)
            self._open[slot] = _OpenWait(psid, resource, now, holders)
            for holder in holders:
                self._pbox_graph.add_wait(("pbox", psid), ("pbox", holder),
                                          resource, now)
        elif event == "enter":
            wait = self._open.pop((psid, resource), None)
            if wait is not None:
                self._close_segment(wait, now)
                self._stats["waits_recorded"] += 1
            self._pbox_graph.clear_waits(("pbox", psid), resource)
        elif event == "hold":
            holders = self._holders.setdefault(resource, {})
            holders[psid] = holders.get(psid, 0) + 1
            self._resegment(resource, now)
        elif event == "unhold":
            holders = self._holders.get(resource)
            if holders and psid in holders:
                holders[psid] -= 1
                if holders[psid] <= 0:
                    del holders[psid]
                if not holders:
                    del self._holders[resource]
            self._last_release[resource] = (psid, now)
            self._resegment(resource, now)

    def _holder_snapshot(self, resource, exclude=None):
        holders = self._holders.get(resource)
        if not holders:
            return ()
        return tuple(psid for psid in holders if psid != exclude)

    def _resegment(self, resource, now):
        """The holder set of ``resource`` changed: split open waits."""
        for wait in self._open.values():
            if wait.resource != resource:
                continue
            self._close_segment(wait, now)
            wait.seg_start_us = now
            wait.holders = self._holder_snapshot(resource,
                                                 exclude=wait.victim)
            for holder in wait.holders:
                self._pbox_graph.add_wait(("pbox", wait.victim),
                                          ("pbox", holder), resource, now)

    def _close_segment(self, wait, now):
        """Attribute one segment of ``wait`` ending at ``now``."""
        duration = now - wait.seg_start_us
        if duration <= 0:
            return
        self._stats["segments"] += 1
        holders = wait.holders
        if holders:
            share = duration / len(holders)
            for holder in holders:
                self._matrix.record_wait(holder, wait.resource, wait.victim,
                                         wait.seg_start_us,
                                         wait.seg_start_us + share)
            return
        releaser = self._last_release.get(wait.resource)
        if releaser is not None and releaser[0] != wait.victim:
            # Nobody holds the resource, but someone released it while
            # (or just before) we waited: the paper's last-releaser rule.
            self._matrix.record_wait(releaser[0], wait.resource, wait.victim,
                                     wait.seg_start_us, now)
        else:
            self._matrix.record_unknown(duration)

    # -- detection / penalty attribution ---------------------------------

    def _replay_detect(self, rec):
        self._stats["detections"] += 1
        self._matrix.note_time(rec[1])

    def _replay_action(self, rec):
        _, now, fields = rec
        self._stats["actions"] += 1
        self._matrix.record_action(
            fields["noisy"].psid, key_label(fields.get("key")),
            fields["victim"].psid, fields["length_us"], now,
        )

    def _replay_penalty(self, rec):
        _, now, fields = rec
        self._stats["penalties"] += 1
        self._stats["penalty_us"] += fields["delay_us"]
        self._matrix.record_penalty(fields["pbox"].psid,
                                    fields["delay_us"], now)

    # -- thread-level wait edges -----------------------------------------

    def _replay_futex_wait(self, rec):
        _, now, tid, resource, holders = rec
        # A thread starting a new wait is no longer in any earlier one
        # (covers wakeups that bypass futex.wake, e.g. timeouts).
        self._thread_graph.clear_waits(("thread", tid))
        if not holders:
            self._stats["unknown_thread_waits"] += 1
            return
        for holder_tid in holders:
            self._thread_graph.add_wait(("thread", tid),
                                        ("thread", holder_tid),
                                        resource, now)

    def _replay_futex_wake(self, rec):
        for tid in rec[2] or ():
            self._thread_graph.clear_waits(("thread", tid))

    # -- reporting -------------------------------------------------------

    def cycle_warnings(self):
        """All recorded wait-for cycles (pBox level, then thread level)."""
        warnings = []
        for graph, level in ((self.pbox_graph, "pbox"),
                             (self.thread_graph, "thread")):
            for warning in graph.cycle_warnings:
                nodes = warning["nodes"]
                warnings.append({
                    "level": level,
                    "at_us": warning["at_us"],
                    "nodes": [self._node_label(node) for node in nodes],
                    "resources": warning["resources"],
                })
        return warnings

    def to_dict(self):
        """JSON-serializable snapshot of everything the profiler knows."""
        labels = {psid: self.label(psid) for psid in self.pbox_names}
        data = self.matrix.to_dict(labels=labels)
        data["cycles"] = self.cycle_warnings()
        data["stats"] = dict(self.stats)
        return data

    def format_report(self, top=20):
        """Human-readable attribution report for the CLI."""
        lines = ["contention attribution", "======================"]
        rows = self.matrix.rows()
        total = self.matrix.total_us()
        if not rows:
            lines.append("(no blamed wait time recorded)")
        else:
            lines.append("blame matrix (top %d of %d cells):"
                         % (min(top, len(rows)), len(rows)))
            lines.append("  %-28s %-26s %-28s %10s %6s %10s %7s %10s" % (
                "aggressor pbox", "resource", "victim pbox",
                "blamed ms", "waits", "p95 ms", "actions", "penalty ms",
            ))
            for cell in rows[:top]:
                lines.append(
                    "  %-28s %-26s %-28s %10.2f %6d %10.2f %7d %10.2f" % (
                        self.label(cell.aggressor), cell.resource,
                        self.label(cell.victim),
                        cell.total_us / 1_000, cell.waits,
                        cell.p95_us() / 1_000, cell.actions,
                        cell.penalty_us / 1_000,
                    )
                )
            lines.append("  total blamed: %.2f ms (+ %.2f ms unattributed)"
                         % (total / 1_000, self.matrix.unknown_us / 1_000))
            aggressors = sorted(
                {cell.aggressor for cell in rows},
                key=lambda agg: -self.matrix.aggressor_total_us(agg),
            )
            lines.append("per-aggressor summary:")
            for aggressor in aggressors:
                blamed = self.matrix.aggressor_total_us(aggressor)
                recovered = self.matrix.recovered_us(aggressor)
                note = ("no penalty taken" if recovered is None
                        else "penalties recovered an estimated %.2f ms "
                             "of blamed wait" % (recovered / 1_000))
                lines.append("  %-28s blamed %10.2f ms   %s"
                             % (self.label(aggressor), blamed / 1_000, note))
        cycles = self.cycle_warnings()
        if cycles:
            lines.append("wait-for cycle warnings:")
            for warning in cycles[:10]:
                lines.append("  [%s @%dus] %s" % (
                    warning["level"], warning["at_us"],
                    " -> ".join(str(n) for n in warning["nodes"]),
                ))
        else:
            lines.append("wait-for graph: no cycles observed")
        return "\n".join(lines)

    def __repr__(self):
        return ("AttributionProfiler(cells=%d, blamed_us=%d, "
                "open_waits=%d)") % (
            len(self.matrix.cells), self.matrix.total_us(), len(self._open),
        )
