"""Always-on per-tenant SLO telemetry over the tracepoint bus.

:class:`TelemetryPipeline` is a pure bus subscriber (it never mutates
simulation state, so an attached pipeline cannot perturb the golden
trace) that maintains three views of a running simulation:

1. **Per-tenant mergeable sketches** -- request latency, slowdown ratio
   (recorded in milli-units: 1000 == nominal speed), and wait time --
   built on :class:`~repro.obs.sketch.QuantileSketch`, so per-shard
   streams combine byte-identically in any merge order (ROADMAP item
   2's requirement).
2. **Fixed-width virtual-time windows** (default 100ms) producing an
   aggregate time-series: throughput, latency percentiles, bad-request
   count, penalty activity, manager event volume, and active-set size.
3. **SLO evaluation** per tenant with multi-window burn-rate alerting
   (:mod:`repro.obs.slo`); transitions fire ``slo.breach`` /
   ``slo.recover`` tracepoints back onto the bus.  Those points are in
   the *derived* namespace, which the golden digest excludes -- the
   canonical stream stays bit-identical whether or not telemetry runs.

Tenant attribution follows thread/pBox names: anything matching
``t<N>-...`` (the scale harness convention) belongs to tenant ``t<N>``;
case runs pass role names (``victim``/``noisy``/``other``) straight
through ``record_request``.

Request latency does not cross the bus at all: recorders call
:meth:`record_request` directly (see ``LatencyRecorder(sink=...)``), so
the canonical tracepoint stream carries zero telemetry traffic.
"""

import json
import re

from repro.obs.sketch import QuantileSketch, merge_all
from repro.obs.slo import SLOEvaluator

#: Schema version of the telemetry document emitted by
#: :meth:`TelemetryPipeline.to_json_dict`.
TELEMETRY_SCHEMA = 1

#: Default virtual-time window width.
WINDOW_US = 100_000

#: Columns of the windowed time-series rows, in row order.
SERIES_COLUMNS = (
    "window",        # window index (start = window * window_us)
    "requests",      # requests completed in the window
    "bad",           # requests violating their tenant's objective
    "p50_us", "p95_us", "p99_us",   # aggregate latency percentiles
    "penalties",     # pbox.penalty deliveries
    "penalty_us",    # total penalty delay delivered
    "events",        # pbox.event volume (manager pipeline pressure)
    "active",        # active-set size (dirty pBoxes this window)
    "breached",      # tenants latched in breach at window close
)

_TENANT_RE = re.compile(r"^(t\d+)-")
_ROLE_RE = re.compile(r"^(victim|noisy|other)")


def tenant_of(name):
    """Tenant owning a thread/pBox ``name`` (None when unattributable).

    Scale-harness names (``t3-oltp``, ``t3-cv7``) map to their tenant
    (``t3``); case-harness names (``victim``, ``noisy-purge``) map to
    their role, matching the role "tenants" the case recorders feed
    through :meth:`TelemetryPipeline.record_request`.
    """
    if not isinstance(name, str):
        return None
    match = _TENANT_RE.match(name)
    if match:
        return match.group(1)
    match = _ROLE_RE.match(name)
    if match:
        return match.group(1)
    return None


class TenantTelemetry:
    """Cumulative sketches and counters for one tenant."""

    __slots__ = ("tenant", "latency", "slowdown", "wait", "requests",
                 "bad", "win_good", "win_bad")

    def __init__(self, tenant):
        self.tenant = tenant
        self.latency = QuantileSketch("latency_us")
        self.slowdown = QuantileSketch("slowdown_milli")
        self.wait = QuantileSketch("wait_us")
        self.requests = 0
        self.bad = 0
        self.win_good = 0   # current-window good/bad, reset at each roll
        self.win_bad = 0

    def to_dict(self):
        """Compact JSON form (sketches delta-encoded)."""
        return {
            "requests": self.requests,
            "bad": self.bad,
            "latency": self.latency.to_compact(),
            "slowdown": self.slowdown.to_compact(),
            "wait": self.wait.to_compact(),
        }


class TelemetryPipeline:
    """The always-on telemetry subscriber for one kernel."""

    def __init__(self, window_us=WINDOW_US, evaluator=None,
                 emit_events=True):
        self.window_us = window_us
        #: SLOEvaluator or None (None: windows and sketches only).
        self.evaluator = evaluator
        #: Fire slo.* tracepoints on transitions (off for overhead A/B).
        self.emit_events = emit_events
        self.tenants = {}            # tenant -> TenantTelemetry
        self.rows = []               # closed windows, SERIES_COLUMNS order
        self.slo_events = []         # transition dicts, in firing order
        self._bus = None
        self._manager = None
        self._handlers = {}
        self._tp_breach = None
        self._tp_recover = None
        self._tid_tenant = {}        # tid -> tenant (from sched.enqueue)
        self._wait_since = {}        # tid -> wait start (futex.wait)
        self._window_end = window_us
        self._last_now = 0
        # Current-window aggregates.
        self._win_latency = QuantileSketch("window_latency_us")
        self._win_bad = 0
        self._win_penalties = 0
        self._win_penalty_us = 0
        self._win_events = 0
        self._win_active = set()

    # -- attachment ------------------------------------------------------

    def attach(self, bus, manager=None):
        """Subscribe to the bus; optionally bind the manager's dirty set.

        With ``manager`` given (a :class:`~repro.core.manager.PBoxManager`
        or the sharded facade), the per-window active-set gauge drains
        the manager's window set (``drain_active()``) -- the same
        psid-marking the dirty-set scan consumes, kept in a separate
        set so the 100ms gauge drain and the detector never steal from
        each other; without a manager, the gauge falls back to the
        pBoxes seen in ``pbox.event`` traffic.
        """
        handlers = {
            "sched.enqueue": self._on_enqueue,
            "futex.wait": self._on_futex_wait,
            "pbox.create": self._on_pbox_create,
            "pbox.event": self._on_pbox_event,
            "pbox.penalty": self._on_penalty,
        }
        for name, handler in handlers.items():
            bus.subscribe(name, handler)
        self._handlers = handlers
        self._bus = bus
        self._manager = manager
        self._tp_breach = bus.point("slo.breach")
        self._tp_recover = bus.point("slo.recover")
        return self

    def detach(self):
        """Unsubscribe every handler (sketches and rows are kept)."""
        if self._bus is None:
            return
        for name, handler in self._handlers.items():
            self._bus.unsubscribe(name, handler)
        self._bus = None

    # -- request path (off-bus, fed by recorder sinks) -------------------

    def record_request(self, tenant, latency_us, now_us, nominal_us=None):
        """Account one completed request for ``tenant``.

        ``nominal_us`` is the workload's expected uncontended latency;
        when given, the slowdown ratio is sketched (milli-units) and the
        tenant's objective may judge the request on slowdown as well as
        absolute latency.
        """
        self._roll(now_us)
        state = self._tenant(tenant)
        state.latency.record(latency_us)
        state.requests += 1
        slowdown = None
        if nominal_us:
            slowdown = latency_us / nominal_us
            state.slowdown.record(int(slowdown * 1000))
        self._win_latency.record(latency_us)

        good = True
        if self.evaluator is not None:
            objective = self.evaluator.objective_for(tenant)
            if objective is not None:
                good = objective.is_good(latency_us, slowdown)
        if good:
            state.win_good += 1
        else:
            state.win_bad += 1
            state.bad += 1
            self._win_bad += 1

    # -- bus handlers ----------------------------------------------------

    def _on_enqueue(self, _name, now, fields):
        self._roll(now)
        tid = fields["tid"]
        if tid not in self._tid_tenant:
            self._tid_tenant[tid] = tenant_of(fields.get("name"))
        start = self._wait_since.pop(tid, None)
        if start is not None:
            tenant = self._tid_tenant.get(tid)
            if tenant is not None:
                self._tenant(tenant).wait.record(now - start)

    def _on_futex_wait(self, _name, now, fields):
        self._roll(now)
        self._wait_since[fields["tid"]] = now

    def _on_pbox_create(self, _name, now, fields):
        self._roll(now)
        tenant = tenant_of(fields.get("name"))
        if tenant is not None:
            # pBoxes inherit their creator's tenant; map the tid too so
            # wait-time attribution covers the pBox-bound thread.
            self._tid_tenant.setdefault(fields["tid"], tenant)

    def _on_pbox_event(self, _name, now, fields):
        self._roll(now)
        self._win_events += 1
        psid = getattr(fields.get("pbox"), "psid", None)
        if psid is not None:
            self._win_active.add(psid)

    def _on_penalty(self, _name, now, fields):
        self._roll(now)
        self._win_penalties += 1
        self._win_penalty_us += fields["delay_us"]

    # -- windowing -------------------------------------------------------

    def _tenant(self, tenant):
        state = self.tenants.get(tenant)
        if state is None:
            state = self.tenants[tenant] = TenantTelemetry(tenant)
        return state

    def _roll(self, now_us):
        """Close every window that ended at or before ``now_us``."""
        if now_us > self._last_now:
            self._last_now = now_us
        while now_us >= self._window_end:
            self._close_window(self._window_end)
            self._window_end += self.window_us

    def _close_window(self, end_us):
        sketch = self._win_latency
        requests = sketch.count
        breach_events = []
        if self.evaluator is not None:
            # Every known tenant gets a window observation -- including
            # idle (0, 0) ones, so burn rates decay over quiet windows.
            for tenant in sorted(self.tenants):
                state = self.tenants[tenant]
                breach_events.extend(self.evaluator.observe_window(
                    tenant, state.win_good, state.win_bad, end_us))
                state.win_good = state.win_bad = 0
        if self._manager is not None:
            active = len(self._manager.drain_active())
        else:
            active = len(self._win_active)
        breached = (len(self.evaluator.breached_tenants())
                    if self.evaluator is not None else 0)
        self.rows.append([
            (end_us - self.window_us) // self.window_us,
            requests,
            self._win_bad,
            sketch.percentile(50), sketch.percentile(95),
            sketch.percentile(99),
            self._win_penalties,
            self._win_penalty_us,
            self._win_events,
            active,
            breached,
        ])
        self._win_latency = QuantileSketch("window_latency_us")
        self._win_bad = 0
        self._win_penalties = 0
        self._win_penalty_us = 0
        self._win_events = 0
        self._win_active = set()
        for event in breach_events:
            self.slo_events.append(event)
            if self.emit_events and self._bus is not None:
                point = (self._tp_breach if event["kind"] == "breach"
                         else self._tp_recover)
                fields = {key: value for key, value in event.items()
                          if key not in ("kind", "time_us")}
                point.fire(event["time_us"], **fields)

    def finalize(self, now_us=None):
        """Close the in-progress window so short runs produce rows."""
        end = now_us if now_us is not None else self._last_now
        if end >= self._window_end or self._win_latency.count \
                or self._win_events:
            self._roll(end)
            if self._win_latency.count or self._win_events \
                    or self._win_penalties:
                self._close_window(self._window_end)
                self._window_end += self.window_us
        return self

    # -- views -----------------------------------------------------------

    def merged_sketch(self, which="latency"):
        """All tenants' ``which`` sketches merged (order-independent)."""
        return merge_all(
            (getattr(self.tenants[tenant], which)
             for tenant in sorted(self.tenants)),
            name="%s.all" % which)

    def snapshot(self):
        """Live view for the dashboard renderers."""
        tenants = []
        for tenant in sorted(self.tenants):
            state = self.tenants[tenant]
            burn_short, burn_long = (
                self.evaluator.burn_rates(tenant)
                if self.evaluator is not None else (0.0, 0.0))
            breached = (self.evaluator is not None
                        and tenant in self.evaluator.breached_tenants())
            tenants.append({
                "tenant": tenant,
                "requests": state.requests,
                "bad": state.bad,
                "p50_us": state.latency.percentile(50),
                "p95_us": state.latency.percentile(95),
                "p99_us": state.latency.percentile(99),
                "wait_p95_us": state.wait.percentile(95),
                "burn_short": round(burn_short, 3),
                "burn_long": round(burn_long, 3),
                "breached": breached,
            })
        return {
            "now_us": self._last_now,
            "window_us": self.window_us,
            "columns": list(SERIES_COLUMNS),
            "rows": [list(row) for row in self.rows],
            "tenants": tenants,
            "slo_events": list(self.slo_events),
        }

    # -- serialization (budgeted) ----------------------------------------

    def to_json_dict(self, budget_bytes=None, max_rows=240,
                     max_tenants=12):
        """Compact JSON document, optionally squeezed under a byte cap.

        Determinism of the squeeze matters as much as the size: the
        document tightens in fixed steps (halve series resolution down
        to 30 rows, then halve detailed-tenant count down to 4, folding
        the rest into a merged ``_other`` entry), so two identical runs
        always serialize identically.  ``dropped`` records what was
        coarsened so readers know the document is a summary.
        """
        while True:
            doc = self._document(max_rows, max_tenants)
            if budget_bytes is None:
                return doc
            size = len(json.dumps(doc, separators=(",", ":")))
            if size <= budget_bytes:
                return doc
            if max_rows > 30:
                max_rows = max(30, max_rows // 2)
            elif max_tenants > 4:
                max_tenants = max(4, max_tenants // 2)
            else:
                # Floor reached: drop per-tenant sketches entirely.
                doc = self._document(max_rows, 0)
                return doc

    def _document(self, max_rows, max_tenants):
        rows = coalesce_rows(self.rows, max_rows)
        ordered = sorted(
            self.tenants,
            key=lambda tenant: (-self.tenants[tenant].requests, tenant))
        detailed = ordered[:max_tenants]
        folded = ordered[max_tenants:]
        tenants_doc = {tenant: self.tenants[tenant].to_dict()
                       for tenant in sorted(detailed)}
        if folded:
            other = TenantTelemetry("_other")
            for tenant in folded:
                state = self.tenants[tenant]
                other.latency.merge(state.latency)
                other.slowdown.merge(state.slowdown)
                other.wait.merge(state.wait)
                other.requests += state.requests
                other.bad += state.bad
            tenants_doc["_other"] = other.to_dict()
            tenants_doc["_other"]["folded"] = len(folded)
        events = self.slo_events[:50]
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_us": self.window_us,
            "windows": {"columns": list(SERIES_COLUMNS), "rows": rows},
            "tenants": tenants_doc,
            "totals": {
                "requests": sum(s.requests for s in self.tenants.values()),
                "bad": sum(s.bad for s in self.tenants.values()),
                "breaches": sum(1 for e in self.slo_events
                                if e["kind"] == "breach"),
                "recovers": sum(1 for e in self.slo_events
                                if e["kind"] == "recover"),
            },
            "slo": {
                "objectives": {
                    tenant: objective.to_dict()
                    for tenant, objective in sorted(
                        self.evaluator.objectives.items())
                } if self.evaluator is not None else {},
                "default": (self.evaluator.default.to_dict()
                            if self.evaluator is not None
                            and self.evaluator.default is not None
                            else None),
                "policy": (self.evaluator.policy.to_dict()
                           if self.evaluator is not None else None),
                "events": events,
            },
            "dropped": {
                "rows_recorded": len(self.rows),
                "rows_kept": len(rows),
                "tenants_recorded": len(self.tenants),
                "tenants_detailed": len(tenants_doc)
                - (1 if folded else 0),
                "slo_events_recorded": len(self.slo_events),
                "slo_events_kept": len(events),
            },
        }


class BreachExplainer:
    """Answers "why did this tenant breach?" the moment it happens.

    A small bridge between the SLO pipeline and the per-request causal
    tracer (:class:`~repro.obs.critpath.CritPathTracer`): on every
    ``slo.breach`` it pulls the tenant's slowest requests completed in
    the breach window and fires a derived ``why.explain`` tracepoint
    carrying their critical-path breakdowns -- JSON-safe tuples of
    ``(rid, latency_us, dominant_segment, dominant_us)``.  Like every
    ``why.*``/``slo.*`` point it is golden-excluded, so wiring the
    explainer cannot perturb a canonical trace.

    Parameters
    ----------
    tracer:
        An attached :class:`~repro.obs.critpath.CritPathTracer`.
    top:
        Requests per explanation (the ISSUE's "top-3").
    window_us:
        Breach window looked at, ending at the breach time; defaults to
        the burn-rate policy's short horizon (3 telemetry windows).
    """

    def __init__(self, tracer, top=3, window_us=3 * WINDOW_US):
        self.tracer = tracer
        self.top = top
        self.window_us = window_us
        self.explanations = []   # [{"tenant", "at_us", "top"}]
        self._bus = None
        self._tp_explain = None

    def attach(self, bus):
        """Subscribe to ``slo.breach``; register the ``why.explain`` point."""
        bus.subscribe("slo.breach", self._on_breach)
        self._tp_explain = bus.point("why.explain")
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe (recorded explanations are kept)."""
        if self._bus is None:
            return
        self._bus.unsubscribe("slo.breach", self._on_breach)
        self._bus = None

    def _on_breach(self, _name, now, fields):
        tenant = fields.get("tenant")
        top = self.tracer.explain(tenant, until_us=now,
                                  window_us=self.window_us, top=self.top)
        record = {"tenant": tenant, "at_us": now,
                  "top": [list(entry) for entry in top]}
        self.explanations.append(record)
        if self._tp_explain is not None and self._tp_explain.active:
            self._tp_explain.fire(now, tenant=tenant, at_us=now,
                                  top=record["top"])

    def __repr__(self):
        return "BreachExplainer(explanations=%d)" % len(self.explanations)


def coalesce_rows(rows, max_rows):
    """Merge adjacent windows until at most ``max_rows`` remain.

    Counts sum; percentiles take the max of the merged windows (the
    conservative direction for latency); ``active``/``breached`` take
    the max; the ``window`` column keeps the first window's index.
    """
    if max_rows <= 0 or len(rows) <= max_rows:
        return [list(row) for row in rows]
    factor = -(-len(rows) // max_rows)  # ceil division
    merged = []
    for start in range(0, len(rows), factor):
        group = rows[start:start + factor]
        row = list(group[0])
        for other in group[1:]:
            row[1] += other[1]    # requests
            row[2] += other[2]    # bad
            row[3] = max(row[3], other[3])   # p50
            row[4] = max(row[4], other[4])   # p95
            row[5] = max(row[5], other[5])   # p99
            row[6] += other[6]    # penalties
            row[7] += other[7]    # penalty_us
            row[8] += other[8]    # events
            row[9] = max(row[9], other[9])   # active
            row[10] = max(row[10], other[10])  # breached
        merged.append(row)
    return merged
