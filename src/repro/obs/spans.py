"""Span reconstruction: from tracepoint firings to timelines.

A :class:`SpanRecorder` subscribes to the tracepoint bus and rebuilds
what a kernel tracer like Perfetto would show for a real run:

- **thread tracks** (one per SimThread): running slices, futex waits,
  timed sleeps, cgroup throttling, injected penalty delays;
- **pBox lanes** (one per psid): activity windows (activate -> freeze),
  per-resource defer and hold spans, detection/action instants, and
  penalty spans;
- **flow events** linking each Algorithm 1 detection to the penalty it
  eventually caused (the manager threads a flow id from ``pbox.detect``
  through ``pbox.action`` to ``pbox.penalty``).

All timestamps are virtual microseconds, which maps 1:1 onto the
Chrome trace-event ``ts`` field (see :mod:`repro.obs.export`).
"""

from repro.obs.tracepoints import key_label

#: Track kinds; the exporter maps these to Chrome pids.
THREAD_TRACK = "thread"
PBOX_TRACK = "pbox"


class SpanRecorder:
    """Rebuilds spans, instants and flows from bus tracepoints.

    Parameters
    ----------
    max_events:
        Hard cap on recorded primitives.  Once reached, recording stops
        and ``truncated`` is set -- the exporter surfaces this rather
        than silently dropping the tail.
    record_slices:
        Record every CPU slice as a span.  Slices dominate event volume
        on long runs; disable to keep only waits/pBox activity.
    """

    def __init__(self, max_events=500_000, record_slices=True):
        self.max_events = max_events
        self.record_slices = record_slices
        self.spans = []        # (track, tid, name, cat, start_us, dur_us, args)
        self.instants = []     # (track, tid, name, cat, ts_us, args)
        self.flow_starts = []  # (track, tid, flow_id, ts_us)
        self.flow_ends = []    # (track, tid, flow_id, ts_us)
        self.thread_names = {}
        self.pbox_ids = set()
        self.truncated = False
        self._bus = None
        self._open = {}        # (track, tid, slot) -> (name, cat, start, args)
        self._seen_flows = set()

    # -- wiring ----------------------------------------------------------

    def attach(self, bus):
        """Subscribe to every tracepoint this recorder understands."""
        handlers = {
            "sched.switch": self._on_switch,
            "sched.switchout": self._on_switchout,
            "sched.enqueue": self._on_enqueue,
            "sched.sleep": self._on_sleep,
            "futex.wait": self._on_futex_wait,
            "cgroup.throttle": self._on_throttle,
            "cgroup.unthrottle": self._on_unthrottle,
            "penalty.inject": self._on_penalty_inject,
            "pbox.create": self._on_pbox_create,
            "pbox.activate": self._on_activate,
            "pbox.freeze": self._on_freeze,
            "pbox.event": self._on_pbox_event,
            "pbox.detect": self._on_detect,
            "pbox.action": self._on_action,
            "pbox.penalty": self._on_penalty,
            "pool.enqueue": self._on_pool_enqueue,
            "pool.dispatch": self._on_pool_dispatch,
            "req.begin": self._on_req_begin,
            "req.end": self._on_req_end,
            "req.serve": self._on_req_serve,
            "req.done": self._on_req_done,
        }
        self._handlers = handlers
        for name, handler in handlers.items():
            bus.subscribe(name, handler)
        self._bus = bus
        return self

    def detach(self):
        """Unsubscribe from the bus."""
        if self._bus is None:
            return
        for name, handler in self._handlers.items():
            self._bus.unsubscribe(name, handler)
        self._bus = None

    @property
    def event_count(self):
        """Total primitives recorded so far."""
        return (len(self.spans) + len(self.instants)
                + len(self.flow_starts) + len(self.flow_ends))

    # -- primitive emission ----------------------------------------------

    def _full(self):
        if self.event_count >= self.max_events:
            self.truncated = True
            return True
        return False

    def _span(self, track, tid, name, cat, start, end, args=None):
        if self._full():
            return
        self.spans.append((track, tid, name, cat, start,
                           max(0, end - start), args))

    def _instant(self, track, tid, name, cat, ts, args=None):
        if self._full():
            return
        self.instants.append((track, tid, name, cat, ts, args))

    def _open_span(self, track, tid, slot, name, cat, start, args=None):
        self._open[(track, tid, slot)] = (name, cat, start, args)

    def _close_span(self, track, tid, slot, end):
        opened = self._open.pop((track, tid, slot), None)
        if opened is None:
            return
        name, cat, start, args = opened
        self._span(track, tid, name, cat, start, end, args)

    def _close_wait(self, tid, end):
        for slot in ("wait",):
            self._close_span(THREAD_TRACK, tid, slot, end)

    # -- scheduler / kernel ----------------------------------------------

    def _on_switch(self, _name, now, fields):
        tid = fields["tid"]
        self.thread_names.setdefault(tid, fields.get("name") or
                                     "thread-%d" % tid)
        if self.record_slices:
            self._open_span(THREAD_TRACK, tid, "run", "running", "sched",
                            now, {"core": fields.get("core")})

    def _on_switchout(self, _name, now, fields):
        self._close_span(THREAD_TRACK, fields["tid"], "run", now)

    def _on_enqueue(self, _name, now, fields):
        self._close_wait(fields["tid"], now)

    def _on_sleep(self, _name, now, fields):
        self._open_span(THREAD_TRACK, fields["tid"], "wait", "sleep",
                        "sched", now, {"us": fields.get("us")})

    def _on_futex_wait(self, _name, now, fields):
        label = "futex:%s" % key_label(fields.get("key"))
        self._open_span(THREAD_TRACK, fields["tid"], "wait", label,
                        "futex", now)

    def _on_throttle(self, _name, now, fields):
        self._open_span(THREAD_TRACK, fields["tid"], "wait",
                        "throttled:%s" % fields.get("group"), "cgroup", now)

    def _on_unthrottle(self, _name, now, fields):
        for tid in fields["tids"]:
            self._close_wait(tid, now)

    def _on_penalty_inject(self, _name, now, fields):
        self._span(THREAD_TRACK, fields["tid"], "pbox penalty", "penalty",
                   now, now + fields["delay_us"],
                   {"psid": fields.get("psid")})

    # -- pBox lanes ------------------------------------------------------

    def _on_pbox_create(self, _name, _now, fields):
        self.pbox_ids.add(fields["psid"])

    def _on_activate(self, _name, now, fields):
        psid = fields["psid"]
        self.pbox_ids.add(psid)
        self._open_span(PBOX_TRACK, psid, "activity", "activity",
                        "pbox", now)

    def _on_freeze(self, _name, now, fields):
        psid = fields["psid"]
        args = {"defer_us": fields.get("defer_us"),
                "exec_us": fields.get("exec_us")}
        opened = self._open.pop((PBOX_TRACK, psid, "activity"), None)
        if opened is None:
            return
        name, cat, start, _ = opened
        self._span(PBOX_TRACK, psid, name, cat, start, now, args)

    def _on_pbox_event(self, _name, now, fields):
        pbox = fields["pbox"]
        psid = pbox.psid
        self.pbox_ids.add(psid)
        event = fields["event"].value
        label = key_label(fields.get("key"))
        if event == "prepare":
            self._open_span(PBOX_TRACK, psid, ("defer", label),
                            "defer:%s" % label, "vres", now)
        elif event == "enter":
            self._close_span(PBOX_TRACK, psid, ("defer", label), now)
        elif event == "hold":
            self._open_span(PBOX_TRACK, psid, ("hold", label),
                            "hold:%s" % label, "vres", now)
        elif event == "unhold":
            self._close_span(PBOX_TRACK, psid, ("hold", label), now)

    def _on_detect(self, _name, now, fields):
        noisy = fields["noisy"]
        victim = fields["victim"]
        args = {"victim": victim.psid, "key": key_label(fields.get("key"))}
        self._instant(PBOX_TRACK, noisy.psid, "detect", "pbox", now, args)
        flow = fields.get("flow")
        if flow is not None and not self._full():
            self.flow_starts.append((PBOX_TRACK, noisy.psid, flow, now))
            self._seen_flows.add(flow)

    def _on_action(self, _name, now, fields):
        noisy = fields["noisy"]
        args = {"victim": fields["victim"].psid,
                "length_us": fields["length_us"],
                "key": key_label(fields.get("key"))}
        self._instant(PBOX_TRACK, noisy.psid, "action", "pbox", now, args)

    def _on_penalty(self, _name, now, fields):
        pbox = fields["pbox"]
        psid = pbox.psid
        delay = fields["delay_us"]
        self._span(PBOX_TRACK, psid, "penalty", "penalty", now,
                   now + delay, {"mode": fields.get("mode")})
        flow = fields.get("flow")
        if flow is not None and flow in self._seen_flows:
            if not self._full():
                self.flow_ends.append((PBOX_TRACK, psid, flow, now))

    # -- event-driven pools ----------------------------------------------

    def _on_pool_enqueue(self, _name, now, fields):
        psid = fields.get("psid")
        if psid is not None and psid >= 0:
            self.pbox_ids.add(psid)
            self._open_span(PBOX_TRACK, psid, "queued",
                            "queued:%s" % fields.get("pool"), "pool", now)

    def _on_pool_dispatch(self, _name, now, fields):
        psid = fields.get("psid")
        if psid is not None and psid >= 0:
            self._close_span(PBOX_TRACK, psid, "queued", now)

    # -- request lanes ---------------------------------------------------

    def _on_req_begin(self, _name, now, fields):
        tid = fields["tid"]
        rid = fields["rid"]
        self._open_span(THREAD_TRACK, tid, "req", "req %d" % rid, "req",
                        now, {"rid": rid, "tenant": fields.get("tenant")})
        # Flow start: paired with the worker-side req.serve when the
        # request runs on an event-driven pool (dedicated-thread
        # requests stay unpaired and are filtered by the exporter).
        if not self._full():
            self.flow_starts.append((THREAD_TRACK, tid, "req-%d" % rid, now))

    def _on_req_end(self, _name, now, fields):
        self._close_span(THREAD_TRACK, fields["tid"], "req", now)

    def _on_req_serve(self, _name, now, fields):
        tid = fields["tid"]
        rid = fields["rid"]
        self._open_span(THREAD_TRACK, tid, ("serve", rid),
                        "serve %d" % rid, "req", now,
                        {"rid": rid, "pool": fields.get("pool"),
                         "queued_us": fields.get("queued_us")})
        if not self._full():
            self.flow_ends.append((THREAD_TRACK, tid, "req-%d" % rid, now))

    def _on_req_done(self, _name, now, fields):
        self._close_span(THREAD_TRACK, fields["tid"],
                         ("serve", fields["rid"]), now)

    # -- introspection ---------------------------------------------------

    def paired_flows(self):
        """Flow ids that have both a start (detect) and an end (penalty)."""
        started = {flow for _, _, flow, _ in self.flow_starts}
        ended = {flow for _, _, flow, _ in self.flow_ends}
        return started & ended

    def __repr__(self):
        return ("SpanRecorder(spans=%d, instants=%d, flows=%d/%d, "
                "truncated=%s)") % (
            len(self.spans), len(self.instants), len(self.flow_starts),
            len(self.flow_ends), self.truncated,
        )
