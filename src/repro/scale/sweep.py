"""The scalability sweep: thread counts -> ``results/SCALE.json``.

Each point builds the multi-tenant scenario twice -- manager enabled
and disabled -- on identical specs, so the manager's detection cost is
the wall-clock delta on the same event stream.  Event volume is the
kernel's timer-arm count (every event loop iteration pops exactly one
armed timer, so arms == events processed up to the handful still
pending at the horizon).

The event budget is constant across points: a 10,000-thread point
simulates a shorter virtual window than a 100-thread point, keeping
every measurement a similar wall-clock size while still holding the
full thread population live in the kernel.
"""

import json
import os
import time

from repro.scale.scenario import ScaleSpec, build_scale_scenario

SCALE_SCHEMA = 1

#: The tentpole sweep: ~100 threads (5 tenants) to 10,000 (500 tenants).
DEFAULT_THREAD_COUNTS = (100, 500, 1000, 2000, 5000, 10000)

#: Docs-CI smoke sweep (REPRO_SMOKE).
SMOKE_THREAD_COUNTS = (100, 400)


def _run_spec(spec):
    """Build + run one spec; returns (wall_s, events, scenario)."""
    scenario = build_scale_scenario(spec)
    kernel = scenario.kernel
    armed_before_run = next(kernel._seq)
    start = time.perf_counter()
    scenario.run()
    wall_s = time.perf_counter() - start
    # Arms during run() plus the build-time arms it consumed; the two
    # next() probes themselves add 2, which is noise at this scale.
    events = next(kernel._seq) - 1
    run_events = events - armed_before_run
    return wall_s, events, run_events, scenario


def measure_scale_point(threads, seed=1, event_budget=250_000, rounds=2):
    """Measure one sweep point; returns a JSON-ready dict.

    The manager's detection cost is a wall-clock subtraction (enabled
    minus disabled run of the identical event stream), so both variants
    run ``rounds`` times interleaved and the minimum wall per variant
    is used -- the standard noise floor for timing on a shared host.
    """
    spec = ScaleSpec(threads, seed=seed, manager_enabled=True,
                     event_budget=event_budget)
    base_spec = ScaleSpec(threads, seed=seed, manager_enabled=False,
                          event_budget=event_budget)
    walls, base_walls = [], []
    for _ in range(max(1, rounds)):
        wall_s, events, run_events, scenario = _run_spec(spec)
        walls.append(wall_s)
        base_wall_s, base_events, _base_run_events, base_scenario = \
            _run_spec(base_spec)
        base_walls.append(base_wall_s)
    wall_s, base_wall_s = min(walls), min(base_walls)
    manager_cost_s = max(0.0, wall_s - base_wall_s)
    manager_stats = dict(scenario.manager.stats)
    return {
        "threads": spec.threads,
        "tenants": spec.tenants,
        "pboxes": 2 * spec.tenants,  # two connection pBoxes per tenant
        "cores": spec.cores,
        "duration_virtual_ms": round(spec.duration_us / 1_000, 3),
        "events": events,
        "run_events": run_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(run_events / wall_s) if wall_s else 0,
        "requests": scenario.total_requests(),
        "manager": {
            "wall_s": round(base_wall_s, 4),
            "detection_cost_s": round(manager_cost_s, 4),
            "cost_per_event_us": round(
                manager_cost_s * 1e6 / run_events, 4) if run_events else 0.0,
            "overhead_frac": round(manager_cost_s / base_wall_s, 4)
            if base_wall_s else 0.0,
            "events": manager_stats.get("events", 0),
            "detections": manager_stats.get("detections", 0),
            "penalties_applied": manager_stats.get("penalties_applied", 0),
        },
        "baseline_requests": base_scenario.total_requests(),
    }


def run_scale_sweep(thread_counts=DEFAULT_THREAD_COUNTS, seed=1,
                    event_budget=250_000, rounds=2, progress=None):
    """Sweep ``thread_counts`` and return the SCALE.json document."""
    points = []
    start = time.perf_counter()
    for threads in thread_counts:
        point = measure_scale_point(threads, seed=seed,
                                    event_budget=event_budget,
                                    rounds=rounds)
        points.append(point)
        if progress is not None:
            progress(point)
    return {
        "schema": SCALE_SCHEMA,
        "seed": seed,
        "event_budget": event_budget,
        "wall_s": round(time.perf_counter() - start, 2),
        "points": points,
    }


def write_scale_json(document, out_path="results/SCALE.json"):
    """Atomically write the sweep document."""
    out_dir = os.path.dirname(out_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    tmp = out_path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, out_path)
    return out_path
