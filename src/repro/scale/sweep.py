"""The scalability sweep: thread counts -> ``results/SCALE.json``.

Each point builds the multi-tenant scenario twice -- manager enabled
and disabled -- on identical specs, so the manager's detection cost is
the wall-clock delta on the same event stream.  Event volume is the
kernel's timer-arm count (every event loop iteration pops exactly one
armed timer, so arms == events processed up to the handful still
pending at the horizon).

The event budget is constant across points: a 10,000-thread point
simulates a shorter virtual window than a 100-thread point, keeping
every measurement a similar wall-clock size while still holding the
full thread population live in the kernel.
"""

import gc
import json
import os
import time

from repro.obs.slo import BurnRatePolicy, SLObjective, SLOEvaluator
from repro.obs.telemetry import TelemetryPipeline
from repro.scale.scenario import ScaleSpec, build_scale_scenario

#: Schema 2 adds the optional per-point ``telemetry`` section
#: (per-tenant sketches + windowed time-series + SLO events) written by
#: ``--telemetry`` runs; schema-1 consumers must treat it as absent.
#: Schema 3 adds the sharded-manager columns to each point's
#: ``manager`` section: ``shards``, ``scans``, ``scanned``, and
#: ``budget_denied`` (see docs/PERFORMANCE.md for the full glossary).
#: Schema 4 adds the scheduler/family axes: top-level ``sched`` and
#: ``families``, plus per-point ``family_requests`` (requests per
#: tenant family, manager-on run); older consumers must treat all
#: three as absent (the report renders them defensively).
SCALE_SCHEMA = 4

#: Field glossary for SCALE.json, mirrored (both directions) by the
#: glossary table in docs/PERFORMANCE.md -- ``tools/check_docs.py``
#: fails when either side drifts.  Keys are field names; values are the
#: one-line meaning the docs table must agree with in spirit (the
#: checker matches names, humans match meanings).
SCALE_FIELDS = {
    # Top-level document keys.
    "schema": "document schema version (see SCALE_SCHEMA)",
    "seed": "kernel RNG seed shared by every point",
    "event_budget": "target kernel events per point",
    "telemetry": "whether points carry a telemetry section",
    "wall_s": "wall seconds: sweep total / enabled run / disabled run",
    "points": "one measurement record per thread count",
    "throughput_guard": "A/B guard snapshot from the benchmark run",
    "sched": "scheduler policy the sweep's kernels ran under",
    "families": "tenant family mix assigned round-robin across tenants",
    # Per-point keys.
    "threads": "total worker threads at this point",
    "tenants": "application instances (threads // workers_per_tenant)",
    "pboxes": "live pBoxes (two connection pBoxes per tenant)",
    "cores": "simulated cores backing the point",
    "duration_virtual_ms": "virtual time simulated, milliseconds",
    "events": "kernel timer arms (per point) / manager state events (in manager)",
    "run_events": "kernel timer arms during run() only",
    "events_per_sec": "run_events / enabled-run wall seconds",
    "requests": "application requests completed (manager on)",
    "baseline_requests": "application requests completed (manager off)",
    "family_requests": "requests completed per tenant family (manager on)",
    "manager": "manager cost breakdown for this point",
    # point["manager"] keys.
    "detection_cost_s": "enabled minus disabled wall seconds (min-of-rounds)",
    "cost_per_event_us": "detection_cost_s spread over run_events, microseconds",
    "overhead_frac": "detection_cost_s / disabled-run wall seconds",
    "detections": "pbox-level detections that found a culprit",
    "penalties_applied": "delay penalties actually delivered",
    "shards": "per-tenant manager shards created",
    "scans": "dirty-set scans executed across shards",
    "scanned": "pBoxes evaluated by those scans",
    "budget_denied": "penalty reservations denied by the shared budget",
}

#: Per-point byte budget for the telemetry section, sized so a full
#: six-point sweep with telemetry stays inside the repo-wide 64 KiB
#: results cap (tools/check_results_size.py) with headroom for the
#: timing fields and the throughput guard snapshot.
TELEMETRY_BUDGET_BYTES = 8 * 1024

#: The tentpole sweep: ~100 threads (5 tenants) to 10,000 (500 tenants).
DEFAULT_THREAD_COUNTS = (100, 500, 1000, 2000, 5000, 10000)

#: Docs-CI smoke sweep (REPRO_SMOKE).
SMOKE_THREAD_COUNTS = (100, 400)


def _run_spec(spec):
    """Build + run one spec; returns (wall_s, events, scenario)."""
    scenario = build_scale_scenario(spec)
    kernel = scenario.kernel
    armed_before_run = next(kernel._seq)
    # The manager-cost number is a subtraction of two timed runs; a
    # collector pause landing in one of them is pure noise.  Collect
    # up front, then keep the GC out of the timed window (virtual-time
    # runs allocate mostly short-lived tuples -- refcounting handles
    # them without cycles piling up).
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    try:
        scenario.run()
    finally:
        wall_s = time.perf_counter() - start
        if gc_was_enabled:
            gc.enable()
    # Arms during run() plus the build-time arms it consumed; the two
    # next() probes themselves add 2, which is noise at this scale.
    events = next(kernel._seq) - 1
    run_events = events - armed_before_run
    return wall_s, events, run_events, scenario


def default_scale_evaluator():
    """The sweep's SLO configuration: slowdown-based, one default.

    Every tenant shares one objective -- at most 10% of requests slower
    than 5x the role's nominal latency -- with a short/long burn-rate
    policy sized to the ~100ms windows of a scale run (a few hundred
    milliseconds of sustained burn to alert, one quiet short-window to
    clear).  At the default sweep parameters this separates tenants:
    heavily contended ones latch into breach while lighter ones stay
    within budget, which is the story the dashboard is for.
    """
    return SLOEvaluator(
        objectives={},
        default=SLObjective(slowdown=5.0, target=0.9),
        policy=BurnRatePolicy(short_windows=3, long_windows=10,
                              threshold=2.0, clear_below=1.0),
    )


def collect_scale_telemetry(threads, seed=1, event_budget=250_000,
                            budget_bytes=TELEMETRY_BUDGET_BYTES,
                            sched="cfs", families=None):
    """One untimed telemetry run of a sweep point; returns the section.

    Telemetry is collected in its own run, *not* during the timed
    rounds: the manager-cost number is a wall-clock subtraction between
    two runs of the identical event stream, and an attached subscriber
    would pollute both sides of that subtraction.  Virtual time is
    deterministic, so the untimed run sees exactly the same simulation
    the timed rounds measured.
    """
    spec = ScaleSpec(threads, seed=seed, manager_enabled=True,
                     event_budget=event_budget, sched=sched,
                     families=families)
    pipeline = TelemetryPipeline(evaluator=default_scale_evaluator())
    scenario = build_scale_scenario(spec, telemetry=pipeline)
    scenario.run()
    return pipeline.to_json_dict(budget_bytes=budget_bytes)


def measure_scale_point(threads, seed=1, event_budget=250_000, rounds=2,
                        telemetry=False, sched="cfs", families=None):
    """Measure one sweep point; returns a JSON-ready dict.

    The manager's detection cost is a wall-clock subtraction (enabled
    minus disabled run of the identical event stream), so both variants
    run ``rounds`` times interleaved and the minimum wall per variant
    is used -- the standard noise floor for timing on a shared host.
    ``telemetry`` adds the per-tenant section from a separate untimed
    run (see :func:`collect_scale_telemetry`).  ``sched`` selects the
    scheduler policy for every kernel of the point; ``families`` the
    tenant family mix (both default to the pre-extension sweep).
    """
    spec = ScaleSpec(threads, seed=seed, manager_enabled=True,
                     event_budget=event_budget, sched=sched,
                     families=families)
    base_spec = ScaleSpec(threads, seed=seed, manager_enabled=False,
                          event_budget=event_budget, sched=sched,
                          families=families)
    walls, base_walls = [], []
    for _ in range(max(1, rounds)):
        wall_s, events, run_events, scenario = _run_spec(spec)
        walls.append(wall_s)
        base_wall_s, base_events, _base_run_events, base_scenario = \
            _run_spec(base_spec)
        base_walls.append(base_wall_s)
    wall_s, base_wall_s = min(walls), min(base_walls)
    manager_cost_s = max(0.0, wall_s - base_wall_s)
    manager_stats = dict(scenario.manager.stats)
    scan_stats = dict(scenario.manager.scan_stats)
    budget = scenario.manager.penalty_budget
    point = {
        "threads": spec.threads,
        "tenants": spec.tenants,
        "pboxes": 2 * spec.tenants,  # two connection pBoxes per tenant
        "cores": spec.cores,
        "duration_virtual_ms": round(spec.duration_us / 1_000, 3),
        "events": events,
        "run_events": run_events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(run_events / wall_s) if wall_s else 0,
        "requests": scenario.total_requests(),
        "family_requests": scenario.requests_by_family(),
        "manager": {
            "wall_s": round(base_wall_s, 4),
            "detection_cost_s": round(manager_cost_s, 4),
            "cost_per_event_us": round(
                manager_cost_s * 1e6 / run_events, 4) if run_events else 0.0,
            "overhead_frac": round(manager_cost_s / base_wall_s, 4)
            if base_wall_s else 0.0,
            "events": manager_stats.get("events", 0),
            "detections": manager_stats.get("detections", 0),
            "penalties_applied": manager_stats.get("penalties_applied", 0),
            "shards": scenario.manager.shard_count,
            "scans": scan_stats.get("scans", 0),
            "scanned": scan_stats.get("evaluated", 0),
            "budget_denied": budget.stats["denied"] if budget else 0,
        },
        "baseline_requests": base_scenario.total_requests(),
    }
    if telemetry:
        point["telemetry"] = collect_scale_telemetry(
            threads, seed=seed, event_budget=event_budget, sched=sched,
            families=families)
    return point


def run_scale_sweep(thread_counts=DEFAULT_THREAD_COUNTS, seed=1,
                    event_budget=250_000, rounds=2, progress=None,
                    telemetry=False, sched="cfs", families=None):
    """Sweep ``thread_counts`` and return the SCALE.json document."""
    points = []
    start = time.perf_counter()
    for threads in thread_counts:
        point = measure_scale_point(threads, seed=seed,
                                    event_budget=event_budget,
                                    rounds=rounds, telemetry=telemetry,
                                    sched=sched, families=families)
        points.append(point)
        if progress is not None:
            progress(point)
    # Record the family mix as actually applied (the spec default when
    # the caller passed None), so the document is self-describing.
    applied_families = list(families) if families else list(
        ScaleSpec(thread_counts[0], seed=seed).families)
    return {
        "schema": SCALE_SCHEMA,
        "seed": seed,
        "event_budget": event_budget,
        "telemetry": bool(telemetry),
        "sched": sched,
        "families": applied_families,
        "wall_s": round(time.perf_counter() - start, 2),
        "points": points,
    }


def write_scale_json(document, out_path="results/SCALE.json"):
    """Atomically write the sweep document.

    Points are one compact line each (no inner indentation): an
    indented dump would put every delta-encoded sketch integer on its
    own line, inflating a telemetry sweep ~3x past the repo-wide 64 KiB
    results cap the per-point budget was sized against.
    """
    out_dir = os.path.dirname(out_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    tmp = out_path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write("{\n")
        keys = sorted(document)
        for position, key in enumerate(keys):
            comma = "," if position < len(keys) - 1 else ""
            if key == "points":
                handle.write(' "points": [\n')
                points = document["points"]
                for index, point in enumerate(points):
                    line = json.dumps(point, sort_keys=True,
                                      separators=(",", ":"))
                    tail = "," if index < len(points) - 1 else ""
                    handle.write("  %s%s\n" % (line, tail))
                handle.write(" ]%s\n" % comma)
            else:
                handle.write(' "%s": %s%s\n' % (
                    key, json.dumps(document[key], sort_keys=True,
                                    separators=(",", ":")), comma))
        handle.write("}\n")
    os.replace(tmp, out_path)
    return out_path
