"""Multi-tenant scalability harness (``repro scale``).

Composes the application models (mysqlsim / pgsim / apachesim by
default; memcachedsim / varnishsim / faassim in the extended mix) into
one kernel with T tenants x W workers and sweeps the thread count from
~100 to 10,000 (10 to 500 pBoxes) under a shared pBox manager and a
selectable scheduler policy, recording kernel event throughput and
manager detection cost at each point into ``results/SCALE.json``.
"""

from repro.scale.scenario import (
    APP_KINDS,
    EXTENDED_APP_KINDS,
    ScaleSpec,
    build_scale_scenario,
)
from repro.scale.sweep import (
    DEFAULT_THREAD_COUNTS,
    SMOKE_THREAD_COUNTS,
    measure_scale_point,
    run_scale_sweep,
)

__all__ = [
    "APP_KINDS",
    "EXTENDED_APP_KINDS",
    "ScaleSpec",
    "build_scale_scenario",
    "DEFAULT_THREAD_COUNTS",
    "SMOKE_THREAD_COUNTS",
    "measure_scale_point",
    "run_scale_sweep",
]
