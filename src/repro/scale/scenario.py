"""Multi-tenant scenario generator for the scalability sweep.

A *tenant* is one application instance (MySQL, PostgreSQL, or Apache,
assigned round-robin) plus its workers:

- two **connection clients** driving requests through the application's
  :class:`~repro.apps.base.Connection` -- the pBox-bound path that
  exercises the manager's HOLD/UNHOLD pipeline (two pBoxes per tenant,
  so pBox count scales with the tenant count);
- one **notifier** plus a pool of **event-loop workers** parked on the
  tenant's condition key: every broadcast wakes the whole pool at once
  and each woken worker burns a short compute slice -- the regime the
  batched futex wake, the idle-core bitmask dispatch, and the timer
  wheel exist for.

Everything is seeded through the kernel's named RNG registry, so a
scale run is as deterministic as any registry case.
"""

from repro.apps.apachesim import ApacheConfig, ApacheServer
from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.apps.pgsim import PGConfig, PostgresServer
from repro.core import (
    OperationCosts,
    PBoxRuntime,
    PenaltyBudget,
    ShardedPBoxManager,
)
from repro.sim import Kernel
from repro.sim.syscalls import Compute, FutexWait, FutexWake, Now, Sleep
from repro.workloads import closed_loop_client

#: Worker threads per tenant (one of which is the connection client).
WORKERS_PER_TENANT = 20

#: Shared penalty budget per scale run: at most this much outstanding
#: delay-penalty time across all tenant shards at once.  Sized at 24
#: cap-length penalties -- far above what the sweep ever reserves (the
#: per-point ``budget_denied`` column proves it never binds), so it
#: bounds pathological pile-ups without steering the measured runs.
PENALTY_BUDGET_US = 24 * 5_000_000

#: Approximate uncontended request latency per (app kind, role), used
#: as the slowdown denominator for SLO telemetry.  Derived from the
#: request factories below (service work plus fixed per-request model
#: overhead); the values only scale the slowdown axis -- they never
#: feed scheduling, so they cannot affect determinism.
NOMINAL_REQUEST_US = {
    ("mysql", "oltp"): 900,      # pk_insert: 2 ops x 400us work
    ("mysql", "batch"): 300,     # nopk_insert: 2 ops x 100us work
    ("pg", "oltp"): 400,         # other_table_query: 150us work
    ("pg", "batch"): 2_200,      # lock_table_scan: 2,000us scan
    ("apache", "oltp"): 300,     # static, 200us service
    ("apache", "batch"): 800,    # static, 700us service
}


class ScaleSpec:
    """Parameters of one scale point.

    ``threads`` is the total worker population; tenants are derived as
    ``threads // workers_per_tenant`` so the pBox count grows with the
    thread count: two connection pBoxes per tenant means 10 pBoxes at
    the bottom of the sweep (100 threads) and 1,000 at the top (10,000
    threads) -- past the 500 the paper's manager was sized for.
    ``cores`` defaults to an oversubscribed many-core host: enough
    cores that the scheduler, not an artificially tiny CPU, is what's
    being measured.
    """

    def __init__(self, threads, workers_per_tenant=WORKERS_PER_TENANT,
                 cores=None, duration_us=None, seed=1, manager_enabled=True,
                 event_budget=250_000):
        if threads < workers_per_tenant:
            raise ValueError("need at least one tenant's worth of threads")
        self.threads = threads
        self.workers_per_tenant = workers_per_tenant
        self.tenants = threads // workers_per_tenant
        self.cores = cores if cores is not None else default_cores(threads)
        self.seed = seed
        self.manager_enabled = manager_enabled
        self.event_budget = event_budget
        if duration_us is None:
            duration_us = duration_for_budget(self.cores, event_budget)
        self.duration_us = duration_us

    def describe(self):
        return ("%d threads / %d tenants / %d cores / %.0f ms virtual"
                % (self.threads, self.tenants, self.cores,
                   self.duration_us / 1_000))


def default_cores(threads):
    """Core count for a plausible host running ``threads`` workers.

    8x oversubscription: server threads here are sleepy (event loops,
    think time), so 10,000 of them on a ~1,250-core consolidation host
    is the regime the paper's multi-tenant story targets.
    """
    return max(8, min(2048, threads // 8))


def duration_for_budget(cores, event_budget):
    """Virtual duration that yields roughly ``event_budget`` events.

    With the cores fully oversubscribed (the steady state of every
    scale point), event volume is core-bound: each core turns over a
    slice every few hundred microseconds and each slice costs a
    handful of kernel events (arm, fire, enqueue, dispatch).  The
    constant keeps every sweep point near the same measurement size
    regardless of thread count.
    """
    events_per_virtual_us = cores / 64.0
    duration_us = int(event_budget / events_per_virtual_us)
    return max(20_000, min(2_000_000, duration_us))


class RequestCounter:
    """Constant-memory recorder: request count and total latency only.

    At 500 tenants a sample list per connection is pointless weight;
    the sweep only needs aggregate throughput and mean latency.
    """

    def __init__(self, telemetry=None, tenant=None, nominal_us=None):
        self.count = 0
        self.total_us = 0
        # Optional telemetry mirror (TelemetryPipeline): request
        # latencies reach the pipeline off-bus, tagged by tenant.
        self.telemetry = telemetry
        self.tenant = tenant
        self.nominal_us = nominal_us

    def record(self, latency_us, _finished_us=None):
        self.count += 1
        self.total_us += latency_us
        if self.telemetry is not None:
            self.telemetry.record_request(
                self.tenant, latency_us, _finished_us or 0,
                nominal_us=self.nominal_us)

    @property
    def mean_us(self):
        return self.total_us / self.count if self.count else 0.0


class ScaleScenario:
    """Handles to a built (not yet run) scale scenario."""

    def __init__(self, spec, kernel, manager, runtime):
        self.spec = spec
        self.kernel = kernel
        self.manager = manager
        self.runtime = runtime
        self.servers = []
        self.request_counters = []
        self.telemetry = None

    def total_requests(self):
        return sum(counter.count for counter in self.request_counters)

    def run(self):
        """Run to the spec's horizon; returns the kernel for chaining."""
        self.kernel.run(until_us=self.spec.duration_us)
        if self.telemetry is not None:
            self.telemetry.finalize(self.kernel.now_us)
        return self.kernel


def _make_server(kind, kernel, runtime):
    if kind == "mysql":
        # Small buffer pool: tenant clients contend on their own pages
        # without turning every access into an IO stall.
        return MySQLServer(kernel, runtime,
                           MySQLConfig(buffer_pool_blocks=32))
    if kind == "pg":
        return PostgresServer(kernel, runtime, PGConfig())
    # One worker: the tenant's two connections contend on the pool, so
    # the manager sees cross-pBox HOLD/defer traffic on the semaphore.
    return ApacheServer(kernel, runtime, ApacheConfig(max_workers=1))


def _request_factory(kind, tenant_index, rng, noisy=False):
    """Per-tenant request mix: short, *contended* application requests.

    Each tenant runs two connections against the same server instance;
    the request kinds are chosen so the pair collides on one of the
    app's serialization points (dict mutex / lock-manager partition /
    worker pool).  That keeps the manager's defer-and-blame pipeline --
    the part whose cost scales with pBox count -- continuously busy.
    """
    if kind == "mysql":
        if noisy:
            def make():
                return {"kind": "nopk_insert", "ops": 2, "work_us": 100}
        else:
            def make():
                return {"kind": "pk_insert", "ops": 2, "work_us": 400}
    elif kind == "pg":
        if noisy:
            def make():
                return {"kind": "lock_table_scan", "scan_us": 2_000}
        else:
            def make():
                return {"kind": "other_table_query", "work_us": 150}
    else:
        if noisy:
            def make():
                return {"kind": "static", "serve_us": 700}
        else:
            def make():
                return {"kind": "static", "serve_us": 200}
    return make


def _cv_waiter_body(key):
    """An event-loop worker parked on its tenant's condition key.

    Each broadcast wakes the whole pool at once -- the wake-all path
    that used to cost one full core scan *per waiter* and is now a
    single batched dispatch.  No timeout and no stop check: once the
    notifier stops broadcasting at the horizon the waiter simply stays
    blocked, exactly like a real event-loop thread with nothing to do
    (``run`` with a deadline leaves blocked threads parked).
    """

    def body():
        while True:
            yield FutexWait(key)
            yield Compute(us=150)

    return body


def _cv_notifier_body(key, rng, stop_us, period_us=1_000):
    """The tenant's dispatcher: periodically broadcasts to its pool."""

    def body():
        yield Sleep(us=rng.randint(0, period_us))
        while True:
            now = yield Now()
            if now >= stop_us:
                break
            yield FutexWake(key, n=1_000_000)  # wake-all broadcast
            yield Sleep(us=period_us)

    return body


APP_KINDS = ("mysql", "pg", "apache")


def build_scale_scenario(spec, kernel_binder=None, telemetry=None):
    """Build the kernel, manager, tenants and workers for ``spec``.

    ``kernel_binder(kernel, manager)``, when given, runs before any
    thread is spawned -- the A/B throughput guard uses it to rebind the
    kernel's hot paths to their pre-PR implementations so both kernels
    execute the identical scenario.

    ``telemetry`` (a :class:`~repro.obs.telemetry.TelemetryPipeline`),
    when given, is attached to the kernel's bus (bound to the manager's
    dirty set) and every connection's request counter mirrors into it,
    tagged ``t<N>`` with the role's nominal latency as the slowdown
    denominator.
    """
    kernel = Kernel(cores=spec.cores, seed=spec.seed)
    # Per-tenant shards behind one facade: every tenant's resource keys
    # are shard-local by construction (each tenant gets its own server
    # instance), so detection state stays tenant-sized while the psid
    # space and the penalty budget remain app-wide.
    manager = ShardedPBoxManager(
        kernel, enabled=spec.manager_enabled,
        penalty_budget=PenaltyBudget(cap_us=PENALTY_BUDGET_US))
    runtime = PBoxRuntime(manager, costs=OperationCosts(),
                          enabled=spec.manager_enabled)
    if kernel_binder is not None:
        kernel_binder(kernel, manager)
    if telemetry is not None:
        telemetry.attach(kernel.trace, manager=manager)
    scenario = ScaleScenario(spec, kernel, manager, runtime)
    scenario.telemetry = telemetry
    stop_us = spec.duration_us
    for tenant in range(spec.tenants):
        kind = APP_KINDS[tenant % len(APP_KINDS)]
        server = _make_server(kind, kernel, runtime)
        scenario.servers.append(server)
        # Two connections per tenant -- a batch-style aggressor and a
        # short-request victim -- contending on the same app resource,
        # so every tenant contributes cross-pBox defer/blame traffic.
        for role, noisy in (("oltp", False), ("batch", True)):
            conn_rng = kernel.rng("scale.t%d.%s" % (tenant, role))
            counter = RequestCounter(
                telemetry=telemetry, tenant="t%d" % tenant,
                nominal_us=NOMINAL_REQUEST_US[(kind, role)])
            scenario.request_counters.append(counter)
            body = closed_loop_client(
                kernel,
                server.connect("t%d-%s" % (tenant, role)),
                _request_factory(kind, tenant, conn_rng, noisy=noisy),
                counter,
                start_us=conn_rng.randint(0, 2_000),
                stop_us=stop_us,
                think_us=200,
                rng=conn_rng,
                tenant="t%d" % tenant,
            )
            kernel.spawn(body, name="t%d-%s" % (tenant, role))
        # Remaining workers: one notifier broadcasting to the tenant's
        # pool of event-loop workers -- the thread-pool idiom every
        # server here uses (Apache workers, memcached event threads).
        cv_key = "scale.t%d.cv" % tenant
        notifier_rng = kernel.rng("scale.t%d.notify" % tenant)
        kernel.spawn(_cv_notifier_body(cv_key, notifier_rng, stop_us),
                     name="t%d-notify" % tenant)
        for worker in range(spec.workers_per_tenant - 3):
            kernel.spawn(_cv_waiter_body(cv_key),
                         name="t%d-cv%d" % (tenant, worker))
    return scenario
