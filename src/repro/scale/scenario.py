"""Multi-tenant scenario generator for the scalability sweep.

A *tenant* is one application instance (assigned round-robin from the
spec's family list -- MySQL, PostgreSQL, and Apache by default, plus
the event-driven cache tier (memcached, varnish) and the FaaS platform
when the extended mix is selected) plus its workers:

- two **connection clients** driving requests through the application's
  :class:`~repro.apps.base.Connection` -- the pBox-bound path that
  exercises the manager's HOLD/UNHOLD pipeline (two pBoxes per tenant,
  so pBox count scales with the tenant count);
- one **notifier** plus a pool of **event-loop workers** parked on the
  tenant's condition key: every broadcast wakes the whole pool at once
  and each woken worker burns a short compute slice -- the regime the
  batched futex wake, the idle-core bitmask dispatch, and the timer
  wheel exist for.

Everything is seeded through the kernel's named RNG registry, so a
scale run is as deterministic as any registry case.
"""

from repro.apps.apachesim import ApacheConfig, ApacheServer
from repro.apps.faassim import FaasConfig, FaasServer
from repro.apps.memcachedsim import MemcachedConfig, MemcachedServer
from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.apps.pgsim import PGConfig, PostgresServer
from repro.apps.varnishsim import VarnishConfig, VarnishServer
from repro.core import (
    OperationCosts,
    PBoxRuntime,
    PenaltyBudget,
    ShardedPBoxManager,
)
from repro.sim import Kernel
from repro.sim.syscalls import Compute, FutexWait, FutexWake, Now, Sleep
from repro.workloads import closed_loop_client
from repro.workloads.traces import sample_duration

#: Worker threads per tenant (one of which is the connection client).
WORKERS_PER_TENANT = 20

#: Shared penalty budget per scale run: at most this much outstanding
#: delay-penalty time across all tenant shards at once.  Sized at 24
#: cap-length penalties -- far above what the sweep ever reserves (the
#: per-point ``budget_denied`` column proves it never binds), so it
#: bounds pathological pile-ups without steering the measured runs.
PENALTY_BUDGET_US = 24 * 5_000_000

#: Approximate uncontended request latency per (app kind, role), used
#: as the slowdown denominator for SLO telemetry.  Derived from the
#: request factories below (service work plus fixed per-request model
#: overhead); the values only scale the slowdown axis -- they never
#: feed scheduling, so they cannot affect determinism.
NOMINAL_REQUEST_US = {
    ("mysql", "oltp"): 900,      # pk_insert: 2 ops x 400us work
    ("mysql", "batch"): 300,     # nopk_insert: 2 ops x 100us work
    ("pg", "oltp"): 400,         # other_table_query: 150us work
    ("pg", "batch"): 2_200,      # lock_table_scan: 2,000us scan
    ("apache", "oltp"): 300,     # static, 200us service
    ("apache", "batch"): 800,    # static, 700us service
    ("memcached", "oltp"): 80,   # get: 30us service + lock + dispatch
    ("memcached", "batch"): 150,  # set: 40us + probable eviction
    ("varnish", "oltp"): 600,    # small_object: 500us serve + sumstat
    ("varnish", "batch"): 4_700,  # big_object: 4ms backend + delivery
    ("faas", "oltp"): 600,       # 400us function, warm start + teardown
    ("faas", "batch"): 3_300,    # ~3ms function, warm start + teardown
}


class ScaleSpec:
    """Parameters of one scale point.

    ``threads`` is the total worker population; tenants are derived as
    ``threads // workers_per_tenant`` so the pBox count grows with the
    thread count: two connection pBoxes per tenant means 10 pBoxes at
    the bottom of the sweep (100 threads) and 1,000 at the top (10,000
    threads) -- past the 500 the paper's manager was sized for.
    ``cores`` defaults to an oversubscribed many-core host: enough
    cores that the scheduler, not an artificially tiny CPU, is what's
    being measured.
    """

    def __init__(self, threads, workers_per_tenant=WORKERS_PER_TENANT,
                 cores=None, duration_us=None, seed=1, manager_enabled=True,
                 event_budget=250_000, sched="cfs", families=None):
        if threads < workers_per_tenant:
            raise ValueError("need at least one tenant's worth of threads")
        self.threads = threads
        self.workers_per_tenant = workers_per_tenant
        self.tenants = threads // workers_per_tenant
        self.cores = cores if cores is not None else default_cores(threads)
        self.seed = seed
        self.manager_enabled = manager_enabled
        self.event_budget = event_budget
        # Scheduler policy and tenant family mix.  The defaults
        # reproduce the pre-extension sweep exactly (cfs + the three
        # dedicated-thread families), which the A/B throughput guard in
        # benchmarks/ depends on: its before/after kernels must run the
        # byte-identical scenario.
        self.sched = sched
        self.families = tuple(families) if families else APP_KINDS
        if duration_us is None:
            duration_us = duration_for_budget(self.cores, event_budget)
        self.duration_us = duration_us

    def describe(self):
        return ("%d threads / %d tenants / %d cores / %.0f ms virtual"
                " / sched=%s / %d families"
                % (self.threads, self.tenants, self.cores,
                   self.duration_us / 1_000, self.sched,
                   len(self.families)))


def default_cores(threads):
    """Core count for a plausible host running ``threads`` workers.

    8x oversubscription: server threads here are sleepy (event loops,
    think time), so 10,000 of them on a ~1,250-core consolidation host
    is the regime the paper's multi-tenant story targets.
    """
    return max(8, min(2048, threads // 8))


def duration_for_budget(cores, event_budget):
    """Virtual duration that yields roughly ``event_budget`` events.

    With the cores fully oversubscribed (the steady state of every
    scale point), event volume is core-bound: each core turns over a
    slice every few hundred microseconds and each slice costs a
    handful of kernel events (arm, fire, enqueue, dispatch).  The
    constant keeps every sweep point near the same measurement size
    regardless of thread count.
    """
    events_per_virtual_us = cores / 64.0
    duration_us = int(event_budget / events_per_virtual_us)
    return max(20_000, min(2_000_000, duration_us))


class RequestCounter:
    """Constant-memory recorder: request count and total latency only.

    At 500 tenants a sample list per connection is pointless weight;
    the sweep only needs aggregate throughput and mean latency.
    """

    def __init__(self, telemetry=None, tenant=None, nominal_us=None):
        self.count = 0
        self.total_us = 0
        # Optional telemetry mirror (TelemetryPipeline): request
        # latencies reach the pipeline off-bus, tagged by tenant.
        self.telemetry = telemetry
        self.tenant = tenant
        self.nominal_us = nominal_us

    def record(self, latency_us, _finished_us=None):
        self.count += 1
        self.total_us += latency_us
        if self.telemetry is not None:
            self.telemetry.record_request(
                self.tenant, latency_us, _finished_us or 0,
                nominal_us=self.nominal_us)

    @property
    def mean_us(self):
        return self.total_us / self.count if self.count else 0.0


class ScaleScenario:
    """Handles to a built (not yet run) scale scenario."""

    def __init__(self, spec, kernel, manager, runtime):
        self.spec = spec
        self.kernel = kernel
        self.manager = manager
        self.runtime = runtime
        self.servers = []
        self.request_counters = []
        # family -> [RequestCounter]: the sweep reports per-family
        # request totals so a mixed-family point shows each tenant
        # family actually ran (an all-zero family is a wiring bug).
        self.family_counters = {}
        self.telemetry = None

    def total_requests(self):
        return sum(counter.count for counter in self.request_counters)

    def requests_by_family(self):
        """Completed requests per tenant family (sorted keys)."""
        return {
            family: sum(counter.count for counter in counters)
            for family, counters in sorted(self.family_counters.items())
        }

    def run(self):
        """Run to the spec's horizon; returns the kernel for chaining."""
        self.kernel.run(until_us=self.spec.duration_us)
        if self.telemetry is not None:
            self.telemetry.finalize(self.kernel.now_us)
        return self.kernel


#: Worker-pool threads each event-driven family spawns per tenant;
#: they count against the tenant's ``workers_per_tenant`` budget (the
#: cv-waiter pool shrinks to compensate, keeping total thread count the
#: honest sweep axis).
POOL_WORKERS = {"memcached": 3, "varnish": 3, "faas": 3}


def _make_server(kind, kernel, runtime):
    if kind == "mysql":
        # Small buffer pool: tenant clients contend on their own pages
        # without turning every access into an IO stall.
        return MySQLServer(kernel, runtime,
                           MySQLConfig(buffer_pool_blocks=32))
    if kind == "pg":
        return PostgresServer(kernel, runtime, PGConfig())
    if kind == "memcached":
        return MemcachedServer(kernel, runtime,
                               MemcachedConfig(workers=POOL_WORKERS[kind]))
    if kind == "varnish":
        return VarnishServer(kernel, runtime,
                             VarnishConfig(workers=POOL_WORKERS[kind]))
    if kind == "faas":
        # Two tickets: the tenant's oltp/batch connections contend on
        # admission, mirroring the other families' serialization-point
        # collisions.
        return FaasServer(kernel, runtime,
                          FaasConfig(workers=POOL_WORKERS[kind], slots=2))
    # One worker: the tenant's two connections contend on the pool, so
    # the manager sees cross-pBox HOLD/defer traffic on the semaphore.
    return ApacheServer(kernel, runtime, ApacheConfig(max_workers=1))


def _request_factory(kind, tenant_index, rng, noisy=False):
    """Per-tenant request mix: short, *contended* application requests.

    Each tenant runs two connections against the same server instance;
    the request kinds are chosen so the pair collides on one of the
    app's serialization points (dict mutex / lock-manager partition /
    worker pool).  That keeps the manager's defer-and-blame pipeline --
    the part whose cost scales with pBox count -- continuously busy.
    """
    if kind == "mysql":
        if noisy:
            def make():
                return {"kind": "nopk_insert", "ops": 2, "work_us": 100}
        else:
            def make():
                return {"kind": "pk_insert", "ops": 2, "work_us": 400}
    elif kind == "pg":
        if noisy:
            def make():
                return {"kind": "lock_table_scan", "scan_us": 2_000}
        else:
            def make():
                return {"kind": "other_table_query", "work_us": 150}
    elif kind == "memcached":
        if noisy:
            # Sets evict with high probability, holding the cache lock
            # the victim's gets need.
            def make():
                return {"kind": "set", "type": "set"}
        else:
            def make():
                return {"kind": "get", "type": "get"}
    elif kind == "varnish":
        if noisy:
            # Big objects park a pool worker on a (shortened) backend
            # fetch, starving the small-object path of workers.
            def make():
                return {"kind": "big_object", "backend_us": 4_000,
                        "deliver_us": 500}
        else:
            def make():
                return {"kind": "small_object", "serve_us": 500}
    elif kind == "faas":
        if noisy:
            # Batch function durations follow the vendored trace
            # histogram (heavy-tailed), drawn from the tenant's own
            # seeded stream -- the same distribution the c18 trace
            # replayer samples.
            def make():
                return {"kind": "invoke",
                        "duration_us": sample_duration(rng)}
        else:
            def make():
                return {"kind": "invoke", "duration_us": 400}
    else:
        if noisy:
            def make():
                return {"kind": "static", "serve_us": 700}
        else:
            def make():
                return {"kind": "static", "serve_us": 200}
    return make


def _cv_waiter_body(key):
    """An event-loop worker parked on its tenant's condition key.

    Each broadcast wakes the whole pool at once -- the wake-all path
    that used to cost one full core scan *per waiter* and is now a
    single batched dispatch.  No timeout and no stop check: once the
    notifier stops broadcasting at the horizon the waiter simply stays
    blocked, exactly like a real event-loop thread with nothing to do
    (``run`` with a deadline leaves blocked threads parked).
    """

    def body():
        while True:
            yield FutexWait(key)
            yield Compute(us=150)

    return body


def _cv_notifier_body(key, rng, stop_us, period_us=1_000):
    """The tenant's dispatcher: periodically broadcasts to its pool."""

    def body():
        yield Sleep(us=rng.randint(0, period_us))
        while True:
            now = yield Now()
            if now >= stop_us:
                break
            yield FutexWake(key, n=1_000_000)  # wake-all broadcast
            yield Sleep(us=period_us)

    return body


#: The original (pre-extension) tenant families; the default for
#: ``ScaleSpec`` so existing consumers (the A/B throughput guard)
#: keep their byte-identical scenarios.
APP_KINDS = ("mysql", "pg", "apache")

#: The full family mix ``repro scale`` sweeps by default: the three
#: dedicated-thread servers plus the event-driven cache tier and the
#: sandbox-churning FaaS platform.
EXTENDED_APP_KINDS = ("mysql", "pg", "apache", "memcached", "varnish",
                      "faas")


def build_scale_scenario(spec, kernel_binder=None, telemetry=None):
    """Build the kernel, manager, tenants and workers for ``spec``.

    ``kernel_binder(kernel, manager)``, when given, runs before any
    thread is spawned -- the A/B throughput guard uses it to rebind the
    kernel's hot paths to their pre-PR implementations so both kernels
    execute the identical scenario.

    ``telemetry`` (a :class:`~repro.obs.telemetry.TelemetryPipeline`),
    when given, is attached to the kernel's bus (bound to the manager's
    dirty set) and every connection's request counter mirrors into it,
    tagged ``t<N>`` with the role's nominal latency as the slowdown
    denominator.
    """
    kernel = Kernel(cores=spec.cores, seed=spec.seed,
                    sched=getattr(spec, "sched", "cfs"))
    # Per-tenant shards behind one facade: every tenant's resource keys
    # are shard-local by construction (each tenant gets its own server
    # instance), so detection state stays tenant-sized while the psid
    # space and the penalty budget remain app-wide.
    manager = ShardedPBoxManager(
        kernel, enabled=spec.manager_enabled,
        penalty_budget=PenaltyBudget(cap_us=PENALTY_BUDGET_US))
    runtime = PBoxRuntime(manager, costs=OperationCosts(),
                          enabled=spec.manager_enabled)
    if kernel_binder is not None:
        kernel_binder(kernel, manager)
    if telemetry is not None:
        telemetry.attach(kernel.trace, manager=manager)
    scenario = ScaleScenario(spec, kernel, manager, runtime)
    scenario.telemetry = telemetry
    stop_us = spec.duration_us
    families = getattr(spec, "families", APP_KINDS)
    for tenant in range(spec.tenants):
        kind = families[tenant % len(families)]
        server = _make_server(kind, kernel, runtime)
        scenario.servers.append(server)
        # Event-driven families run their requests on a worker pool;
        # spawn it before the clients so its threads exist when the
        # first request is submitted.
        pool_workers = POOL_WORKERS.get(kind, 0)
        if pool_workers:
            server.start()
        # Two connections per tenant -- a batch-style aggressor and a
        # short-request victim -- contending on the same app resource,
        # so every tenant contributes cross-pBox defer/blame traffic.
        family_counters = scenario.family_counters.setdefault(kind, [])
        for role, noisy in (("oltp", False), ("batch", True)):
            conn_rng = kernel.rng("scale.t%d.%s" % (tenant, role))
            counter = RequestCounter(
                telemetry=telemetry, tenant="t%d" % tenant,
                nominal_us=NOMINAL_REQUEST_US[(kind, role)])
            scenario.request_counters.append(counter)
            family_counters.append(counter)
            body = closed_loop_client(
                kernel,
                server.connect("t%d-%s" % (tenant, role)),
                _request_factory(kind, tenant, conn_rng, noisy=noisy),
                counter,
                start_us=conn_rng.randint(0, 2_000),
                stop_us=stop_us,
                think_us=200,
                rng=conn_rng,
                tenant="t%d" % tenant,
            )
            kernel.spawn(body, name="t%d-%s" % (tenant, role))
        # Remaining workers: one notifier broadcasting to the tenant's
        # pool of event-loop workers -- the thread-pool idiom every
        # server here uses (Apache workers, memcached event threads).
        # Families with an explicit worker pool spend part of the
        # tenant's thread budget there, so their cv pool is smaller.
        cv_key = "scale.t%d.cv" % tenant
        notifier_rng = kernel.rng("scale.t%d.notify" % tenant)
        kernel.spawn(_cv_notifier_body(cv_key, notifier_rng, stop_us),
                     name="t%d-notify" % tenant)
        for worker in range(spec.workers_per_tenant - 3 - pool_workers):
            kernel.spawn(_cv_waiter_body(cv_key),
                         name="t%d-cv%d" % (tenant, worker))
    return scenario
