"""The run supervisor: checkpoint, detect failure, resume, converge.

:class:`RunSupervisor` wraps a case or chaos job with the checkpointing
driver and the runner's hardening surfaces: the job runs under the
wall-clock budget (:class:`~repro.runner.runner._job_alarm`, including
its non-main-thread deadline fallback), worker crashes surface as
:class:`~repro.ckpt.driver.WorkerKilled` carrying the last good
checkpoint, and invariant violations are read off the attached chaos
harness.  On failure the supervisor resumes from the last good
checkpoint (store pointer or the exception's own payload) instead of
rerunning from zero, up to ``max_resumes`` times.

Because restore is replay-verified, a supervised run's outputs are
byte-identical to an unsupervised one: the golden document matches, and
for chaos jobs the result dict mirrors
:func:`~repro.runner.runner.execute_spec` field for field so the
CHAOS.json entry digest is the same bytes -- the crash-resume suite
asserts exactly that.
"""

from repro.ckpt.driver import CADENCE_US, WorkerKilled
from repro.ckpt.restore import RestoreMismatch, checkpoint_run, resume_case
from repro.runner.runner import RESULT_VERSION, JobTimeout, _job_alarm


class SupervisorGaveUp(RuntimeError):
    """The resume budget ran out; carries the last failure."""

    def __init__(self, case_id, resumes, last_error):
        super().__init__(
            "supervised run of %s gave up after %d resume(s): %s"
            % (case_id, resumes, last_error))
        self.case_id = case_id
        self.resumes = resumes
        self.last_error = last_error


class RunSupervisor:
    """Supervise case/chaos jobs with checkpointed resume.

    Parameters
    ----------
    store:
        :class:`~repro.ckpt.snapshot.CheckpointStore` the driver saves
        into and the resume path reads from.
    cadence_us:
        Checkpoint cadence in virtual microseconds.
    max_resumes:
        Resume attempts before :class:`SupervisorGaveUp`.
    timeout_s:
        Optional per-attempt wall budget, enforced through the runner's
        job alarm (deadline fallback off the main thread).
    """

    def __init__(self, store, cadence_us=CADENCE_US, max_resumes=3,
                 timeout_s=None):
        self.store = store
        self.cadence_us = cadence_us
        self.max_resumes = max_resumes
        self.timeout_s = timeout_s

    def run(self, case_id, duration_s=None, seed=1, kill_at_us=None,
            faults=None, barriers=None, manager_factory=None):
        """Run one supervised job; returns the outcome dict.

        The outcome carries ``document`` (golden document of the
        completed stream), ``run``, ``harness`` (chaos runs),
        ``resumes`` (how many restore cycles happened) and
        ``violations`` (invariant violations the harness recorded).
        ``kill_at_us`` injects a crash on the *first* attempt only --
        the resume replays cleanly, exactly like a real crashed worker
        restarted without the fault.
        """
        resumes = 0
        last_error = None
        outcome = None
        attempt_kill = kill_at_us
        while True:
            try:
                with _job_alarm(self.timeout_s):
                    if resumes == 0:
                        outcome = checkpoint_run(
                            case_id, duration_s=duration_s, seed=seed,
                            cadence_us=self.cadence_us, store=self.store,
                            kill_at_us=attempt_kill, faults=faults,
                            barriers=barriers,
                            manager_factory=manager_factory)
                    else:
                        checkpoint = self._checkpoint_for(last_error,
                                                          case_id)
                        if checkpoint is None:
                            # Nothing to resume from (crash before the
                            # first barrier): replay is simply a clean
                            # full run.
                            outcome = checkpoint_run(
                                case_id, duration_s=duration_s, seed=seed,
                                cadence_us=self.cadence_us,
                                store=self.store, faults=faults,
                                barriers=barriers,
                                manager_factory=manager_factory)
                        else:
                            outcome = resume_case(
                                checkpoint, barriers=barriers,
                                manager_factory=manager_factory)
                break
            except (WorkerKilled, JobTimeout, RestoreMismatch) as exc:
                last_error = exc
                resumes += 1
                attempt_kill = None
                if resumes > self.max_resumes:
                    raise SupervisorGaveUp(case_id, resumes - 1, exc)
        outcome = dict(outcome)
        outcome["resumes"] = resumes
        outcome["violations"] = self._violations(outcome.get("harness"))
        return outcome

    def _checkpoint_for(self, error, case_id):
        """Last good checkpoint: the exception's own, else the store's."""
        checkpoint = getattr(error, "checkpoint", None)
        if checkpoint is not None:
            return checkpoint
        if self.store is not None:
            return self.store.latest(case_id)
        return None

    @staticmethod
    def _violations(harness):
        if harness is None or harness.suite is None:
            return []
        return list(getattr(harness.suite, "violations", []))

    def chaos_result(self, outcome):
        """The :func:`~repro.runner.runner.execute_spec`-shaped result.

        Field-for-field mirror of the runner's success payload, so
        :func:`repro.faults.chaos.entry_digest` over this dict equals
        the digest of an unsupervised worker's result -- the
        crash-resume byte-identity contract.
        """
        run = outcome["run"]
        harness = outcome["harness"]
        victim_count = sum(len(recorder.samples_us)
                           for recorder in run.env.victim_recorders)
        noisy_count = sum(len(recorder.samples_us)
                          for recorder in run.env.noisy_recorders)
        result = {
            "version": RESULT_VERSION,
            "victim_mean_us": run.victim_mean_us,
            "victim_p95_us": run.victim_p95_us,
            "noisy_mean_us": run.noisy_mean_us,
            "victim_samples": victim_count,
            "noisy_samples": noisy_count,
            "sim_stats": dict(run.env.kernel.stats),
            "manager_stats": dict(run.manager.stats),
        }
        engine = getattr(run.manager, "penalty_engine", None)
        if engine is not None and hasattr(engine, "action_count"):
            result["penalty_actions"] = engine.action_count()
        if harness is not None:
            result["chaos"] = harness.finish()
        return result
