"""Golden-digest bisection: localize the first divergent event window.

When a golden digest breaks, the raw failure is two hashes that do not
match over tens of thousands of events.  The rolling checkpoint chain
inside every golden document (one digest per
:data:`~repro.obs.golden.CHECKPOINT_EVERY` events) already localizes
the break to one window; :func:`bisect_case` turns that into an
actionable report by replaying the case once to compare chains and --
when they diverge -- once more with a
:class:`~repro.obs.golden.WindowRecorder` scoped to the first divergent
window, so the output is the actual event lines around the divergence
instead of "reread 10k events".
"""

from repro.obs.golden import (
    CHECKPOINT_EVERY,
    WindowRecorder,
    first_divergence,
    run_golden_case,
)


def bisect_case(case_id, expected_doc, duration_s, seed,
                manager_factory=None):
    """Compare a fresh run of ``case_id`` against ``expected_doc``.

    Returns a JSON-safe report.  ``divergent`` False means the run
    still matches the expected document (digest, event count, stats).
    When True, the report carries the 0-based ``window_index`` of the
    first divergent checkpoint window, its event range, and the actual
    event lines of that window from a second replay.
    """
    actual = run_golden_case(case_id, duration_s, seed,
                             manager_factory=manager_factory)
    window = first_divergence(expected_doc, actual)
    if window is None:
        return {
            "case_id": case_id,
            "divergent": False,
            "digest": actual["digest"],
            "events": actual["events"],
        }
    every = expected_doc.get("checkpoint_every", CHECKPOINT_EVERY)
    start_event = window * every
    recorder = WindowRecorder(start_event, every)
    run_golden_case(
        case_id, duration_s, seed, manager_factory=manager_factory,
        observer=lambda env: recorder.attach(env.kernel.trace))
    return {
        "case_id": case_id,
        "divergent": True,
        "window_index": window,
        "start_event": start_event,
        "window_events": every,
        "expected_digest": expected_doc["digest"],
        "actual_digest": actual["digest"],
        "expected_events": expected_doc["events"],
        "actual_events": actual["events"],
        "lines": list(recorder.lines),
    }
