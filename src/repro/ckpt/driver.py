"""The checkpointing case driver: stepped execution with barriers.

``run_case(driver=...)`` replaces the single ``kernel.run`` call with a
caller-owned loop.  :class:`CheckpointingDriver` steps the kernel in
``cadence_us`` virtual-time increments; each step boundary is a
*barrier*: the kernel is quiescent (``run(until_us=T)`` drains every
event at or before ``T``), so barrier callbacks (rule hot-reload) run
and a checkpoint is taken.  Stepped execution is byte-identical to a
monolithic ``run`` -- the event loop processes the exact same events in
the exact same order either way; the ``repro watch`` driver established
the pattern and the restore-equality suite re-proves it for every
registry case.

``kill_at_us`` injects a *worker crash* at the first barrier at or past
that virtual time: the driver raises :class:`WorkerKilled` carrying the
last checkpoint taken strictly before the kill, which is precisely what
a supervisor recovering a genuinely crashed worker would find in the
store.
"""

#: Default checkpoint cadence: every 250 ms of virtual time (4 barriers
#: across the canonical 1 s of modeled load, 5 across the golden 1.5 s).
CADENCE_US = 250_000


class WorkerKilled(RuntimeError):
    """Injected mid-run worker crash; carries the last good checkpoint."""

    def __init__(self, at_us, checkpoint):
        super().__init__(
            "worker killed at t=%dus (last checkpoint: %s)"
            % (at_us, "none" if checkpoint is None
               else "t=%dus" % checkpoint.cut_us))
        self.at_us = at_us
        self.checkpoint = checkpoint


class CheckpointingDriver:
    """Drive a case in cadence-sized steps, checkpointing at barriers.

    Parameters
    ----------
    spec:
        Replay spec recorded into every checkpoint (``case_id``,
        ``duration_s``, ``seed``, ``cadence_us``, optional ``faults``).
    digest:
        The run's :class:`~repro.obs.golden.TraceDigest` (must be
        attached before the driver runs; ``run_golden_case`` does
        this).
    store:
        Optional :class:`~repro.ckpt.snapshot.CheckpointStore`; when
        given, every checkpoint is persisted under the case-id label.
    kill_at_us:
        Optional virtual time of an injected worker crash (see
        :class:`WorkerKilled`).
    barriers:
        Optional list of ``callback(env, t_us)`` run at every barrier
        *before* the checkpoint is taken -- the rule hot-reload hook
        point, so a reload is always captured by the barrier's own
        snapshot.
    """

    def __init__(self, spec, digest, cadence_us=CADENCE_US, store=None,
                 kill_at_us=None, barriers=None):
        from repro.ckpt.snapshot import take_checkpoint

        self._take = take_checkpoint
        self.spec = dict(spec)
        self.spec.setdefault("cadence_us", cadence_us)
        self.digest = digest
        self.cadence_us = cadence_us
        self.store = store
        self.kill_at_us = kill_at_us
        self.barriers = list(barriers or [])
        self.checkpoints = []

    @property
    def last_checkpoint(self):
        return self.checkpoints[-1] if self.checkpoints else None

    def __call__(self, env):
        kernel = env.kernel
        duration_us = env.duration_us
        label = self.spec.get("case_id")
        t = self.cadence_us
        while t < duration_us:
            kernel.run(until_us=t)
            if self.kill_at_us is not None and t >= self.kill_at_us:
                raise WorkerKilled(t, self.last_checkpoint)
            for barrier in self.barriers:
                barrier(env, t)
            checkpoint = self._take(env, self.spec, self.digest)
            self.checkpoints.append(checkpoint)
            if self.store is not None:
                self.store.save(checkpoint, label=label)
            t += self.cadence_us
        kernel.run(until_us=duration_us)
