"""Canonical state walks: the checkpoint's view of the simulation.

A *walk* is a JSON-safe, deterministically-ordered rendering of every
piece of observable simulation state: the kernel (clock, run queues,
timer wheel entries, futex waiters, cgroups, per-thread accounting, RNG
stream fingerprints, penalty-armer buckets) and the complete pBox layer
(manager or sharded facade, pBoxes, heal trends, penalty budget).

Walker purity rule
------------------

Walking MUST NOT perturb the run: no tracepoint fires, no RNG draw, no
``itertools.count`` tick (the kernel's ``_seq``/``_req_seq`` and the
manager's flow-id counter are skipped entirely -- a count cannot be
read without advancing it, and replay reconstructs them exactly while
the trace digest pins the orderings they feed).  Every ``snapshot_state``
method this module composes obeys the rule; the restore-equality suite
checkpoints mid-run and asserts the final golden digest does not move,
which would catch any violation.
"""

import hashlib
import json

from repro.obs.golden import canonical_value

#: Schema version of state walks (bump when any walker changes shape;
#: stored checkpoints from other schemas must be rejected, never
#: reinterpreted).
STATE_SCHEMA = 1


def walk_state(kernel, manager):
    """Full canonical walk of one simulation's state.

    ``manager`` may be a :class:`~repro.core.manager.PBoxManager`, a
    :class:`~repro.core.shards.ShardedPBoxManager`, or ``None`` (a run
    without the pBox layer).  Resource keys are rendered with the
    golden corpus's :func:`~repro.obs.golden.canonical_value`, so walk
    text is stable across processes exactly like trace text.
    """
    return {
        "schema": STATE_SCHEMA,
        "kernel": kernel.snapshot_state(label=canonical_value),
        "manager": (None if manager is None
                    else manager.snapshot_state(label=canonical_value)),
    }


def canonical_json(obj):
    """Canonical JSON text: sorted keys, no whitespace, exact floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def state_digest(walk):
    """SHA-256 over the canonical JSON of a walk.

    Tuples serialize as JSON arrays, so a walk that round-tripped
    through disk (tuples become lists) digests identically to a fresh
    one.
    """
    return hashlib.sha256(canonical_json(walk).encode()).hexdigest()


def first_difference(expected, actual, path="$"):
    """Human-readable locator of the first divergence between two walks.

    Returns ``(path, expected_repr, actual_repr)`` or ``None`` when the
    structures are equal.  Lists and tuples compare as sequences (a
    JSON round trip turns tuples into lists); dicts compare by sorted
    key.  Used to turn a state-digest mismatch into an actionable
    message instead of two opaque hashes.
    """
    if isinstance(expected, (list, tuple)) and isinstance(actual,
                                                          (list, tuple)):
        if len(expected) != len(actual):
            return (path + ".len", repr(len(expected)), repr(len(actual)))
        for index, (exp, act) in enumerate(zip(expected, actual)):
            found = first_difference(exp, act, "%s[%d]" % (path, index))
            if found is not None:
                return found
        return None
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            if key not in expected:
                return ("%s.%s" % (path, key), "<absent>",
                        repr(actual[key])[:120])
            if key not in actual:
                return ("%s.%s" % (path, key), repr(expected[key])[:120],
                        "<absent>")
            found = first_difference(expected[key], actual[key],
                                     "%s.%s" % (path, key))
            if found is not None:
                return found
        return None
    if expected != actual:
        return (path, repr(expected)[:120], repr(actual)[:120])
    return None
