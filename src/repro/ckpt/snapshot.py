"""Checkpoint artifacts: versioned, content-addressed, compressed.

A :class:`Checkpoint` captures one quiescent barrier of one run: the
replay spec (everything needed to re-execute the run from t=0), the cut
point in virtual time and event count, the rolling trace digest at the
cut, and the full canonical state walk with its own digest.  The
artifact's identity is the SHA-256 of its canonical JSON, so two runs
that reach the same barrier in the same state produce the *same*
checkpoint id -- storing is idempotent and equality is an id
comparison.

:class:`CheckpointStore` persists artifacts zlib-compressed under a
directory, named by content address, with a per-label ``latest``
pointer for the supervisor's "resume from the last good checkpoint"
path.  Writes are atomic (temp + ``os.replace``) and the temp file is
unlinked on failure.
"""

import hashlib
import json
import os
import zlib

from repro.ckpt.state import canonical_json, state_digest, walk_state

#: Schema version of checkpoint artifacts.
CKPT_SCHEMA = 1


class Checkpoint:
    """One quiescent-barrier snapshot of a run.

    Attributes
    ----------
    spec:
        Replay spec dict: ``case_id``, ``duration_s``, ``seed``,
        ``cadence_us`` (plus optional ``faults`` for chaos runs).
    cut_us / events:
        Virtual time and canonical-event count at the barrier.
    cut_digest:
        The rolling trace digest at the barrier.
    trace_checkpoints:
        The golden checkpoint chain accumulated so far (window digests
        every ``CHECKPOINT_EVERY`` events) -- lets bisection replay
        from the artifact without a full golden document.
    state / state_dig:
        The canonical state walk and its digest.
    """

    def __init__(self, spec, cut_us, events, cut_digest, trace_checkpoints,
                 state, state_dig):
        self.spec = dict(spec)
        self.cut_us = cut_us
        self.events = events
        self.cut_digest = cut_digest
        self.trace_checkpoints = list(trace_checkpoints)
        self.state = state
        self.state_dig = state_dig

    def to_json_dict(self):
        """JSON-safe artifact payload (schema-versioned)."""
        return {
            "schema": CKPT_SCHEMA,
            "spec": self.spec,
            "cut_us": self.cut_us,
            "events": self.events,
            "cut_digest": self.cut_digest,
            "trace_checkpoints": self.trace_checkpoints,
            "state": self.state,
            "state_digest": self.state_dig,
        }

    @classmethod
    def from_json_dict(cls, data):
        """Rebuild a checkpoint from :meth:`to_json_dict` output."""
        if data.get("schema") != CKPT_SCHEMA:
            raise ValueError("unsupported checkpoint schema %r (want %d)"
                             % (data.get("schema"), CKPT_SCHEMA))
        return cls(
            spec=data["spec"],
            cut_us=data["cut_us"],
            events=data["events"],
            cut_digest=data["cut_digest"],
            trace_checkpoints=data["trace_checkpoints"],
            state=data["state"],
            state_dig=data["state_digest"],
        )

    @property
    def checkpoint_id(self):
        """Content address: SHA-256 of the canonical artifact JSON."""
        return hashlib.sha256(
            canonical_json(self.to_json_dict()).encode()).hexdigest()

    def __repr__(self):
        return "Checkpoint(case=%s, cut_us=%d, events=%d, id=%s)" % (
            self.spec.get("case_id"), self.cut_us, self.events,
            self.checkpoint_id[:12])


def take_checkpoint(env, spec, digest):
    """Snapshot ``env`` at the current (quiescent) virtual time.

    ``digest`` is the run's attached
    :class:`~repro.obs.golden.TraceDigest`; its rolling hash at the cut
    is what restore verifies replay against.  Refuses to snapshot a
    non-quiescent kernel -- a checkpoint taken mid-dispatch could never
    be replayed to, because no ``run(until_us)`` boundary reproduces
    that interior state.
    """
    kernel = env.kernel
    if not kernel.quiescent:
        raise RuntimeError(
            "checkpoint requires a quiescent kernel (no in-flight "
            "dispatch, nothing due at t=%d)" % kernel.now_us)
    manager = None if env.runtime is None else env.runtime.manager
    walk = walk_state(kernel, manager)
    return Checkpoint(
        spec=spec,
        cut_us=kernel.now_us,
        events=digest.events,
        cut_digest=digest.digest_so_far(),
        trace_checkpoints=list(digest.checkpoints),
        state=walk,
        state_dig=state_digest(walk),
    )


class CheckpointStore:
    """Directory of compressed, content-addressed checkpoint artifacts.

    Layout: ``<root>/<checkpoint_id>.ckpt.z`` (zlib-compressed
    canonical JSON) plus ``<root>/<label>.latest`` pointer files
    holding the id of the most recent checkpoint saved under that
    label (typically the case id).
    """

    def __init__(self, root):
        self.root = root

    def _path(self, checkpoint_id):
        return os.path.join(self.root, checkpoint_id + ".ckpt.z")

    def _latest_path(self, label):
        return os.path.join(self.root, label + ".latest")

    def save(self, checkpoint, label=None):
        """Persist ``checkpoint``; returns its content address.

        Idempotent: an artifact that already exists is not rewritten
        (equal ids imply byte-equal payloads).  The ``label`` pointer,
        when given, always moves to this checkpoint.
        """
        os.makedirs(self.root, exist_ok=True)
        checkpoint_id = checkpoint.checkpoint_id
        path = self._path(checkpoint_id)
        if not os.path.exists(path):
            payload = zlib.compress(
                canonical_json(checkpoint.to_json_dict()).encode(), 6)
            self._atomic_write(path, payload)
        if label is not None:
            self._atomic_write(self._latest_path(label),
                               checkpoint_id.encode())
        return checkpoint_id

    @staticmethod
    def _atomic_write(path, payload):
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, checkpoint_id):
        """Load one artifact by content address."""
        with open(self._path(checkpoint_id), "rb") as handle:
            payload = zlib.decompress(handle.read())
        return Checkpoint.from_json_dict(json.loads(payload.decode()))

    def latest(self, label):
        """The most recent checkpoint saved under ``label``, or None."""
        try:
            with open(self._latest_path(label), "r") as handle:
                checkpoint_id = handle.read().strip()
        except FileNotFoundError:
            return None
        if not checkpoint_id:
            return None
        return self.load(checkpoint_id)

    def ids(self):
        """All stored checkpoint ids (sorted)."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(name[:-len(".ckpt.z")] for name in names
                      if name.endswith(".ckpt.z"))
