"""Rule hot-reload at checkpoint barriers.

Swapping isolation rules without a restart is the live-operations half
of the checkpoint story: operators tighten or relax a tenant's
isolation level while the run keeps going.  The safety contract is the
same as the checkpoint's -- a reload only happens at a quiescent
barrier -- plus one penalty-lifetime invariant: **no penalty outlives
the rule that armed it**.  A reload that changes a pBox's rule flushes
that pBox's penalty machinery:

- a pending (not yet delivered) delay penalty is dropped and its
  budget reservation released;
- an open shared-thread defer window is clamped to *now*;
- a priority-mode demotion is lifted;
- the heal trends and safe-mode cooldowns keyed by the pBox are
  dropped (they model the *old* rule's effectiveness).

Reloading a rule set identical to the current one is a pure no-op: no
epoch bump, no flush, nothing observable -- the golden no-op test runs
a reload barrier every cadence and asserts the corpus digest does not
move.
"""

from repro.core.rules import IsolationRule


class ReloadResult:
    """Outcome of one :meth:`RuleReloader.reload` call."""

    def __init__(self, epoch, changed_psids, noop, at_us):
        self.epoch = epoch
        self.changed_psids = list(changed_psids)
        self.noop = noop
        self.at_us = at_us

    def __repr__(self):
        return "ReloadResult(epoch=%d, changed=%d, noop=%s, at_us=%d)" % (
            self.epoch, len(self.changed_psids), self.noop, self.at_us)


class RuleReloader:
    """Swap isolation rules on a live manager at a checkpoint barrier.

    Works against a plain :class:`~repro.core.manager.PBoxManager` or a
    :class:`~repro.core.shards.ShardedPBoxManager` (shards are walked
    in sorted-key order).  ``epoch`` counts effective (non-no-op)
    reloads; ``history`` records every call.
    """

    def __init__(self, manager):
        self.manager = manager
        self.epoch = 0
        self.history = []
        self._changed_at = {}   # psid -> virtual time of last rule change

    # -- plumbing --------------------------------------------------------

    def _shards(self):
        shards = getattr(self.manager, "_shards", None)
        if shards is None:
            return [self.manager]
        return [shards[key] for key in sorted(shards)]

    @staticmethod
    def _rule_for(new_rule, pbox):
        """Resolve the requested rule for one pBox.

        ``new_rule`` may be an :class:`IsolationRule` (applied to every
        pBox), a ``to_dict`` payload, or a callable
        ``(pbox) -> rule | dict | None`` (None leaves the pBox alone).
        """
        if callable(new_rule) and not isinstance(new_rule, IsolationRule):
            new_rule = new_rule(pbox)
            if new_rule is None:
                return None
        if isinstance(new_rule, dict):
            return IsolationRule.from_dict(new_rule)
        return new_rule

    # -- the reload ------------------------------------------------------

    def reload(self, new_rule, now_us=None):
        """Apply ``new_rule`` across all live pBoxes; returns the result.

        Identical rules are recognized with
        :meth:`~repro.core.rules.IsolationRule.same_as` and skipped;
        when every pBox skips, the whole call is a pure no-op (no epoch
        bump, no state touched).  Call this from a checkpoint barrier:
        the kernel is quiescent there, so the flush cannot race a
        penalty mid-delivery.
        """
        if now_us is None:
            now_us = self.manager.kernel.now_us
        changed = []
        for shard in self._shards():
            for psid in sorted(shard._pboxes):
                pbox = shard._pboxes[psid]
                rule = self._rule_for(new_rule, pbox)
                if rule is None or rule.same_as(pbox.rule):
                    continue
                changed.append((shard, pbox, rule))
        if not changed:
            result = ReloadResult(self.epoch, [], True, now_us)
            self.history.append(result)
            return result
        self.epoch += 1
        for shard, pbox, rule in changed:
            pbox.rule = rule
            self._flush(shard, pbox, now_us)
            self._changed_at[pbox.psid] = now_us
        result = ReloadResult(
            self.epoch, sorted(pbox.psid for _, pbox, _ in changed),
            False, now_us)
        self.history.append(result)
        return result

    @staticmethod
    def _flush(shard, pbox, now_us):
        """Retire every penalty armed under the pBox's previous rule."""
        if pbox.pending_penalty_us > 0:
            if shard.penalty_budget is not None:
                shard.penalty_budget.release(pbox.pending_penalty_us)
            pbox.pending_penalty_us = 0
            pbox.pending_penalty_flow = None
        if pbox.penalty_until_us > now_us:
            pbox.penalty_until_us = now_us
        thread = pbox.thread
        if thread is not None and thread.demoted_until_us:
            # 0, not now_us: the scheduler's fast path truth-tests the
            # field (``not head.demoted_until_us``), so any non-zero
            # value keeps the thread on the slow path.
            thread.demoted_until_us = 0
        shard._safe_until.pop(pbox.psid, None)
        stale_pairs = [pair for pair in shard._heal_trend
                       if pbox.psid in pair]
        for pair in stale_pairs:
            del shard._heal_trend[pair]

    # -- the invariant ---------------------------------------------------

    def check_invariant(self):
        """No penalty outlives the rule that armed it; returns violations.

        For every pBox whose rule was changed by a reload, any pending
        penalty must have been queued at or after the change (the flush
        dropped everything older; new arms stamp ``pending_since_us``
        with the current time).  Returns a list of human-readable
        violation strings -- empty means the invariant holds.
        """
        violations = []
        for shard in self._shards():
            for psid in sorted(shard._pboxes):
                changed_at = self._changed_at.get(psid)
                if changed_at is None:
                    continue
                pbox = shard._pboxes[psid]
                if pbox.pending_penalty_us > 0 \
                        and pbox.pending_since_us < changed_at:
                    violations.append(
                        "pbox %d: pending penalty of %dus queued at "
                        "t=%dus predates the rule change at t=%dus"
                        % (psid, pbox.pending_penalty_us,
                           pbox.pending_since_us, changed_at))
        return violations
