"""Deterministic checkpoint/restore, supervised resume, rule hot-reload.

The paper's isolation machinery only pays off if it survives failure: a
detector that loses its state on a crash un-isolates every tenant at
once.  This package is the control plane for that robustness story:

- :mod:`repro.ckpt.state` -- pure, canonical walkers over the full
  simulation state (kernel + pBox layer);
- :mod:`repro.ckpt.snapshot` -- versioned, content-addressed checkpoint
  artifacts and the on-disk store;
- :mod:`repro.ckpt.driver` -- the stepped case driver that pauses the
  kernel at quiescent virtual-time barriers to take checkpoints;
- :mod:`repro.ckpt.restore` -- replay-based restore: re-execute to the
  cut, verify byte-exactly against the checkpoint, continue;
- :mod:`repro.ckpt.supervisor` -- :class:`RunSupervisor`, which detects
  worker crash/timeout and resumes from the last good checkpoint;
- :mod:`repro.ckpt.reload` -- :class:`RuleReloader`, swapping isolation
  rules at a checkpoint barrier without restart;
- :mod:`repro.ckpt.bisect` -- golden-digest divergence localization.

Restore semantics (honest fine print)
-------------------------------------

Simulated threads are Python generators; their frames cannot be
serialized.  A checkpoint therefore stores the *replay spec* (case,
seed, duration, cadence), the cut point, and a canonical walk of every
piece of observable state -- and restore means deterministic
re-execution from t=0 to the cut, verified byte-exactly against both
the trace digest and the state walk, then continuing to completion.
Because the kernel is bit-for-bit deterministic, the continued stream
is byte-identical to the uncheckpointed run -- the restore-equality
suite proves it across the whole golden corpus.  What the checkpoint
buys is *trust* (divergence is caught at the cut, not at the end) and
*bounded loss* (a crashed run resumes from its spec instead of being
re-debugged), at the cost of replayed virtual time.
"""

from repro.ckpt.bisect import bisect_case
from repro.ckpt.driver import CADENCE_US, CheckpointingDriver, WorkerKilled
from repro.ckpt.reload import ReloadResult, RuleReloader
from repro.ckpt.restore import RestoreMismatch, checkpoint_run, resume_case
from repro.ckpt.snapshot import (
    CKPT_SCHEMA,
    Checkpoint,
    CheckpointStore,
    take_checkpoint,
)
from repro.ckpt.state import (
    STATE_SCHEMA,
    canonical_json,
    first_difference,
    state_digest,
    walk_state,
)
from repro.ckpt.supervisor import RunSupervisor

__all__ = [
    "CADENCE_US",
    "CKPT_SCHEMA",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointingDriver",
    "ReloadResult",
    "RestoreMismatch",
    "RuleReloader",
    "RunSupervisor",
    "STATE_SCHEMA",
    "WorkerKilled",
    "bisect_case",
    "canonical_json",
    "checkpoint_run",
    "first_difference",
    "resume_case",
    "state_digest",
    "take_checkpoint",
    "walk_state",
]
