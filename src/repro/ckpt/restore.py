"""Replay-based restore: re-execute to the cut, verify, continue.

Simulated threads are generators, so a checkpoint cannot serialize
their frames; what it *can* do -- because the kernel is bit-for-bit
deterministic -- is record the replay spec and verify, byte-exactly,
that a fresh process re-executing from t=0 arrives at the cut in the
identical state.  :func:`resume_case` does exactly that: it replays the
spec with the same stepped driver, and at the cut barrier checks both
the rolling trace digest (every event since t=0) and the canonical
state-walk digest (every piece of observable state at the cut) against
the checkpoint before letting the run continue to completion.  Any
divergence raises :class:`RestoreMismatch` with a localized
explanation instead of silently producing a wrong result.
"""

from repro.ckpt.driver import CADENCE_US, CheckpointingDriver
from repro.ckpt.state import first_difference, state_digest, walk_state


class RestoreMismatch(RuntimeError):
    """Replay reached the cut in a different state than the checkpoint."""


def _build_harness(faults, seed, case_id):
    if not faults:
        return None
    from repro.faults import ChaosHarness

    return ChaosHarness(
        [kind.strip() for kind in faults.split(",") if kind.strip()],
        seed=seed, case_id=case_id)


def _run_pbox_case(case_id, duration_s, seed, driver, harness,
                   manager_factory, observer, digest):
    """One pBox case run with ``digest`` attached; returns the CaseRun."""
    from repro.cases import Solution, get_case, run_case
    from repro.sim.thread import reset_thread_ids

    reset_thread_ids()

    def _observer(env):
        digest.attach(env.kernel.trace)
        if harness is not None:
            harness.observer(env)
        if observer is not None:
            observer(env)

    return run_case(get_case(case_id), Solution.PBOX, seed=seed,
                    duration_s=duration_s, observer=_observer,
                    manager_factory=manager_factory, driver=driver)


def checkpoint_run(case_id, duration_s=None, seed=1, cadence_us=CADENCE_US,
                   store=None, kill_at_us=None, faults=None, barriers=None,
                   manager_factory=None, observer=None):
    """Run ``case_id`` under pBox, checkpointing at every cadence barrier.

    Returns ``{"document", "run", "driver", "harness"}``; the document
    is the exact golden document the uncheckpointed run produces (the
    stepped driver and the pure walkers change nothing -- the
    restore-equality suite proves it corpus-wide).  With ``faults`` a
    chaos harness is attached, same cocktail syntax as the runner.
    ``kill_at_us`` injects a worker crash (the driver raises
    :class:`~repro.ckpt.driver.WorkerKilled` carrying the last good
    checkpoint) -- the supervisor's crash-resume leg drives this.
    """
    from repro.obs.golden import TraceDigest, golden_stats

    spec = {"case_id": case_id, "duration_s": duration_s, "seed": seed,
            "cadence_us": cadence_us}
    if faults:
        spec["faults"] = faults
    harness = _build_harness(faults, seed, case_id)
    digest = TraceDigest()
    driver = CheckpointingDriver(spec, digest, cadence_us=cadence_us,
                                 store=store, kill_at_us=kill_at_us,
                                 barriers=barriers)
    run = _run_pbox_case(case_id, duration_s, seed, driver, harness,
                         manager_factory, observer, digest)
    return {
        "document": digest.document(stats=golden_stats(run)),
        "run": run,
        "driver": driver,
        "harness": harness,
    }


def _verify_at_cut(env, checkpoint, digest):
    """Byte-exact comparison of the replay against the checkpoint."""
    if digest.events != checkpoint.events \
            or digest.digest_so_far() != checkpoint.cut_digest:
        every = digest.checkpoint_every
        window = min(len(digest.checkpoints),
                     len(checkpoint.trace_checkpoints))
        for index, (have, want) in enumerate(
                zip(digest.checkpoints, checkpoint.trace_checkpoints)):
            if have != want:
                window = index
                break
        raise RestoreMismatch(
            "replay diverged from checkpoint at cut t=%dus: events %d vs "
            "%d, first divergent window %d (events %d..%d)"
            % (checkpoint.cut_us, digest.events, checkpoint.events,
               window, window * every, (window + 1) * every - 1))
    manager = None if env.runtime is None else env.runtime.manager
    walk = walk_state(env.kernel, manager)
    if state_digest(walk) != checkpoint.state_dig:
        located = first_difference(checkpoint.state, walk) \
            or ("<digest only>", "?", "?")
        raise RestoreMismatch(
            "replayed state differs from checkpoint at cut t=%dus: "
            "%s (expected %s, got %s)"
            % (checkpoint.cut_us, located[0], located[1], located[2]))


def resume_case(checkpoint, barriers=None, manager_factory=None,
                observer=None):
    """Resume a checkpointed run in this process; returns the outcome.

    Replays the checkpoint's spec from t=0 with the same stepped
    cadence, verifies the cut barrier byte-exactly (trace digest and
    state-walk digest), then continues to the spec's full duration.
    Returns ``{"document", "run", "harness"}`` where the document is
    byte-identical to the uncheckpointed run's golden document -- the
    restore-equality suite asserts this for every registry case.

    ``barriers`` must be the same barrier callbacks the original run
    used (a rule reload that happened before the cut is part of the
    state being replayed); they keep running after the cut too, exactly
    as the original run would have.
    """
    from repro.obs.golden import TraceDigest, golden_stats

    spec = checkpoint.spec
    case_id = spec["case_id"]
    seed = spec.get("seed", 1)
    cadence_us = spec.get("cadence_us", CADENCE_US)
    cut_us = checkpoint.cut_us
    harness = _build_harness(spec.get("faults"), seed, case_id)
    digest = TraceDigest()
    barriers = list(barriers or [])
    verified = []

    def _driver(env):
        kernel = env.kernel
        duration_us = env.duration_us
        t = cadence_us
        while t < duration_us:
            kernel.run(until_us=t)
            for barrier in barriers:
                barrier(env, t)
            if t == cut_us:
                _verify_at_cut(env, checkpoint, digest)
                verified.append(t)
            t += cadence_us
        kernel.run(until_us=duration_us)

    run = _run_pbox_case(case_id, spec.get("duration_s"), seed, _driver,
                         harness, manager_factory, observer, digest)
    if not verified:
        raise RestoreMismatch(
            "cut t=%dus is not a cadence barrier of this run "
            "(cadence %dus, duration %dus)"
            % (cut_us, cadence_us, run.env.duration_us))
    return {
        "document": digest.document(stats=golden_stats(run)),
        "run": run,
        "harness": harness,
    }
