"""Shared plumbing for the application models.

Two pieces every model uses:

- :class:`Instrumentation`: thin wrapper over the pBox runtime that
  application code calls at the state-event points (the moral equivalent
  of the ``update_pbox`` calls developers add, Figure 9).  It also offers
  ``acquire_*`` helpers that bundle PREPARE -> wait -> ENTER+HOLD around
  the simulator's blocking primitives, since that is by far the most
  common annotation pattern.
- :class:`Connection`: the per-client activity boundary.  ``open``
  creates the connection's pBox (like ``do_handle_one_connection`` in
  Figure 8), ``execute`` wraps each request in activate/freeze (like
  ``do_command``), and ``close`` releases the pBox.
"""

from repro.core.events import StateEvent
from repro.core.rules import IsolationRule


class AppConfig:
    """Base class for per-application tuning knobs.

    Subclasses are plain attribute bags; keeping them as classes (rather
    than dicts) documents every knob and gives tests something to vary.
    """

    isolation_level = 50  # paper default for the evaluation (Section 6.2)

    def make_rule(self):
        """Isolation rule for connection pBoxes."""
        return IsolationRule(isolation_level=self.isolation_level)


class Instrumentation:
    """State-event annotations bound to one pBox runtime.

    All methods are safe to call on a disabled runtime (they become
    no-ops), which is how the "vanilla" builds used for baseline
    measurements run the exact same application code.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        kernel = runtime.kernel
        self._kernel = kernel
        # Application-side virtual-resource tracepoints: acquire maps to
        # PREPARE, hold to HOLD, release to UNHOLD (ENTER needs no own
        # point -- it closes the acquire started by PREPARE).
        self._tp_acquire = kernel.trace.point("vres.acquire")
        self._tp_hold = kernel.trace.point("vres.hold")
        self._tp_release = kernel.trace.point("vres.release")

    def _fire(self, tp, key):
        kernel = self._kernel
        thread = kernel.current_thread
        tp.fire(kernel.now_us, key=key,
                tid=None if thread is None else thread.tid)

    # -- raw state events ------------------------------------------------

    def prepare(self, key):
        """The current pBox starts being deferred by ``key``."""
        if self._tp_acquire.active:
            self._fire(self._tp_acquire, key)
        self.runtime.update_pbox(key, StateEvent.PREPARE)

    def enter(self, key):
        """The current pBox is no longer deferred by ``key``."""
        self.runtime.update_pbox(key, StateEvent.ENTER)

    def hold(self, key):
        """The current pBox is holding ``key``."""
        if self._tp_hold.active:
            self._fire(self._tp_hold, key)
        self.runtime.update_pbox(key, StateEvent.HOLD)

    def unhold(self, key):
        """The current pBox released ``key``."""
        if self._tp_release.active:
            self._fire(self._tp_release, key)
        self.runtime.update_pbox(key, StateEvent.UNHOLD)

    # -- bundled patterns -------------------------------------------------

    def acquire_mutex(self, mutex):
        """PREPARE -> lock -> ENTER + HOLD around a mutex."""
        self.prepare(mutex)
        yield from mutex.acquire()
        self.enter(mutex)
        self.hold(mutex)

    def release_mutex(self, mutex):
        """Release a mutex and signal UNHOLD."""
        mutex.release()
        self.unhold(mutex)

    def acquire_shared(self, rwlock):
        """Annotated shared acquisition of an RWLock."""
        self.prepare(rwlock)
        yield from rwlock.acquire_shared()
        self.enter(rwlock)
        self.hold(rwlock)

    def release_shared(self, rwlock):
        """Release a shared hold and signal UNHOLD."""
        rwlock.release_shared()
        self.unhold(rwlock)

    def acquire_exclusive(self, rwlock):
        """Annotated exclusive acquisition of an RWLock."""
        self.prepare(rwlock)
        yield from rwlock.acquire_exclusive()
        self.enter(rwlock)
        self.hold(rwlock)

    def release_exclusive(self, rwlock):
        """Release an exclusive hold and signal UNHOLD."""
        rwlock.release_exclusive()
        self.unhold(rwlock)

    def acquire_semaphore(self, semaphore, n=1):
        """Annotated acquisition of ``n`` semaphore units."""
        self.prepare(semaphore)
        yield from semaphore.acquire(n)
        self.enter(semaphore)
        self.hold(semaphore)

    def release_semaphore(self, semaphore, n=1):
        """Return semaphore units and signal UNHOLD."""
        semaphore.release(n)
        self.unhold(semaphore)


class Connection:
    """One client connection: the pBox activity boundary (Figure 8).

    Subclasses implement ``_handle(request)`` as a generator performing
    the application work for one request.

    ``rule`` overrides the isolation rule for this connection's pBox;
    by default the app config's rule applies.  Passing a loose
    (background-style) rule lets a case model batch clients -- an
    analytics connection, say -- whose pBox should be blamable as an
    aggressor but not protected as a victim.
    """

    def __init__(self, app, name, rule=None):
        self.app = app
        self.name = name
        self.rule = rule
        self.psid = None

    @property
    def runtime(self):
        """The pBox runtime linked into the application."""
        return self.app.runtime

    @property
    def instr(self):
        """The application's :class:`Instrumentation` helper."""
        return self.app.instr

    def open(self):
        """Create this connection's pBox (bound to the calling thread)."""
        rule = self.rule if self.rule is not None else (
            self.app.config.make_rule())
        self.psid = self.runtime.create_pbox(rule)
        yield from self._on_open()

    def _on_open(self):
        """Hook for subclass setup; default does nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    def execute(self, request):
        """Handle one request inside an activate/freeze window."""
        self.runtime.activate_pbox(self.psid)
        result = yield from self._handle(request)
        self.runtime.freeze_pbox(self.psid)
        return result

    def _handle(self, request):
        """Application-specific request handling (override)."""
        raise NotImplementedError

    def close(self):
        """Release the connection's pBox."""
        yield from self._on_close()
        if self.psid is not None:
            self.runtime.release_pbox(self.psid)
            self.psid = None

    def _on_close(self):
        """Hook for subclass teardown; default does nothing."""
        return
        yield  # pragma: no cover - makes this a generator
