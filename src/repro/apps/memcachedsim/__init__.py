"""Behavioural Memcached model (event-driven key-value store, case c16)."""

from repro.apps.memcachedsim.server import (
    MemcachedConfig,
    MemcachedConnection,
    MemcachedServer,
)

__all__ = ["MemcachedConfig", "MemcachedConnection", "MemcachedServer"]
