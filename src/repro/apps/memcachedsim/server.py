"""Memcached server model: worker threads + the cache/LRU lock (c16).

Case c16 is the one the paper does *not* mitigate: contention on the
cache-replacement lock is light, requests are tens of microseconds, and
the cost of the extra pBox operations exceeds the benefit of the rare
mitigation actions.  The model keeps those proportions: GETs take the
lock for ~10 us, SETs that evict hold it for ~150 us, and the
per-operation runtime costs (Figure 10 defaults) are charged as usual.
"""

from repro.apps.base import AppConfig, Instrumentation
from repro.apps.eventdriven import EventDrivenConnection, PBoxWorkerPool
from repro.sim.primitives import Mutex
from repro.sim.syscalls import Compute


class MemcachedConfig(AppConfig):
    """Tuning knobs of the Memcached model."""

    def __init__(self, isolation_level=50, workers=4, get_us=30, set_us=40,
                 lock_get_us=10, lock_set_us=20, lock_evict_us=100,
                 evict_probability=0.7):
        self.isolation_level = isolation_level
        self.workers = workers
        self.get_us = get_us
        self.set_us = set_us
        self.lock_get_us = lock_get_us
        self.lock_set_us = lock_set_us
        self.lock_evict_us = lock_evict_us
        self.evict_probability = evict_probability


class MemcachedServer:
    """Event-driven key-value store with a global cache lock."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or MemcachedConfig()
        self.instr = Instrumentation(runtime)
        self.cache_lock = Mutex(kernel, "cache_lock")
        self.rng = kernel.rng("memcached-evictions")
        self.pool = PBoxWorkerPool(
            kernel, runtime, self.config.workers, self._handle_task,
            name="memcached",
        )

    def connect(self, name):
        """Create a client connection."""
        return MemcachedConnection(self, name)

    def start(self, spawn=None):
        """Start the worker pool threads."""
        return self.pool.start(spawn)

    def _handle_task(self, task):
        request = task.request
        kind = request["kind"]
        config = self.config
        if kind == "get":
            yield Compute(us=config.get_us)
            yield from self.instr.acquire_mutex(self.cache_lock)
            yield Compute(us=config.lock_get_us)  # LRU bump
            self.instr.release_mutex(self.cache_lock)
        elif kind == "set":
            yield Compute(us=config.set_us)
            yield from self.instr.acquire_mutex(self.cache_lock)
            if self.rng.random() < config.evict_probability:
                yield Compute(us=config.lock_evict_us)  # LRU eviction walk
            else:
                yield Compute(us=config.lock_set_us)
            self.instr.release_mutex(self.cache_lock)
        else:
            raise ValueError("unknown Memcached request kind %r" % kind)


class MemcachedConnection(EventDrivenConnection):
    """One Memcached client connection (shared-thread pBox)."""
