"""PostgreSQL virtual resources for cases c6-c10."""

from repro.sim.primitives import Mutex, RWLock
from repro.sim.syscalls import Compute, Sleep


class TableIndex:
    """A table index plus MVCC bookkeeping (case c6).

    A large in-progress INSERT transaction leaves index entries whose
    visibility every concurrent scan has to resolve (checking the
    inserter's transaction status per tuple), on top of waiting out the
    inserter's exclusive page-level bursts.
    """

    def __init__(self, kernel, instr, per_tuple_check_us=0.3,
                 max_checked_tuples=3_000):
        self.kernel = kernel
        self.instr = instr
        self.per_tuple_check_us = per_tuple_check_us
        self.max_checked_tuples = max_checked_tuples
        self.lock = RWLock(kernel, "index_page_lock", policy="reader_pref")
        self.in_progress_tuples = 0

    def insert_batch(self, rows, batch_work_us):
        """Insert ``rows`` tuples under the exclusive page lock."""
        yield from self.instr.acquire_exclusive(self.lock)
        yield Compute(us=batch_work_us)
        self.in_progress_tuples += rows
        self.instr.release_exclusive(self.lock)

    def end_insert_txn(self):
        """The inserting transaction finished; tuples become resolved."""
        self.in_progress_tuples = 0

    def scan(self, base_us):
        """Scan the index, paying the MVCC cost of in-progress tuples."""
        yield from self.instr.acquire_shared(self.lock)
        checked = min(self.in_progress_tuples, self.max_checked_tuples)
        yield Compute(us=base_us + int(checked * self.per_tuple_check_us))
        self.instr.release_shared(self.lock)


class VacuumState:
    """Dead-row accounting driving VACUUM FULL (case c9)."""

    def __init__(self, kernel, instr, trigger_dead_rows=500,
                 rows_per_batch=400, batch_us=40_000, gap_us=500):
        self.kernel = kernel
        self.instr = instr
        self.trigger_dead_rows = trigger_dead_rows
        self.rows_per_batch = rows_per_batch
        self.batch_us = batch_us
        self.gap_us = gap_us
        self.table_lock = RWLock(kernel, "relation_lock", policy="reader_pref")
        self.dead_rows = 0
        self.vacuumed_total = 0
        self._tp_note = kernel.trace.point("app.note")

    def add_dead_rows(self, rows):
        """Updates/deletes leave dead row versions behind."""
        self.dead_rows += rows

    @property
    def needs_vacuum(self):
        """True when the dead-row count crosses the trigger."""
        return self.dead_rows >= self.trigger_dead_rows

    def vacuum_batch(self):
        """Compact one batch under the exclusive relation lock."""
        if self.dead_rows <= 0:
            return 0
        yield from self.instr.acquire_exclusive(self.table_lock)
        batch = min(self.rows_per_batch, self.dead_rows)
        yield Compute(us=self.batch_us)
        self.dead_rows -= batch
        self.vacuumed_total += batch
        self.instr.release_exclusive(self.table_lock)
        if self._tp_note.active:
            self._tp_note.fire(self.kernel.now_us, what="vacuum.batch",
                               batch=batch, dead_rows=self.dead_rows)
        return batch


class WriteAheadLog:
    """The WAL insert/flush path with group commit (case c10).

    Writers copy their records into the WAL buffer under the insert
    lock; commits flush under the same lock, and a large pending record
    (the noisy bulk writer) makes the group flush long for everyone.
    """

    def __init__(self, kernel, instr, copy_us_per_kb=10, flush_us_per_kb=150,
                 flush_floor_us=500):
        self.kernel = kernel
        self.instr = instr
        self.copy_us_per_kb = copy_us_per_kb
        self.flush_us_per_kb = flush_us_per_kb
        self.flush_floor_us = flush_floor_us
        self.lock = Mutex(kernel, "wal_insert_lock")
        self.pending_kb = 0
        self.flushes = 0
        self._tp_note = kernel.trace.point("app.note")

    def append(self, record_kb):
        """Copy a record into the WAL buffer under the insert lock."""
        yield from self.instr.acquire_mutex(self.lock)
        yield Compute(us=max(1, record_kb * self.copy_us_per_kb))
        self.pending_kb += record_kb
        self.instr.release_mutex(self.lock)

    def flush(self):
        """Group-commit flush: whoever flushes pays for all pending data."""
        yield from self.instr.acquire_mutex(self.lock)
        pending = self.pending_kb
        self.pending_kb = 0
        yield Sleep(us=self.flush_floor_us + pending * self.flush_us_per_kb)
        self.flushes += 1
        self.instr.release_mutex(self.lock)
        if self._tp_note.active:
            self._tp_note.fire(self.kernel.now_us, what="wal.flush",
                               kb=pending)
