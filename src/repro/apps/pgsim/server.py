"""The PostgreSQL server model: backends, request kinds, vacuum process."""

from repro.apps.base import AppConfig, Connection, Instrumentation
from repro.apps.pgsim.resources import TableIndex, VacuumState, WriteAheadLog
from repro.core.rules import IsolationRule
from repro.sim.primitives import Mutex, RWLock
from repro.sim.syscalls import Compute, Sleep


class PGConfig(AppConfig):
    """Tuning knobs of the PostgreSQL model."""

    def __init__(self, isolation_level=50, background_isolation_level=500,
                 lock_mgr_fast_us=50, index_tuple_check_us=0.3,
                 vacuum_batch_us=40_000, vacuum_gap_us=500,
                 vacuum_trigger=500, vacuum_idle_us=20_000):
        self.isolation_level = isolation_level
        self.background_isolation_level = background_isolation_level
        self.lock_mgr_fast_us = lock_mgr_fast_us
        self.index_tuple_check_us = index_tuple_check_us
        self.vacuum_batch_us = vacuum_batch_us
        self.vacuum_gap_us = vacuum_gap_us
        self.vacuum_trigger = vacuum_trigger
        self.vacuum_idle_us = vacuum_idle_us

    def make_background_rule(self):
        """Loose rule for background processes (vacuum)."""
        return IsolationRule(isolation_level=self.background_isolation_level)


class PostgresServer:
    """Aggregates the PostgreSQL virtual resources and the vacuum worker."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or PGConfig()
        self.instr = Instrumentation(runtime)
        self.index = TableIndex(
            kernel, self.instr,
            per_tuple_check_us=self.config.index_tuple_check_us,
        )
        self.lock_manager = Mutex(kernel, "lock_manager_partition")
        self.lwlock = RWLock(kernel, "lwlock_shared", policy="reader_pref")
        self.vacuum = VacuumState(
            kernel, self.instr,
            trigger_dead_rows=self.config.vacuum_trigger,
            batch_us=self.config.vacuum_batch_us,
            gap_us=self.config.vacuum_gap_us,
        )
        self.wal = WriteAheadLog(kernel, self.instr)
        self.stopped = False

    def connect(self, name):
        """Create a backend connection (one per client process)."""
        return PGConnection(self, name)

    def stop(self):
        """Ask background processes to wind down."""
        self.stopped = True

    def vacuum_process_body(self):
        """The VACUUM FULL worker (noisy background activity of c9)."""
        psid = self.runtime.create_pbox(self.config.make_background_rule())
        while not self.stopped:
            if self.vacuum.needs_vacuum or self.vacuum.dead_rows > 0:
                self.runtime.activate_pbox(psid)
                yield from self.vacuum.vacuum_batch()
                self.runtime.freeze_pbox(psid)
                yield Sleep(us=self.vacuum.gap_us)
            else:
                yield Sleep(us=self.config.vacuum_idle_us)
        self.runtime.release_pbox(psid)


class PGConnection(Connection):
    """One backend process; dispatches the request kinds of c6-c10."""

    def _handle(self, request):
        kind = request["kind"]
        handler = getattr(self, "_do_" + kind, None)
        if handler is None:
            raise ValueError("unknown PostgreSQL request kind %r" % kind)
        yield from handler(request)

    # -- c6: index MVCC ----------------------------------------------------

    def _do_bulk_insert(self, request):
        """A long INSERT transaction filling the index (noisy of c6)."""
        batches = request.get("batches", 10)
        rows = request.get("rows_per_batch", 200)
        for _ in range(batches):
            yield from self.app.index.insert_batch(
                rows, request.get("batch_work_us", 5_000)
            )
            yield Compute(us=request.get("between_batches_us", 300))
        self.app.index.end_insert_txn()

    def _do_indexed_select(self, request):
        """A SELECT paying MVCC checks on in-progress tuples (victim c6)."""
        yield from self.app.index.scan(request.get("base_us", 300))
        yield Compute(us=request.get("work_us", 100))

    # -- c7: lock manager ---------------------------------------------------

    def _do_lock_table_scan(self, request):
        """SELECT FOR UPDATE over a big table: holds the lock-manager
        partition while taking row locks (noisy of c7)."""
        yield from self.instr.acquire_mutex(self.app.lock_manager)
        yield Compute(us=request.get("scan_us", 150_000))
        self.instr.release_mutex(self.app.lock_manager)

    def _do_other_table_query(self, request):
        """A query on a different table that still needs the lock-manager
        partition for its table lock (victim of c7)."""
        yield from self.instr.acquire_mutex(self.app.lock_manager)
        yield Compute(us=self.app.config.lock_mgr_fast_us)
        self.instr.release_mutex(self.app.lock_manager)
        yield Compute(us=request.get("work_us", 300))

    # -- c8: LWLock ----------------------------------------------------------

    def _do_lw_shared(self, request):
        """Shared-mode LWLock hold (noisy stream of c8)."""
        yield from self.instr.acquire_shared(self.app.lwlock)
        yield Compute(us=request.get("hold_us", 8_000))
        self.instr.release_shared(self.app.lwlock)

    def _do_lw_exclusive(self, request):
        """Exclusive-mode LWLock acquisition (victim of c8)."""
        yield from self.instr.acquire_exclusive(self.app.lwlock)
        yield Compute(us=request.get("hold_us", 200))
        self.instr.release_exclusive(self.app.lwlock)
        yield Compute(us=request.get("work_us", 300))

    # -- c9: vacuum full -----------------------------------------------------

    def _do_table_query(self, request):
        """A query on the vacuumed table (victim of c9).

        Scans pay for dead row versions left behind by churn: if the
        vacuum is starved (e.g. by an over-long penalty), the bloat
        slows every query -- the reason stopping the vacuum outright is
        not a fix (Table 4's over-penalization failure mode).
        """
        yield from self.instr.acquire_shared(self.app.vacuum.table_lock)
        bloat_extra = min(self.app.vacuum.dead_rows, 150_000) // 100
        yield Compute(us=request.get("work_us", 400) + bloat_extra)
        self.instr.release_shared(self.app.vacuum.table_lock)
        self.app.vacuum.add_dead_rows(request.get("dead_rows", 2))

    def _do_fill_dead_rows(self, request):
        """A churn writer creating dead rows (sets up c9's backlog)."""
        yield Compute(us=request.get("work_us", 200))
        self.app.vacuum.add_dead_rows(request.get("dead_rows", 200))

    # -- c10: WAL group commit -------------------------------------------------

    def _do_wal_small_commit(self, request):
        """A small transaction committing through the WAL (victim c10)."""
        yield Compute(us=request.get("work_us", 200))
        yield from self.app.wal.append(request.get("record_kb", 2))
        yield from self.app.wal.flush()

    def _do_wal_big_commit(self, request):
        """A bulk writer committing a huge WAL record (noisy c10)."""
        yield Compute(us=request.get("work_us", 500))
        yield from self.app.wal.append(request.get("record_kb", 256))
        yield from self.app.wal.flush()
