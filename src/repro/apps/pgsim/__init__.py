"""Behavioural PostgreSQL model (multi-process architecture).

Covers the subsystems behind interference cases c6-c10:

- the table index with MVCC visibility checks against in-progress
  inserts (c6),
- the lock manager serializing table-level locking across tables (c7),
- LWLocks with shared/exclusive modes and reader preference (c8),
- VACUUM FULL holding the table lock while compacting dead rows (c9),
- the write-ahead log with group commit (c10).

PostgreSQL is multi-process; in the simulator each backend process is a
:class:`~repro.sim.thread.SimThread` (the kernel schedules processes and
threads identically, which is also true of Linux).
"""

from repro.apps.pgsim.resources import TableIndex, VacuumState, WriteAheadLog
from repro.apps.pgsim.server import PGConfig, PGConnection, PostgresServer

__all__ = [
    "PGConfig",
    "PGConnection",
    "PostgresServer",
    "TableIndex",
    "VacuumState",
    "WriteAheadLog",
]
