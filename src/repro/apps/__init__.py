"""Behavioural models of the five evaluated applications.

The paper applies pBox to MySQL, PostgreSQL, Apache, Varnish, and
Memcached.  Re-implementing those servers is out of scope (and beside the
point); what each model reproduces faithfully is the *subsystem that the
interference flows through*: the virtual resources named in Table 3, the
blocking structure around them (Figures 4 and 9), and the activity
boundaries where pBox APIs are placed (Figure 8).
"""

from repro.apps.base import AppConfig, Connection, Instrumentation

__all__ = ["AppConfig", "Connection", "Instrumentation"]
