"""Behavioural Apache httpd model (multi-threaded worker MPM).

Covers the pools behind interference cases c11-c13: the worker thread
pool capped by MaxClients, the mod_fcgid backend process slots, and the
php-fpm ``pm.max_children`` pool.
"""

from repro.apps.apachesim.server import ApacheConfig, ApacheConnection, ApacheServer

__all__ = ["ApacheConfig", "ApacheConnection", "ApacheServer"]
