"""Apache server model: worker pool, fcgid slots, php-fpm children.

All three contended resources are counting pools modeled as annotated
semaphores: a request *holds* a unit for its service time, and waiters
accumulate deferring time the pBox manager can see.
"""

from repro.apps.base import AppConfig, Connection, Instrumentation
from repro.sim.primitives import Semaphore
from repro.sim.syscalls import Compute, Sleep


class ApacheConfig(AppConfig):
    """Tuning knobs of the Apache model."""

    def __init__(self, isolation_level=50, max_workers=4, fcgid_slots=2,
                 fpm_children=2, accept_us=30):
        self.isolation_level = isolation_level
        self.max_workers = max_workers
        self.fcgid_slots = fcgid_slots
        self.fpm_children = fpm_children
        self.accept_us = accept_us


class ApacheServer:
    """Aggregates the Apache pools (cases c11-c13)."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or ApacheConfig()
        self.instr = Instrumentation(runtime)
        self.worker_pool = Semaphore(
            kernel, units=self.config.max_workers, name="apache_workers"
        )
        self.fcgid_slots = Semaphore(
            kernel, units=self.config.fcgid_slots, name="fcgid_slots"
        )
        self.fpm_children = Semaphore(
            kernel, units=self.config.fpm_children, name="fpm_children"
        )

    def connect(self, name):
        """Create a client connection."""
        return ApacheConnection(self, name)


class ApacheConnection(Connection):
    """One HTTP connection; request kinds of cases c11-c13."""

    def _handle(self, request):
        kind = request["kind"]
        handler = getattr(self, "_do_" + kind, None)
        if handler is None:
            raise ValueError("unknown Apache request kind %r" % kind)
        yield from handler(request)

    def _do_static(self, request):
        """Serve a static page from a worker thread (victim of c12)."""
        yield Compute(us=self.app.config.accept_us)
        yield from self.instr.acquire_semaphore(self.app.worker_pool)
        yield Compute(us=request.get("serve_us", 500))
        self.instr.release_semaphore(self.app.worker_pool)

    def _do_slow_download(self, request):
        """A slow client occupying a worker for a long time (noisy c12)."""
        yield Compute(us=self.app.config.accept_us)
        yield from self.instr.acquire_semaphore(self.app.worker_pool)
        yield Sleep(us=request.get("serve_us", 100_000))
        self.instr.release_semaphore(self.app.worker_pool)

    def _do_fcgid(self, request):
        """A CGI request through mod_fcgid's limited backend slots (c11)."""
        yield Compute(us=self.app.config.accept_us)
        yield from self.instr.acquire_semaphore(self.app.fcgid_slots)
        yield Sleep(us=request.get("script_us", 5_000))
        self.instr.release_semaphore(self.app.fcgid_slots)
        yield Compute(us=request.get("render_us", 200))

    def _do_php_fpm(self, request):
        """A PHP page through php-fpm's pm.max_children pool (c13)."""
        yield Compute(us=self.app.config.accept_us)
        yield from self.instr.acquire_semaphore(self.app.fpm_children)
        yield Sleep(us=request.get("script_us", 5_000))
        self.instr.release_semaphore(self.app.fpm_children)
        yield Compute(us=request.get("render_us", 200))
