"""Event-driven application support: pBox-aware task queues.

Event-driven servers (Varnish, Memcached) multiplex many connections
over a pool of worker threads.  Section 5 of the paper describes how
pBox supports them:

- ownership transfer: workers bind/unbind the connection's pBox around
  each task (with the lazy-unbind optimization);
- kernel-queue tracing: these applications "commonly leverage kernel-
  level queues for task management (accept, epoll)", so the patched
  kernel traces state events at the queue itself without update_pbox
  calls in application code;
- shared-thread penalties: delaying a worker thread would punish every
  connection sharing it, so the manager instead defers the noisy pBox's
  queued tasks (they are put back onto the queue until the penalty
  window passes).

:class:`PBoxWorkerPool` implements all three on top of the simulator's
:class:`~repro.sim.primitives.TaskQueue`.  The pool itself is the
virtual resource: a queued task is *deferred by* the pool (PREPARE at
enqueue, ENTER at dispatch), and a running task *holds* one worker
(HOLD at dispatch, UNHOLD at completion).
"""

from repro.apps.base import Connection
from repro.core.events import StateEvent
from repro.core.runtime import BindFlag
from repro.sim.primitives import TaskQueue
from repro.sim.syscalls import FutexWait


class Task:
    """One queued unit of work: a request on behalf of a connection.

    ``rid`` carries the submitting client's request id (from
    ``kernel.active_requests``) so worker-side ``req.serve`` /
    ``req.done`` events join the client's ``req.begin``/``req.end``
    timeline; None when the submitter is not a traced request.
    """

    __slots__ = ("connection", "request", "enqueued_at_us", "done",
                 "finished_at_us", "rid")

    def __init__(self, connection, request, enqueued_at_us, rid=None):
        self.connection = connection
        self.request = request
        self.enqueued_at_us = enqueued_at_us
        self.done = False
        self.finished_at_us = None
        self.rid = rid


class PBoxWorkerPool:
    """A worker pool fed by a pBox-aware kernel task queue.

    Parameters
    ----------
    kernel, runtime:
        The simulated kernel and the application's pBox runtime.
    workers:
        Number of worker threads (the Varnish/Memcached thread pool).
    handler:
        Generator function ``handler(task)`` performing the actual work;
        supplied by the application model.
    """

    def __init__(self, kernel, runtime, workers, handler, name="pool"):
        self.kernel = kernel
        self.runtime = runtime
        self.manager = runtime.manager
        self.workers = workers
        self.handler = handler
        self.name = name
        self.queue = TaskQueue(
            kernel,
            name="%s-queue" % name,
            admission=self._admission,
        )
        self.tasks_processed = 0
        self._worker_threads = []
        self._tp_enqueue = kernel.trace.point("pool.enqueue")
        self._tp_dispatch = kernel.trace.point("pool.dispatch")
        self._tp_complete = kernel.trace.point("pool.complete")
        self._tp_serve = kernel.trace.point("req.serve")
        self._tp_done = kernel.trace.point("req.done")

    # ------------------------------------------------------------------
    # Kernel-side state-event tracing (Section 5)
    # ------------------------------------------------------------------

    def _pbox_of(self, task):
        psid = task.connection.psid
        if psid is None or not self.runtime.enabled:
            return None
        return self.manager.get(psid)

    def _admission(self, task):
        pbox = self._pbox_of(task)
        if pbox is None:
            return True
        return not self.manager.is_task_deferred(pbox)

    def submit(self, connection, request):
        """Enqueue a request; returns the Task (wait on it with ``wait``).

        The kernel queue activates the connection's pBox and records the
        PREPARE event transparently -- no update_pbox call needed in the
        application (the paper's patched accept/epoll behaviour).
        """
        submitter = self.kernel.current_thread
        rid = (self.kernel.active_requests.get(submitter.tid)
               if submitter is not None else None)
        task = Task(connection, request, self.kernel.now_us, rid=rid)
        pbox = self._pbox_of(task)
        if pbox is not None:
            self.manager.activate(pbox)
            self.manager.update(pbox, self, StateEvent.PREPARE)
        self.queue.put(task)
        if self._tp_enqueue.active:
            self._tp_enqueue.fire(
                self.kernel.now_us, pool=self.name,
                psid=connection.psid, depth=len(self.queue),
            )
        return task

    def wait(self, task):
        """Block the submitting client until the task completes."""
        while not task.done:
            yield FutexWait(task)

    def start(self, spawn=None):
        """Spawn the worker threads.

        ``spawn(body, name)`` may be provided to route thread creation
        through a case harness; defaults to ``kernel.spawn``.
        """
        spawn = spawn or (lambda body, name: self.kernel.spawn(body, name=name))
        for index in range(self.workers):
            thread = spawn(self._worker_body, "%s-worker-%d" % (self.name, index))
            self._worker_threads.append(thread)
        return self._worker_threads

    def _worker_body(self):
        while True:
            task = yield from self.queue.get()
            dispatched_at = self.kernel.now_us
            if self._tp_dispatch.active:
                self._tp_dispatch.fire(
                    dispatched_at, pool=self.name, psid=task.connection.psid,
                    queued_us=dispatched_at - task.enqueued_at_us,
                )
            if task.rid is not None and self._tp_serve.active:
                self._tp_serve.fire(
                    dispatched_at, rid=task.rid,
                    tid=self.kernel.current_thread.tid, pool=self.name,
                    queued_us=dispatched_at - task.enqueued_at_us,
                )
            pbox = self._pbox_of(task)
            if pbox is not None:
                self.manager.update(pbox, self, StateEvent.ENTER)
                self.manager.update(pbox, self, StateEvent.HOLD)
            # Ownership transfer: bind the connection's pBox to this
            # worker for the duration of the task (lazy unbind applies
            # when the same worker processes the same connection again).
            bound = self.runtime.bind_pbox(
                task.connection.bind_key, BindFlag.SHARED_THREAD
            )
            yield from self.handler(task)
            if bound != -1:
                self.runtime.unbind_pbox(
                    task.connection.bind_key, BindFlag.SHARED_THREAD
                )
            if pbox is not None:
                self.manager.update(pbox, self, StateEvent.UNHOLD)
                self.manager.freeze(pbox)
            task.done = True
            task.finished_at_us = self.kernel.now_us
            self.tasks_processed += 1
            if self._tp_complete.active:
                self._tp_complete.fire(
                    task.finished_at_us, pool=self.name,
                    psid=task.connection.psid,
                    service_us=task.finished_at_us - dispatched_at,
                )
            if task.rid is not None and self._tp_done.active:
                self._tp_done.fire(
                    task.finished_at_us, rid=task.rid,
                    tid=self.kernel.current_thread.tid, pool=self.name,
                    service_us=task.finished_at_us - dispatched_at,
                )
            self.kernel.futex_wake(task, n=1 << 30)

    def __repr__(self):
        return "PBoxWorkerPool(name=%r, workers=%d)" % (self.name, self.workers)


class EventDrivenConnection(Connection):
    """A connection whose requests run on a shared worker pool.

    The connection's pBox is created by the client thread and parked
    immediately (unbind with the SHARED_THREAD flag); workers bind it
    around each task.  Subclasses provide ``pool`` via the app object.
    """

    @property
    def bind_key(self):
        """The ownership-transfer key for bind/unbind (Section 4.1)."""
        return self

    @property
    def pool(self):
        """The worker pool serving this connection."""
        return self.app.pool

    def open(self):
        """Create the pBox and park it under ``bind_key``."""
        self.psid = self.runtime.create_pbox(self.app.config.make_rule())
        if self.psid != -1:
            self.runtime.unbind_pbox(self.bind_key, BindFlag.SHARED_THREAD)
        return
        yield  # pragma: no cover - keeps this a generator

    def execute(self, request):
        """Submit the request to the pool and wait for completion.

        Unlike the dedicated-thread base class, activation/freeze happen
        at the kernel queue (submit) and in the worker (completion).
        """
        task = self.pool.submit(self, request)
        yield from self.pool.wait(task)
        return task

    def close(self):
        """Release the parked pBox."""
        if self.psid is not None and self.psid != -1:
            self.runtime.release_pbox(self.psid)
        self.psid = None
        return
        yield  # pragma: no cover - keeps this a generator
