"""Behavioural Varnish model (event-driven proxy, cases c14-c15)."""

from repro.apps.varnishsim.server import (
    VarnishConfig,
    VarnishConnection,
    VarnishServer,
)

__all__ = ["VarnishConfig", "VarnishConnection", "VarnishServer"]
