"""Varnish server model: event-driven worker pool + WRK_SumStat lock.

Requests from all connections share a worker thread pool fed by a
kernel task queue (:class:`~repro.apps.eventdriven.PBoxWorkerPool`).
Two interference channels are modeled:

- c14: big-object fetches occupy workers for their whole backend fetch,
  starving small-object requests in the queue;
- c15: every request completion grabs the global WRK_SumStat statistics
  lock, which becomes contended at high request rates.
"""

from repro.apps.base import AppConfig, Instrumentation
from repro.apps.eventdriven import EventDrivenConnection, PBoxWorkerPool
from repro.sim.primitives import Mutex
from repro.sim.syscalls import Compute, Sleep


class VarnishConfig(AppConfig):
    """Tuning knobs of the Varnish model."""

    def __init__(self, isolation_level=50, workers=4, sumstat_hold_us=150,
                 small_us=500, big_backend_us=100_000, big_deliver_us=2_000):
        self.isolation_level = isolation_level
        self.workers = workers
        self.sumstat_hold_us = sumstat_hold_us
        self.small_us = small_us
        self.big_backend_us = big_backend_us
        self.big_deliver_us = big_deliver_us


class VarnishServer:
    """Event-driven proxy with a shared worker pool."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or VarnishConfig()
        self.instr = Instrumentation(runtime)
        self.sumstat_lock = Mutex(kernel, "WRK_SumStat")
        self.pool = PBoxWorkerPool(
            kernel, runtime, self.config.workers, self._handle_task,
            name="varnish",
        )

    def connect(self, name):
        """Create a client connection (one pBox per connection)."""
        return VarnishConnection(self, name)

    def start(self, spawn=None):
        """Start the worker pool threads."""
        return self.pool.start(spawn)

    def _handle_task(self, task):
        request = task.request
        kind = request["kind"]
        if kind == "small_object":
            yield Compute(us=request.get("serve_us", self.config.small_us))
        elif kind == "big_object":
            # Backend fetch: the worker is parked on backend I/O but the
            # pool slot stays occupied -- the c14 interference.
            yield Sleep(us=request.get("backend_us", self.config.big_backend_us))
            yield Compute(us=request.get("deliver_us", self.config.big_deliver_us))
        else:
            raise ValueError("unknown Varnish request kind %r" % kind)
        yield from self._sum_stats(request)

    def _sum_stats(self, request):
        """WRK_SumStat: per-completion global statistics merge (c15)."""
        hold_us = request.get("sumstat_us", self.config.sumstat_hold_us)
        yield from self.instr.acquire_mutex(self.sumstat_lock)
        yield Compute(us=hold_us)
        self.instr.release_mutex(self.sumstat_lock)


class VarnishConnection(EventDrivenConnection):
    """One Varnish client connection (shared-thread pBox)."""
