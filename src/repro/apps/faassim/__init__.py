"""FaaS platform model: trace-driven short-lived function sandboxes."""

from repro.apps.faassim.server import FaasConfig, FaasConnection, FaasServer

__all__ = ["FaasConfig", "FaasConnection", "FaasServer"]
