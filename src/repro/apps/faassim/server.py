"""FaaS server model: short-lived function sandboxes over a worker pool.

Serverless platforms (OpenWhisk, the Azure Functions hosts the trace
summary in :mod:`repro.workloads.traces` describes) stress a different
corner of isolation than the long-lived servers in the other app
models: every invocation *churns threads*.  A dispatcher admits the
invocation through a bounded pool of concurrency tickets, pays a cold-
or warm-start cost, then spawns a fresh sandbox thread that runs the
function to completion and exits.  Two tenant behaviours follow:

- the ticket pool is the contended virtual resource (a noisy tenant's
  burst of invocations holds every ticket, deferring the victim's), and
- thread lifetime is an invocation, not a process -- so any per-thread
  bookkeeping in the kernel, scheduler, or pBox manager sees a steady
  stream of births and exits instead of a stable roster.

The model reuses :class:`~repro.apps.eventdriven.PBoxWorkerPool` for the
dispatcher side (ownership transfer, kernel-queue tracing, shared-thread
penalties all apply: a worker serves many tenants), and adds the
sandbox spawn -> run-to-completion -> join churn on top.
"""

from repro.apps.base import AppConfig, Instrumentation
from repro.apps.eventdriven import EventDrivenConnection, PBoxWorkerPool
from repro.sim.primitives import Semaphore
from repro.sim.syscalls import Compute, Join, Spawn
from repro.sim.thread import SimThread


class FaasConfig(AppConfig):
    """Tuning knobs of the FaaS model."""

    def __init__(self, isolation_level=50, workers=4, slots=4,
                 cold_start_us=2_000, warm_start_us=100,
                 keepalive_us=50_000, teardown_us=50):
        self.isolation_level = isolation_level
        #: Dispatcher worker threads (shared across tenants).
        self.workers = workers
        #: Concurrency tickets: simultaneous sandboxes platform-wide.
        self.slots = slots
        #: Sandbox boot cost when no warm container exists.
        self.cold_start_us = cold_start_us
        #: Dispatch cost when the tenant ran within ``keepalive_us``.
        self.warm_start_us = warm_start_us
        #: Warm-container window after an invocation finishes.
        self.keepalive_us = keepalive_us
        #: Sandbox reclaim cost after the function returns.
        self.teardown_us = teardown_us


class FaasServer:
    """Dispatcher + ticket pool + sandbox churn (cases c18/c20)."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or FaasConfig()
        self.instr = Instrumentation(runtime)
        self.slots = Semaphore(kernel, units=self.config.slots,
                               name="faas_slots")
        self.pool = PBoxWorkerPool(kernel, runtime,
                                   workers=self.config.workers,
                                   handler=self._handle_task, name="faas")
        self.invocations = 0
        self.cold_starts = 0
        self._sandbox_seq = 0
        self._tp_invoke = kernel.trace.point("faas.invoke")
        self._tp_retire = kernel.trace.point("faas.retire")

    def start(self, spawn=None):
        """Spawn the dispatcher workers (see ``PBoxWorkerPool.start``)."""
        return self.pool.start(spawn)

    def connect(self, name):
        """Create a tenant connection (one function's invocation source)."""
        return FaasConnection(self, name)

    @property
    def stats(self):
        """Final-state counters for golden docs and reports."""
        return {
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "sandboxes": self._sandbox_seq,
        }

    def _handle_task(self, task):
        """One invocation, run by a dispatcher worker.

        Ticket -> cold/warm start -> spawn the sandbox thread -> join it
        -> teardown -> ticket back.  The sandbox thread is brand new per
        invocation: run-to-completion churn is the point of the model.
        """
        connection = task.connection
        request = task.request
        kernel = self.kernel
        yield from self.instr.acquire_semaphore(self.slots)
        now = kernel.now_us
        cold = (connection.last_done_us is None
                or now - connection.last_done_us > self.config.keepalive_us)
        self.invocations += 1
        if cold:
            self.cold_starts += 1
            yield Compute(us=self.config.cold_start_us)
        else:
            yield Compute(us=self.config.warm_start_us)
        duration_us = request.get("duration_us", 1_000)
        if self._tp_invoke.active:
            self._tp_invoke.fire(kernel.now_us, psid=connection.psid,
                                 cold=cold, duration_us=duration_us)
        self._sandbox_seq += 1
        sandbox = SimThread(
            _sandbox_body(duration_us),
            name="faas-fn-%d" % self._sandbox_seq,
        )
        sandbox = yield Spawn(sandbox)
        yield Join(sandbox)
        yield Compute(us=self.config.teardown_us)
        self.instr.release_semaphore(self.slots)
        connection.last_done_us = kernel.now_us
        if self._tp_retire.active:
            self._tp_retire.fire(kernel.now_us, psid=connection.psid,
                                 tid=sandbox.tid)


def _sandbox_body(duration_us):
    """The function itself: compute, return, exit (no blocking)."""
    yield Compute(us=duration_us)


class FaasConnection(EventDrivenConnection):
    """One tenant function: submits invocations to the shared pool.

    ``execute`` is the closed-loop path (submit and wait, used by the
    victim client); ``fire`` is the open-loop path the trace replayer
    uses -- submit without waiting, so a backed-up platform accumulates
    queued invocations exactly like a real event source.
    """

    def __init__(self, app, name, rule=None):
        super().__init__(app, name, rule=rule)
        self.last_done_us = None

    def fire(self, event):
        """Open-loop submit of one :class:`TraceEvent` (no wait)."""
        return self.pool.submit(self, {"duration_us": event.duration_us})
