"""MySQL virtual resources.

Each class models one of the application-level resources from Table 3
with the blocking structure described in the paper, annotated with the
pBox state events a developer would add (PREPARE/ENTER around deferral,
HOLD/UNHOLD around usage).
"""

from collections import OrderedDict

from repro.sim.primitives import Mutex
from repro.sim.syscalls import Compute, Sleep


class BufferPool:
    """The InnoDB buffer pool: pages, LRU list, and free blocks.

    The contended virtual resource is the *free blocks* (Figure 4): the
    pool latch is released as soon as a block is obtained, so lock
    optimization would not help; what hurts victims is that obtaining a
    block under pressure costs an LRU scan, a possible dirty-page flush
    and a disk read -- all of which the state events expose as deferring
    time.
    """

    FREE_KEY = "buf_pool.free_blocks"

    def __init__(self, kernel, instr, capacity, hit_us=20, scan_us=30,
                 read_io_us=400, flush_io_us=600):
        self.kernel = kernel
        self.instr = instr
        self.capacity = capacity
        self.hit_us = hit_us
        self.scan_us = scan_us
        self.read_io_us = read_io_us
        self.flush_io_us = flush_io_us
        self.mutex = Mutex(kernel, "buf_pool_mutex")
        self.pages = OrderedDict()  # page key -> dirty flag; LRU order
        self.free_blocks = capacity
        self._inflight = set()      # pages currently being read in
        self.misses = 0
        self.hits = 0
        self._tp_note = kernel.trace.point("app.note")

    def access(self, page_key, dirty=False, read_io_us=None):
        """Access one page; returns True on a buffer-pool hit.

        On a miss the caller pays the Figure 4 path: obtain a free block
        (possibly evicting and flushing the LRU tail) and read the page.
        A concurrent miss on a page already being read in waits for that
        read instead of consuming a second block.  ``read_io_us``
        overrides the read cost (sequential scans such as mysqldump
        benefit from read-ahead and stream pages much faster than random
        point reads).
        """
        while page_key in self._inflight:
            yield from self._wait_for_read(page_key)
        if page_key in self.pages:
            self.hits += 1
            self.pages.move_to_end(page_key)
            if dirty:
                self.pages[page_key] = True
            yield Compute(us=self.hit_us)
            return True
        self.misses += 1
        if self._tp_note.active:
            self._tp_note.fire(self.kernel.now_us, what="bufpool.miss",
                               page=page_key, free=self.free_blocks)
        self._inflight.add(page_key)
        yield from self._take_free_block()
        yield Sleep(us=read_io_us if read_io_us is not None else self.read_io_us)
        self.pages[page_key] = dirty
        self._inflight.discard(page_key)
        self.kernel.futex_wake(("bufpool-read", page_key), n=1 << 30)
        self.instr.unhold(self.FREE_KEY)
        return False

    def _wait_for_read(self, page_key):
        """Park until the in-flight read of ``page_key`` completes."""
        from repro.sim.syscalls import FutexWait

        yield FutexWait(("bufpool-read", page_key), timeout_us=10_000)

    def _take_free_block(self):
        """buf_LRU_get_free_block: the loop of Figure 4, annotated."""
        self.instr.prepare(self.FREE_KEY)
        yield from self.mutex.acquire()
        if self.free_blocks > 0:
            self.free_blocks -= 1
            self.mutex.release()
        else:
            _victim, victim_dirty = self.pages.popitem(last=False)
            self.mutex.release()
            yield Compute(us=self.scan_us)  # LRU scan from the tail
            if victim_dirty:
                yield Sleep(us=self.flush_io_us)  # write back dirty page
        self.instr.enter(self.FREE_KEY)
        self.instr.hold(self.FREE_KEY)

    @property
    def resident(self):
        """Number of pages currently cached."""
        return len(self.pages)


class UndoLog:
    """The InnoDB UNDO log plus purge accounting (case c5 / Figure 1).

    Writers append entries under the log latch.  A long-running
    transaction pins the oldest read view so nothing can be purged; when
    it commits, the backlog becomes purgeable at once and the purge
    thread iterates it in batches while holding the latch -- exactly the
    "purge task gets triggered" cliff of Figure 1.
    """

    def __init__(self, kernel, instr, append_us=30, purge_entry_us=100,
                 purge_light_entry_us=2, purge_batch=128, purge_gap_us=200):
        self.kernel = kernel
        self.instr = instr
        self.append_us = append_us
        self.purge_entry_us = purge_entry_us
        self.purge_light_entry_us = purge_light_entry_us
        self.purge_batch = purge_batch
        self.purge_gap_us = purge_gap_us
        self.mutex = Mutex(kernel, "undo_log_latch")
        self.pins = 0
        # Entries appended while a read view pins the history grow long
        # version chains and are expensive to purge ("heavy"); ordinary
        # entries are purged cheaply in the background ("light").
        self.pending_heavy = 0    # heavy entries not yet purgeable (pinned)
        self.heavy_backlog = 0    # heavy entries ready to purge
        self.light_backlog = 0
        self.purged_total = 0
        self._tp_note = kernel.trace.point("app.note")

    @property
    def entries(self):
        """Total UNDO entries currently in the log."""
        return self.pending_heavy + self.heavy_backlog + self.light_backlog

    def append(self):
        """Append one UNDO entry (called by every write).

        When the purge falls behind, the history list grows and every
        write pays to traverse longer version chains -- the reason
        InnoDB cannot simply stop purging (and why over-penalizing the
        purge thread backfires, Table 4).
        """
        yield from self.instr.acquire_mutex(self.mutex)
        chain_extra = min(self.pending_heavy + self.heavy_backlog, 30_000) // 200
        yield Compute(us=self.append_us + chain_extra)
        if self.pins > 0:
            self.pending_heavy += 1
        else:
            self.light_backlog += 1
        self.instr.release_mutex(self.mutex)

    def pin(self):
        """A transaction opens a read view: freeze purge progress."""
        self.pins += 1

    def unpin(self):
        """The read view closes; the pinned backlog becomes purgeable."""
        if self.pins <= 0:
            raise RuntimeError("unpin without pin")
        self.pins -= 1
        if self.pins == 0:
            self.heavy_backlog += self.pending_heavy
            self.pending_heavy = 0

    def purge_step(self):
        """Purge one batch under the latch; returns entries purged.

        Heavy entries (long version chains) dominate the cost and are
        processed first -- this is the expensive cleanup that blocks
        client B in Figure 1.
        """
        if self.heavy_backlog <= 0 and self.light_backlog <= 0:
            return 0
        yield from self.instr.acquire_mutex(self.mutex)
        if self.heavy_backlog > 0:
            batch = min(self.purge_batch, self.heavy_backlog)
            yield Compute(us=batch * self.purge_entry_us)
            self.heavy_backlog -= batch
        else:
            batch = min(self.purge_batch, self.light_backlog)
            yield Compute(us=max(1, batch * self.purge_light_entry_us))
            self.light_backlog -= batch
        self.purged_total += batch
        self.instr.release_mutex(self.mutex)
        if self._tp_note.active:
            self._tp_note.fire(self.kernel.now_us, what="undo.purge",
                               batch=batch, backlog=self.entries)
        return batch


class ConcurrencyTickets:
    """innodb_thread_concurrency admission (case c3, Figure 9).

    A thread entering InnoDB checks ``n_active`` against the limit; if
    the limit is reached it sleeps and retries (``os_thread_sleep`` at
    line 281 of Figure 9).  On admission it receives ``ticket_grant``
    tickets letting it re-enter that many times without the check.
    """

    KEY = "srv_conc.n_active"

    def __init__(self, kernel, instr, limit, sleep_us=1_000, ticket_grant=4):
        self.kernel = kernel
        self.instr = instr
        self.limit = limit
        self.sleep_us = sleep_us
        self.ticket_grant = ticket_grant
        self.n_active = 0

    def enter(self, conn):
        """srv_conc_enter_innodb: admission with the annotated spin."""
        if conn.tickets > 0:
            conn.tickets -= 1
            return
        self.instr.prepare(self.KEY)
        while True:
            if self.n_active < self.limit:
                self.n_active += 1
                self.instr.enter(self.KEY)
                self.instr.hold(self.KEY)
                conn.tickets = self.ticket_grant - 1
                conn.in_innodb = True
                return
            yield Sleep(us=self.sleep_us)

    def exit(self, conn):
        """srv_conc_exit_innodb: release the slot when tickets run out."""
        if conn.tickets > 0:
            return
        if conn.in_innodb:
            self.n_active -= 1
            conn.in_innodb = False
            self.instr.unhold(self.KEY)


class TableLockManager:
    """Per-table locks (case c1: SELECT FOR UPDATE vs INSERT)."""

    def __init__(self, kernel, instr):
        self.kernel = kernel
        self.instr = instr
        self._locks = {}

    def lock(self, table):
        """Acquire the lock of ``table`` (annotated)."""
        mutex = self._locks.get(table)
        if mutex is None:
            mutex = Mutex(self.kernel, "table_lock:%s" % (table,))
            self._locks[table] = mutex
        yield from self.instr.acquire_mutex(mutex)

    def unlock(self, table):
        """Release the lock of ``table``."""
        self.instr.release_mutex(self._locks[table])


class LockSystem:
    """The lock_sys mutex plus the record-lock list (case c4).

    SERIALIZABLE SELECTs allocate shared record locks under the global
    lock_sys mutex; every other transaction's lock acquisition then has
    to walk the grown lock list while holding the same mutex, which is
    where the 6.6x slowdown of case c4 comes from.
    """

    def __init__(self, kernel, instr, alloc_us=40, walk_us_per_lock=2,
                 max_walk_locks=2_000):
        self.kernel = kernel
        self.instr = instr
        self.alloc_us = alloc_us
        self.walk_us_per_lock = walk_us_per_lock
        self.max_walk_locks = max_walk_locks
        self.mutex = Mutex(kernel, "lock_sys_mutex")
        self.active_locks = 0

    def take_record_lock(self):
        """Allocate one record lock under the mutex (annotated)."""
        yield from self.instr.acquire_mutex(self.mutex)
        walk = min(self.active_locks, self.max_walk_locks)
        yield Compute(us=self.alloc_us + walk * self.walk_us_per_lock)
        self.active_locks += 1
        self.instr.release_mutex(self.mutex)

    def release_locks(self, count):
        """Drop ``count`` record locks (transaction end)."""
        self.active_locks = max(0, self.active_locks - count)
