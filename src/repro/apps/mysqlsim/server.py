"""The MySQL server model: connections, request handling, background tasks.

Connections follow the Figure 8 structure: the connection's pBox is
created when the connection opens, activated per request, frozen when
the request completes.  Background activities (the purge thread, a
mysqldump backup task) get their own pBoxes with a looser isolation goal
-- they are batch, throughput-oriented activities, so a tight latency
goal would be meaningless for them (see DESIGN.md, "background rules").
"""

from repro.apps.base import AppConfig, Connection, Instrumentation
from repro.apps.mysqlsim.resources import (
    BufferPool,
    ConcurrencyTickets,
    LockSystem,
    TableLockManager,
    UndoLog,
)
from repro.core.rules import IsolationRule
from repro.sim.primitives import Mutex, RWLock
from repro.sim.syscalls import Compute, Now, Sleep


class MySQLConfig(AppConfig):
    """Tuning knobs of the MySQL model (defaults suit the 16 cases)."""

    def __init__(self, buffer_pool_blocks=64, thread_concurrency=None,
                 ticket_grant=4, purge_batch=128, purge_entry_us=100,
                 purge_gap_us=200, purge_idle_us=10_000,
                 dict_mutex_nopk_us=300, dict_mutex_pk_us=30,
                 isolation_level=50, background_isolation_level=500):
        self.buffer_pool_blocks = buffer_pool_blocks
        self.thread_concurrency = thread_concurrency
        self.ticket_grant = ticket_grant
        self.purge_batch = purge_batch
        self.purge_entry_us = purge_entry_us
        self.purge_gap_us = purge_gap_us
        self.purge_idle_us = purge_idle_us
        self.dict_mutex_nopk_us = dict_mutex_nopk_us
        self.dict_mutex_pk_us = dict_mutex_pk_us
        self.isolation_level = isolation_level
        self.background_isolation_level = background_isolation_level

    def make_background_rule(self):
        """Loose rule for batch background activities (purge, dump)."""
        return IsolationRule(isolation_level=self.background_isolation_level)


class MySQLServer:
    """Aggregates the InnoDB virtual resources and background threads."""

    def __init__(self, kernel, runtime, config=None):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or MySQLConfig()
        self.instr = Instrumentation(runtime)
        self.buffer_pool = BufferPool(
            kernel, self.instr, capacity=self.config.buffer_pool_blocks
        )
        self.undo_log = UndoLog(
            kernel,
            self.instr,
            purge_batch=self.config.purge_batch,
            purge_entry_us=self.config.purge_entry_us,
            purge_gap_us=self.config.purge_gap_us,
        )
        self.tickets = None
        if self.config.thread_concurrency:
            self.tickets = ConcurrencyTickets(
                kernel,
                self.instr,
                limit=self.config.thread_concurrency,
                ticket_grant=self.config.ticket_grant,
            )
        self.table_locks = TableLockManager(kernel, self.instr)
        self.lock_sys = LockSystem(kernel, self.instr)
        self.dict_mutex = Mutex(kernel, "dict_sys_mutex")
        # Record-lock conflicts of case c4: SERIALIZABLE readers hold
        # shared locks on a row range for the whole transaction; writers
        # need them exclusively.
        self.record_locks = RWLock(kernel, "record_lock_range",
                                   policy="reader_pref")
        self.stopped = False

    def connect(self, name, rule=None):
        """Create a connection (one per client thread).

        ``rule`` optionally overrides the connection pBox's isolation
        rule (e.g. ``config.make_background_rule()`` for batch clients
        such as the analytics scanner of case c17).
        """
        return MySQLConnection(self, name, rule=rule)

    def stop(self):
        """Ask background threads to wind down."""
        self.stopped = True

    # ------------------------------------------------------------------
    # Background activities
    # ------------------------------------------------------------------

    def purge_thread_body(self):
        """The InnoDB purge thread (the noisy activity of case c5).

        Each latch-holding purge batch is one pBox activity so the
        manager sees activity boundaries at the same granularity the
        real purge coordinator works at.
        """
        psid = self.runtime.create_pbox(self.config.make_background_rule())
        while not self.stopped:
            self.runtime.activate_pbox(psid)
            purged = yield from self.undo_log.purge_step()
            self.runtime.freeze_pbox(psid)
            if purged:
                yield Sleep(us=self.undo_log.purge_gap_us)
            else:
                yield Sleep(us=self.config.purge_idle_us)
        self.runtime.release_pbox(psid)

    def dump_task_body(self, pages, chunk_pages=16, start_us=0):
        """A mysqldump-style backup streaming ``pages`` big-table pages.

        This is the noisy activity of the Figure 2 case: it floods the
        buffer pool with pages of a table that does not fit, evicting
        the OLTP working set.
        """

        def body():
            if start_us:
                yield Sleep(us=start_us)
            psid = self.runtime.create_pbox(self.config.make_background_rule())
            done = 0
            while done < pages and not self.stopped:
                self.runtime.activate_pbox(psid)
                for offset in range(min(chunk_pages, pages - done)):
                    # Sequential scan: read-ahead makes page reads cheap.
                    yield from self.buffer_pool.access(
                        ("big", done + offset), read_io_us=50
                    )
                    yield Compute(us=20)  # serialize rows to the dump file
                done += chunk_pages
                self.runtime.freeze_pbox(psid)
            self.runtime.release_pbox(psid)

        return body


class MySQLConnection(Connection):
    """One client connection; dispatches the request kinds of cases c1-c5."""

    def __init__(self, app, name, rule=None):
        super().__init__(app, name, rule=rule)
        self.tickets = 0
        self.in_innodb = False
        self.txn_pinned = False

    def _handle(self, request):
        kind = request["kind"]
        handler = getattr(self, "_do_" + kind, None)
        if handler is None:
            raise ValueError("unknown MySQL request kind %r" % kind)
        yield from handler(request)

    # -- InnoDB admission --------------------------------------------------

    def _enter_innodb(self):
        if self.app.tickets is not None:
            yield from self.app.tickets.enter(self)

    def _exit_innodb(self):
        if self.app.tickets is not None:
            self.app.tickets.exit(self)

    # -- request kinds -------------------------------------------------

    def _do_oltp_read(self, request):
        """Point reads over buffer-pool pages (sysbench OLTP read)."""
        yield from self._enter_innodb()
        for page in request["pages"]:
            yield from self.app.buffer_pool.access(page)
        yield Compute(us=request.get("work_us", 200))
        self._exit_innodb()

    def _do_oltp_write(self, request):
        """Writes: dirty page accesses plus one UNDO entry per row."""
        yield from self._enter_innodb()
        for page in request["pages"]:
            yield from self.app.buffer_pool.access(page, dirty=True)
        for _ in range(request.get("undo_entries", 1)):
            yield from self.app.undo_log.append()
        yield Compute(us=request.get("work_us", 300))
        self._exit_innodb()

    def _do_read(self, request):
        """CPU-only read inside the concurrency-regulated section (c3)."""
        yield from self._enter_innodb()
        yield Compute(us=request.get("work_us", 300))
        self._exit_innodb()

    def _do_write(self, request):
        """CPU-heavy write inside the concurrency-regulated section (c3)."""
        yield from self._enter_innodb()
        yield Compute(us=request.get("work_us", 3_000))
        self._exit_innodb()

    def _do_insert(self, request):
        """INSERT: takes the table lock briefly (the victim of c1)."""
        table = request["table"]
        yield from self.app.table_locks.lock(table)
        yield Compute(us=request.get("work_us", 300))
        self.app.table_locks.unlock(table)
        yield from self.app.undo_log.append()

    def _do_select_for_update(self, request):
        """SELECT FOR UPDATE scanning many rows under the table lock (c1)."""
        table = request["table"]
        yield from self.app.table_locks.lock(table)
        yield Compute(us=request.get("scan_us", 50_000))
        self.app.table_locks.unlock(table)

    def _do_serializable_select(self, request):
        """SERIALIZABLE SELECT taking shared record locks (noisy of c4).

        Row processing happens outside the lock_sys mutex, so the mutex
        duty cycle is high but not total (victims are delayed, not
        starved).
        """
        rows = request.get("rows", 20)
        row_work_us = request.get("row_work_us", 60)
        for _ in range(rows):
            yield from self.app.lock_sys.take_record_lock()
            yield Compute(us=row_work_us)
        yield Compute(us=request.get("work_us", 200))
        self.app.lock_sys.release_locks(rows)

    def _do_locking_read(self, request):
        """A locking read that walks the record-lock list (victim of c4)."""
        rows = request.get("rows", 1)
        for _ in range(rows):
            yield from self.app.lock_sys.take_record_lock()
        yield Compute(us=request.get("work_us", 200))
        self.app.lock_sys.release_locks(rows)

    def _do_serializable_scan(self, request):
        """SERIALIZABLE scan holding shared record locks for the whole
        transaction (noisy of c4)."""
        yield from self.instr.acquire_shared(self.app.record_locks)
        yield Compute(us=request.get("scan_us", 15_000))
        self.instr.release_shared(self.app.record_locks)

    def _do_update_row(self, request):
        """An UPDATE needing the record locks exclusively (victim of c4)."""
        yield from self.instr.acquire_exclusive(self.app.record_locks)
        yield Compute(us=request.get("work_us", 300))
        self.instr.release_exclusive(self.app.record_locks)
        yield Compute(us=request.get("post_work_us", 300))

    def _do_nopk_insert(self, request):
        """INSERT into a table without a primary key (noisy of c2).

        Row-id generation for PK-less tables serializes on the global
        dict mutex with a long hold per row.
        """
        for _ in range(request.get("ops", 1)):
            yield from self.instr.acquire_mutex(self.app.dict_mutex)
            yield Compute(us=self.app.config.dict_mutex_nopk_us)
            self.instr.release_mutex(self.app.dict_mutex)
        yield Compute(us=request.get("work_us", 200))

    def _do_pk_insert(self, request):
        """A normal insert briefly touching the dict mutex (victim of c2)."""
        for _ in range(request.get("ops", 1)):
            yield from self.instr.acquire_mutex(self.app.dict_mutex)
            yield Compute(us=self.app.config.dict_mutex_pk_us)
            self.instr.release_mutex(self.app.dict_mutex)
        yield Compute(us=request.get("work_us", 5_000))

    def _do_analytics_scan(self, request):
        """An analytics batch pass over a table that does not fit in the
        buffer pool (noisy of c17).

        Every page is a miss, so the pass continuously consumes free
        blocks and holds ``buf_pool.free_blocks`` for the duration of
        each read -- the hold windows the attribution profiler blames
        OLTP defer time on.  With ``dirty`` set (an ETL-style pass that
        rewrites the staging table) the evicted LRU tail fills with
        dirty analytics pages, so every OLTP miss additionally pays a
        flush *inside its defer window* -- the Figure 4 free-block path
        at its worst.
        """
        pages = request.get("pages", 48)
        base = request.get("base", 0)
        dirty = request.get("dirty", False)
        for offset in range(pages):
            yield from self.app.buffer_pool.access(
                ("analytics", base + offset), dirty=dirty,
                read_io_us=request.get("read_io_us", 150),
            )
            yield Compute(us=request.get("row_work_us", 20))
        yield Compute(us=request.get("work_us", 200))

    def _do_long_txn_read(self, request):
        """Case c5's client A: a read in a transaction held open for long.

        Pins the UNDO read view, reads, sleeps (the "sleep 10 seconds"
        of Section 2.1), then commits -- releasing the purge backlog.
        """
        self.app.undo_log.pin()
        self.txn_pinned = True
        yield from self._enter_innodb()
        yield Compute(us=request.get("work_us", 1_000))
        self._exit_innodb()
        yield Sleep(us=request.get("hold_open_us", 10_000_000))
        self.app.undo_log.unpin()
        self.txn_pinned = False

    def _do_undo_write(self, request):
        """Case c5's client B: a write transaction appending UNDO entries."""
        yield from self._enter_innodb()
        for _ in range(request.get("undo_entries", 8)):
            yield from self.app.undo_log.append()
        yield Compute(us=request.get("work_us", 1_000))
        self._exit_innodb()

    def _on_close(self):
        if self.txn_pinned:
            self.app.undo_log.unpin()
            self.txn_pinned = False
        return
        yield  # pragma: no cover - keeps this a generator
