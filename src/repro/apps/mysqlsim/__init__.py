"""Behavioural MySQL/InnoDB model.

Covers the subsystems behind interference cases c1-c5 and the three
motivation figures:

- the buffer pool with LRU eviction and free-block consumption
  (Figure 4, case of Figure 2),
- the UNDO log with a background purge thread (Figure 1 / case c5),
- the InnoDB thread-concurrency tickets (Figure 9 / case c3),
- table locks taken by SELECT FOR UPDATE (case c1),
- the global dictionary mutex contended by primary-key-less inserts
  (case c2), and
- the lock-system mutex stressed by SERIALIZABLE reads (case c4).
"""

from repro.apps.mysqlsim.resources import (
    BufferPool,
    ConcurrencyTickets,
    LockSystem,
    TableLockManager,
    UndoLog,
)
from repro.apps.mysqlsim.server import MySQLConfig, MySQLConnection, MySQLServer

__all__ = [
    "BufferPool",
    "ConcurrencyTickets",
    "LockSystem",
    "MySQLConfig",
    "MySQLConnection",
    "MySQLServer",
    "TableLockManager",
    "UndoLog",
]
