"""Request-mix and key distributions used by the workload drivers.

Includes a small model of Facebook's USR/VAR key-value request mixes
(Atikoglu et al., "Workload Analysis of a Large-Scale Key-Value Store"),
which the paper uses for the Memcached overhead experiments: USR is
read-dominated (~99.8% GET), VAR is write-heavy (~82% SET)."""


def uniform_interarrival(rng, mean_us):
    """Uniform interarrival in [0.5, 1.5) x mean (bounded jitter)."""
    return int(rng.uniform(0.5 * mean_us, 1.5 * mean_us))


def exponential_interarrival(rng, mean_us):
    """Exponential (Poisson-process) interarrival with the given mean."""
    if mean_us <= 0:
        return 0
    return int(rng.expovariate(1.0 / mean_us))


class FacebookETC:
    """GET/SET mixes modeled after Facebook's memcached pools.

    ``USR``: user-account lookaside pool, overwhelmingly GETs.
    ``VAR``: server-side browser data, write-heavy.
    """

    USR_GET_FRACTION = 0.998
    VAR_GET_FRACTION = 0.18

    def __init__(self, rng, pool="USR", key_space=10_000, zipf_skew=1.01):
        if pool not in ("USR", "VAR"):
            raise ValueError("pool must be USR or VAR")
        self.rng = rng
        self.pool = pool
        self.key_space = key_space
        self.zipf_skew = zipf_skew

    def next_request(self):
        """Return ('get'|'set', key index)."""
        get_fraction = (
            self.USR_GET_FRACTION if self.pool == "USR" else self.VAR_GET_FRACTION
        )
        op = "get" if self.rng.random() < get_fraction else "set"
        key = self.rng.zipf_index(self.key_space, self.zipf_skew)
        return op, key


class OLTPMix:
    """sysbench-like OLTP request mixes for the database workloads.

    ``read_only`` issues point SELECTs; ``write_only`` issues UPDATE /
    INSERT statements; ``mixed`` interleaves them 70/30 like sysbench's
    default oltp_read_write profile.
    """

    def __init__(self, rng, mode="read_only", tables=64, rows_per_table=1_000):
        if mode not in ("read_only", "write_only", "mixed"):
            raise ValueError("unknown OLTP mode %r" % mode)
        self.rng = rng
        self.mode = mode
        self.tables = tables
        self.rows_per_table = rows_per_table

    def next_request(self):
        """Return (op, table index, row index)."""
        table = self.rng.randint(0, self.tables - 1)
        row = self.rng.randint(0, self.rows_per_table - 1)
        if self.mode == "read_only":
            op = "read"
        elif self.mode == "write_only":
            op = "write"
        else:
            op = "read" if self.rng.random() < 0.7 else "write"
        return op, table, row
