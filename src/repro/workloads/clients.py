"""Generic closed-loop client driver.

A client owns one application connection and issues requests back to
back (optionally with think time) until a stop time, recording each
request's latency.  Solution policies (cgroup / PARTIES / Retro / DARC)
hook the request boundaries through the optional ``policy`` object:

- ``policy.before_request(ctx, request)``: a *generator* driven before
  each request (Retro throttles here; DARC tags the thread here);
- ``policy.after_request(ctx, request, latency_us)``: plain call after
  completion (PARTIES and Retro read latencies here).

Request tracing: every request draws a monotonically increasing id from
``kernel.next_request_id()`` and fires the canonical ``req.begin`` /
``req.end`` tracepoints at the ``Now()`` boundaries the latency
recorder samples -- so any timeline a subscriber reconstructs between
the two events telescopes bit-exactly to the traced latency
(``req.end`` minus ``req.begin`` time, including admission-control
stalls and deferred overhead charges paid at the first syscall inside
the window).  The tracepoints fire at the post-resume kernel clock:
when a penalty or an injected fault defers the resume that carries a
boundary ``Now()`` value, the send value is stale, and firing it would
make the bus non-monotonic.  The recorder deliberately keeps the
syscall-boundary samples so measured latencies stay bit-identical to
the pre-tracing build; the traced window then exceeds the recorded one
by exactly the boundary stall, which the decomposition attributes to
its cause (usually ``penalty``).  While a request is in flight
the client also publishes ``kernel.active_requests[tid] = rid`` so
downstream layers (the event-driven pools) can tag work they perform on
the client's behalf.
"""

from repro.sim.syscalls import Now, Sleep


def closed_loop_client(kernel, connection, request_factory, recorder,
                       start_us=0, stop_us=None, think_us=0, rng=None,
                       policy=None, policy_ctx=None, tenant=None):
    """Build a thread body driving ``connection`` in a closed loop.

    Parameters
    ----------
    connection:
        Object with generator methods ``open()``, ``execute(request)``
        and ``close()`` (see :class:`repro.apps.base.Connection`).
    request_factory:
        Zero-argument callable producing the next request.
    recorder:
        :class:`~repro.workloads.stats.LatencyRecorder` for latencies.
    start_us / stop_us:
        The client sleeps until ``start_us`` (late joiners, e.g. the
        fifth client of case c3) and stops issuing at ``stop_us``.
    think_us:
        Mean think time between requests; jittered when ``rng`` given.
    tenant:
        Label carried by ``req.begin`` so per-request traces group by
        tenant without name parsing (defaults to the thread name).
    """
    if stop_us is None:
        raise ValueError("stop_us is required")

    tp_begin = kernel.trace.point("req.begin")
    tp_end = kernel.trace.point("req.end")
    active_requests = kernel.active_requests

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from connection.open()
        tid = kernel.current_thread.tid
        who = tenant if tenant is not None else kernel.current_thread.name
        while True:
            now = yield Now()
            if now >= stop_us:
                break
            request = request_factory()
            began = yield Now()
            # A penalty- or fault-deferred resume delivers a stale send
            # value: the clock may have advanced before this generator
            # actually regained control.  The recorder keeps the
            # syscall-boundary sample (`began`/`finished`) so measured
            # latencies are unchanged from the pre-tracing build; the
            # tracepoints fire at the post-resume clock so the bus
            # stays time-monotonic and the traced window telescopes
            # exactly (boundary stalls land in the penalty segment).
            begin_fired = kernel.now_us
            # Ids are drawn and the in-flight map maintained whether or
            # not anyone subscribes, so request numbering (and the pool
            # tags derived from it) is observation-independent.
            rid = kernel.next_request_id()
            active_requests[tid] = rid
            if tp_begin.active:
                tp_begin.fire(begin_fired, rid=rid, tid=tid, tenant=who)
            # Admission control (e.g. Retro's token bucket) is part of
            # the end-to-end latency the client observes.
            if policy is not None:
                yield from policy.before_request(policy_ctx, request)
            yield from connection.execute(request)
            finished = yield Now()
            end_fired = kernel.now_us
            active_requests.pop(tid, None)
            if tp_end.active:
                tp_end.fire(end_fired, rid=rid, tid=tid,
                            latency_us=end_fired - begin_fired)
            recorder.record(finished - began, finished)
            if policy is not None:
                policy.after_request(policy_ctx, request, finished - began)
            if think_us:
                pause = think_us
                if rng is not None:
                    pause = max(0, int(rng.uniform(0.5 * think_us, 1.5 * think_us)))
                if pause:
                    yield Sleep(us=pause)
        yield from connection.close()

    return body
