"""Generic closed-loop client driver.

A client owns one application connection and issues requests back to
back (optionally with think time) until a stop time, recording each
request's latency.  Solution policies (cgroup / PARTIES / Retro / DARC)
hook the request boundaries through the optional ``policy`` object:

- ``policy.before_request(ctx, request)``: a *generator* driven before
  each request (Retro throttles here; DARC tags the thread here);
- ``policy.after_request(ctx, request, latency_us)``: plain call after
  completion (PARTIES and Retro read latencies here).
"""

from repro.sim.syscalls import Now, Sleep


def closed_loop_client(kernel, connection, request_factory, recorder,
                       start_us=0, stop_us=None, think_us=0, rng=None,
                       policy=None, policy_ctx=None):
    """Build a thread body driving ``connection`` in a closed loop.

    Parameters
    ----------
    connection:
        Object with generator methods ``open()``, ``execute(request)``
        and ``close()`` (see :class:`repro.apps.base.Connection`).
    request_factory:
        Zero-argument callable producing the next request.
    recorder:
        :class:`~repro.workloads.stats.LatencyRecorder` for latencies.
    start_us / stop_us:
        The client sleeps until ``start_us`` (late joiners, e.g. the
        fifth client of case c3) and stops issuing at ``stop_us``.
    think_us:
        Mean think time between requests; jittered when ``rng`` given.
    """
    if stop_us is None:
        raise ValueError("stop_us is required")

    def body():
        if start_us:
            yield Sleep(us=start_us)
        yield from connection.open()
        while True:
            now = yield Now()
            if now >= stop_us:
                break
            request = request_factory()
            began = yield Now()
            # Admission control (e.g. Retro's token bucket) is part of
            # the end-to-end latency the client observes.
            if policy is not None:
                yield from policy.before_request(policy_ctx, request)
            yield from connection.execute(request)
            finished = yield Now()
            recorder.record(finished - began, finished)
            if policy is not None:
                policy.after_request(policy_ctx, request, finished - began)
            if think_us:
                pause = think_us
                if rng is not None:
                    pause = max(0, int(rng.uniform(0.5 * think_us, 1.5 * think_us)))
                if pause:
                    yield Sleep(us=pause)
        yield from connection.close()

    return body
