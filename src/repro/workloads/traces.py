"""Seeded trace-replay generation: Azure-Functions-style invocations.

The serverless workloads (the FaaS tenant family in
``repro.apps.faassim`` and the ``faas`` scale tenants) are driven by
synthetic invocation traces shaped like the public Azure Functions
characterization (Shahrad et al., "Serverless in the Wild", ATC'20):
Poisson-ish interarrivals whose rate depends on the function's
popularity class, and heavy-tailed execution durations where most
invocations are short but a fat tail runs for orders of magnitude
longer.

What is vendored here is a *summary table*, not the trace: the
per-class mean interarrival gaps (:data:`TRACE_PROFILES`) and a
four-bucket execution-duration histogram (:data:`DURATION_BUCKETS`),
both transcribed as rounded shape parameters and rescaled to
simulation time (one simulated second stands in for roughly a minute
of trace time, matching the compressed horizons of the case and scale
harnesses).

Determinism contract: a trace is a pure function of ``(seed, tenant,
profile, horizon)``.  All randomness flows through one named
:class:`~repro.sim.rng.RngRegistry` stream
(``trace.<profile>.<tenant>``), so two registries built from the same
root seed produce byte-identical event lists, and adding a new trace
consumer never perturbs existing streams.  Generated interarrival gaps
are strictly positive (arrival times strictly increase) and sampled
durations stay inside the histogram's support -- properties pinned by
``tests/test_workload_traces.py``.
"""

from collections import namedtuple

from repro.sim.syscalls import Now, Sleep

#: One invocation: arrival time, execution duration, ordinal index.
TraceEvent = namedtuple("TraceEvent", ("at_us", "duration_us", "index"))

#: Invocation-rate classes: mean interarrival gap (us, simulation
#: scale) per function popularity class.  The Azure characterization
#: splits functions by invocations/minute; rescaled to the simulator's
#: compressed clock these are the per-tenant gaps.
TRACE_PROFILES = {
    "rare": 50_000,      # <= 1 invocation/min class: a few per sim second
    "periodic": 10_000,  # timer-triggered mid-band
    "popular": 2_000,    # HTTP-triggered hot functions
    "burst": 500,        # the top-percentile spike that dominates load
}

#: Execution-duration histogram: (cumulative probability, low_us,
#: high_us) rows.  Roughly half the invocations finish within one
#: simulated millisecond; the tail stretches 200x longer -- the same
#: orders-of-magnitude spread as the published percentiles.
DURATION_BUCKETS = (
    (0.50, 100, 1_000),
    (0.80, 1_000, 5_000),
    (0.95, 5_000, 20_000),
    (1.00, 20_000, 200_000),
)


def duration_support():
    """Inclusive-exclusive ``[low, high)`` support of sampled durations."""
    return DURATION_BUCKETS[0][1], DURATION_BUCKETS[-1][2]


def trace_stream_name(profile, tenant):
    """The RNG-registry stream a ``(profile, tenant)`` trace draws from."""
    return "trace.%s.%s" % (profile, tenant)


def _stream(rngs, name):
    """Resolve a named stream from a registry or a kernel."""
    getter = getattr(rngs, "stream", None)
    if getter is None:
        getter = rngs.rng  # a Kernel
    return getter(name)


def sample_duration(stream):
    """Draw one execution duration from the vendored histogram.

    Exposed for consumers that want trace-shaped durations without a
    full trace (the scale harness's faas tenants sample per-request
    durations from their own tenant stream).
    """
    pick = stream.random()
    for cumulative, low_us, high_us in DURATION_BUCKETS:
        if pick <= cumulative:
            return low_us + int(stream.uniform(0, high_us - low_us))
    low_us, high_us = DURATION_BUCKETS[-1][1:]
    return low_us + int(stream.uniform(0, high_us - low_us))


def generate_trace(rngs, tenant, profile="popular", horizon_us=1_000_000,
                   max_events=None):
    """Generate the invocation trace for ``(seed, tenant)``.

    Parameters
    ----------
    rngs:
        An :class:`~repro.sim.rng.RngRegistry` or a
        :class:`~repro.sim.Kernel` (the seed lives there).
    tenant:
        Tenant label; part of the stream name, so distinct tenants draw
        from independent streams of the same root seed.
    profile:
        A :data:`TRACE_PROFILES` rate class.
    horizon_us:
        Events are generated strictly before this virtual time.
    max_events:
        Optional hard cap on the number of events.

    Returns a list of :class:`TraceEvent` with strictly increasing
    ``at_us`` (every interarrival gap is at least one microsecond).
    """
    try:
        mean_gap_us = TRACE_PROFILES[profile]
    except KeyError:
        raise ValueError(
            "unknown trace profile %r; known: %s"
            % (profile, sorted(TRACE_PROFILES))
        ) from None
    stream = _stream(rngs, trace_stream_name(profile, tenant))
    events = []
    at_us = 0
    index = 0
    while max_events is None or index < max_events:
        # +1 keeps the gap strictly positive so arrival times strictly
        # increase -- an exponential draw floors to 0 about 1/mean of
        # the time.
        gap_us = int(stream.expovariate(1.0 / mean_gap_us)) + 1
        at_us += gap_us
        if at_us >= horizon_us:
            break
        events.append(TraceEvent(at_us, sample_duration(stream), index))
        index += 1
    return events


def replay_trace(kernel, events, fire):
    """Thread body replaying ``events`` against ``fire(event)``.

    Sleeps the virtual clock to each event's arrival time and invokes
    ``fire`` synchronously -- the open-loop driver shape the FaaS
    tenants use (``fire`` submits an invocation without waiting for
    it).  Events whose arrival already passed fire immediately, in
    order, so a replay started late stays a prefix-faithful catch-up
    rather than silently dropping work.
    """

    def body():
        for event in events:
            now = yield Now()
            if event.at_us > now:
                yield Sleep(us=event.at_us - now)
            fire(event)

    return body
