"""Latency statistics and the paper's interference metrics.

Section 6.2 defines the quantities every experiment reports:

- interference level      ``p = Ti/To - 1``
- level under a solution  ``q = Ts/To - 1``
- reduction ratio         ``r = (p - q)/p = (Ti - Ts)/(Ti - To)``

where ``Ti`` is victim latency with interference, ``To`` without, and
``Ts`` under the evaluated solution.  A ratio above 1 (the paper reports
up to 113.6%) means the solution made the victim *faster than* its
original interference-free run.
"""


def percentile(values, p):
    """The ``p``-th percentile (0-100) of ``values`` (nearest-rank)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if p == 100:
        return ordered[-1]
    index = int(len(ordered) * p / 100.0)
    return ordered[min(index, len(ordered) - 1)]


def interference_level(t_interference, t_baseline):
    """``p = Ti/To - 1`` (Section 6.2)."""
    if t_baseline <= 0:
        raise ValueError("baseline latency must be positive")
    return t_interference / t_baseline - 1.0


def reduction_ratio(t_interference, t_solution, t_baseline):
    """``r = (Ti - Ts)/(Ti - To)``: fraction of interference removed."""
    denominator = t_interference - t_baseline
    if denominator == 0:
        return 0.0
    return (t_interference - t_solution) / denominator


class LatencyRecorder:
    """Collects per-request latencies with optional warmup exclusion.

    ``record_from_us`` discards samples completed before that virtual
    time, so measurements skip cache warmup / ramp-up phases the same
    way the paper's 90-second runs do.
    """

    def __init__(self, name="client", record_from_us=0, histogram=None,
                 sink=None):
        self.name = name
        self.record_from_us = record_from_us
        self.samples_us = []
        self.completion_times_us = []
        # Optional obs.metrics.Histogram mirror: every accepted sample
        # also lands in the shared metrics registry.
        self.histogram = histogram
        # Optional ``sink(latency_us, completed_at_us)`` mirror: the
        # telemetry pipeline hooks request latencies here, off the
        # tracepoint bus, so the canonical trace stream never carries
        # telemetry traffic.
        self.sink = sink

    def record(self, latency_us, completed_at_us):
        """Record one request's latency, honoring the warmup cutoff."""
        if completed_at_us < self.record_from_us:
            return
        self.samples_us.append(latency_us)
        self.completion_times_us.append(completed_at_us)
        if self.histogram is not None:
            self.histogram.record(latency_us)
        if self.sink is not None:
            self.sink(latency_us, completed_at_us)

    @property
    def count(self):
        """Number of recorded samples."""
        return len(self.samples_us)

    def mean_us(self):
        """Average latency in microseconds."""
        if not self.samples_us:
            raise ValueError("recorder %r has no samples" % self.name)
        return sum(self.samples_us) / len(self.samples_us)

    def percentile_us(self, p):
        """Latency percentile in microseconds."""
        return percentile(self.samples_us, p)

    def throughput_per_sec(self, window_us):
        """Completed requests per second over the recording window."""
        if window_us <= 0:
            raise ValueError("window must be positive")
        return self.count / (window_us / 1_000_000.0)

    def timeline(self, bucket_us=1_000_000):
        """Bucketed (time_sec, mean latency, count) series for figures."""
        series = TimelineSeries(bucket_us)
        for latency, at in zip(self.samples_us, self.completion_times_us):
            series.add(at, latency)
        return series


class TimelineSeries:
    """Time-bucketed aggregation used by the motivation figures (1-3)."""

    def __init__(self, bucket_us=1_000_000):
        if bucket_us <= 0:
            raise ValueError("bucket must be positive")
        self.bucket_us = bucket_us
        self._sums = {}
        self._counts = {}

    def add(self, at_us, value):
        """Add a sample at virtual time ``at_us``."""
        bucket = at_us // self.bucket_us
        self._sums[bucket] = self._sums.get(bucket, 0) + value
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def buckets(self):
        """Sorted bucket indices that have samples."""
        return sorted(self._counts)

    def mean_series(self):
        """List of (bucket_start_sec, mean value) points."""
        points = []
        for bucket in self.buckets():
            seconds = bucket * self.bucket_us / 1_000_000.0
            points.append((seconds, self._sums[bucket] / self._counts[bucket]))
        return points

    def count_series(self):
        """List of (bucket_start_sec, sample count) points (throughput)."""
        points = []
        for bucket in self.buckets():
            seconds = bucket * self.bucket_us / 1_000_000.0
            points.append((seconds, self._counts[bucket]))
        return points
