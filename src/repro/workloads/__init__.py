"""Workload generators and measurement utilities.

Substitutes for the load-generation tools the paper uses (sysbench for
MySQL/PostgreSQL, ab for Apache/Varnish, mutilate with Facebook's USR and
VAR distributions for Memcached) plus the latency statistics machinery
behind every figure.
"""

from repro.workloads.stats import (
    LatencyRecorder,
    TimelineSeries,
    interference_level,
    percentile,
    reduction_ratio,
)
from repro.workloads.distributions import (
    FacebookETC,
    exponential_interarrival,
    uniform_interarrival,
)
from repro.workloads.clients import closed_loop_client

__all__ = [
    "FacebookETC",
    "LatencyRecorder",
    "TimelineSeries",
    "closed_loop_client",
    "exponential_interarrival",
    "interference_level",
    "percentile",
    "reduction_ratio",
    "uniform_interarrival",
]
