"""Workload generators and measurement utilities.

Substitutes for the load-generation tools the paper uses (sysbench for
MySQL/PostgreSQL, ab for Apache/Varnish, mutilate with Facebook's USR and
VAR distributions for Memcached) plus the latency statistics machinery
behind every figure.
"""

from repro.workloads.stats import (
    LatencyRecorder,
    TimelineSeries,
    interference_level,
    percentile,
    reduction_ratio,
)
from repro.workloads.distributions import (
    FacebookETC,
    exponential_interarrival,
    uniform_interarrival,
)
from repro.workloads.clients import closed_loop_client
from repro.workloads.traces import (
    DURATION_BUCKETS,
    TRACE_PROFILES,
    TraceEvent,
    duration_support,
    generate_trace,
    replay_trace,
    sample_duration,
    trace_stream_name,
)

__all__ = [
    "DURATION_BUCKETS",
    "FacebookETC",
    "LatencyRecorder",
    "TRACE_PROFILES",
    "TimelineSeries",
    "TraceEvent",
    "closed_loop_client",
    "duration_support",
    "exponential_interarrival",
    "generate_trace",
    "interference_level",
    "percentile",
    "reduction_ratio",
    "replay_trace",
    "sample_duration",
    "trace_stream_name",
    "uniform_interarrival",
]
