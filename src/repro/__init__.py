"""pBox reproduction: intra-application performance isolation.

A faithful, simulator-based reproduction of *Pushing Performance
Isolation Boundaries into Application with pBox* (Hu, Huang & Huang,
SOSP 2023).  See README.md for a tour and DESIGN.md for the full system
inventory.

Quick start::

    from repro import IsolationRule, Kernel, PBoxManager, PBoxRuntime

    kernel = Kernel(cores=4)
    manager = PBoxManager(kernel)
    runtime = PBoxRuntime(manager)
    # ... build an application on repro.sim primitives, annotate it with
    # runtime.update_pbox(...), and kernel.run(...)

The evaluation surface lives in :mod:`repro.cases` (the 16 real-world
interference cases) and ``benchmarks/`` (one target per paper table and
figure).
"""

from repro.core import (
    AdaptivePenalty,
    BindFlag,
    FixedPenalty,
    IsolationRule,
    OperationCosts,
    PBox,
    PBoxManager,
    PBoxRuntime,
    PBoxStatus,
    StateEvent,
)
from repro.sim import Kernel

__version__ = "1.0.0"

__all__ = [
    "AdaptivePenalty",
    "BindFlag",
    "FixedPenalty",
    "IsolationRule",
    "Kernel",
    "OperationCosts",
    "PBox",
    "PBoxManager",
    "PBoxRuntime",
    "PBoxStatus",
    "StateEvent",
    "__version__",
]
