"""Declarative fault plans for deterministic chaos runs.

A :class:`FaultPlan` is a sorted list of :class:`FaultSpec` entries --
(kind, virtual time, parameter, target selector) tuples -- generated
*before* a simulation starts and armed as kernel timers by the
:class:`~repro.faults.injector.FaultInjector`.  Because every field is
derived from the chaos seed with SHA-256 (never Python's randomized
``hash()``) and fault times are integer virtual microseconds, a plan is
a pure function of ``(kinds, seed, window)``: the same chaos job always
injects the same faults at the same instants, which is what makes chaos
results cacheable and replayable bit for bit.
"""

import hashlib

#: Every fault kind the injector understands, in canonical order.
FAULT_KINDS = (
    "stall",            # preempt an arbitrary thread for param_us
    "holder_stall",     # preempt a thread currently holding a resource
    "lost_wakeup",      # swallow the next contended futex wake
    "crash",            # kill a thread (holders preferred) mid-flight
    "penalty_misfire",  # inject an absurd penalty, past the manager cap
    "tracepoint_drop",  # disable one live tracepoint for a window
)

#: Default ``param_us`` per kind: stall lengths, drop windows, or the
#: misfire magnitude (deliberately far past the manager's 5s cap so the
#: clamp/revert healing path is exercised).
DEFAULT_PARAM_US = {
    "stall": 200_000,
    "holder_stall": 150_000,
    "lost_wakeup": 0,
    "crash": 0,
    "penalty_misfire": 20_000_000,
    "tracepoint_drop": 100_000,
}


def derive(material, lo, hi):
    """Deterministic integer in ``[lo, hi]`` from a string label.

    SHA-256 based so the value is stable across processes and Python
    versions (``hash()`` is randomized per process by PYTHONHASHSEED
    and must never feed a fault plan).
    """
    if hi < lo:
        raise ValueError("empty range [%d, %d]" % (lo, hi))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big")
    return lo + value % (hi - lo + 1)


class FaultSpec:
    """One planned fault occurrence."""

    __slots__ = ("kind", "at_us", "param_us", "selector")

    def __init__(self, kind, at_us, param_us=0, selector=0):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r" % kind)
        self.kind = kind
        self.at_us = int(at_us)
        self.param_us = int(param_us)
        self.selector = int(selector)

    def to_dict(self):
        """Canonical JSON-safe encoding."""
        return {
            "kind": self.kind,
            "at_us": self.at_us,
            "param_us": self.param_us,
            "selector": self.selector,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["kind"], payload["at_us"],
                   payload.get("param_us", 0), payload.get("selector", 0))

    def __eq__(self, other):
        return (isinstance(other, FaultSpec)
                and self.to_dict() == other.to_dict())

    def __repr__(self):
        return "FaultSpec(%s@%dus, param=%d, sel=%d)" % (
            self.kind, self.at_us, self.param_us, self.selector)


class FaultPlan:
    """An ordered collection of fault specs for one run."""

    def __init__(self, specs):
        self.specs = sorted(specs, key=lambda s: (s.at_us, s.kind, s.selector))

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def to_dict(self):
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload):
        return cls([FaultSpec.from_dict(entry)
                    for entry in payload["specs"]])

    @classmethod
    def generate(cls, kinds, seed, start_us, end_us, count_per_kind=2):
        """Derive a plan for ``kinds`` inside ``[start_us, end_us]``.

        Each kind gets ``count_per_kind`` occurrences at SHA-256-derived
        times; the selector (used by the injector to pick a target among
        however many candidates exist at fire time) comes from the same
        stream.  ``ValueError`` on unknown kinds so typos surface before
        a long sweep, not inside a worker.
        """
        start_us = int(start_us)
        end_us = int(end_us)
        if end_us <= start_us:
            end_us = start_us + 1
        specs = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    "unknown fault kind %r (choose from %s)"
                    % (kind, ", ".join(FAULT_KINDS)))
            for index in range(count_per_kind):
                label = "%d:%s:%d" % (seed, kind, index)
                specs.append(FaultSpec(
                    kind,
                    at_us=derive(label + ":at", start_us, end_us),
                    param_us=DEFAULT_PARAM_US[kind],
                    selector=derive(label + ":sel", 0, 1 << 16),
                ))
        return cls(specs)

    def __repr__(self):
        return "FaultPlan(%d specs)" % len(self.specs)
