"""Chaos sweeps: cases x fault kinds x seeds through the job runner.

``run_chaos`` fans every (case, fault kind, seed) combination out as an
ordinary runner job -- the fault cocktail rides inside the
:class:`~repro.runner.jobs.JobSpec`, so chaos results are content-
addressed and cached exactly like measurement runs -- and aggregates
the per-run chaos summaries into ``results/CHAOS.json``.

The JSON payload deliberately contains **no wall-clock data** (wall
time, cache hit counts, worker counts live in ``ChaosResult.stats``,
which the CLI prints but never persists): re-running the same chaos
sweep must produce a byte-identical file, which is also how the stress
test asserts deterministic replay.

Since schema 2 the persisted per-run entries are *summaries*: fault /
violation / recovery counts plus a SHA-256 digest of the full
deterministic entry (fired-fault list, injection plan, violation
details and all).  The digest preserves the byte-identity contract --
any behavioral drift in a run flips its digest -- while keeping
``results/CHAOS.json`` a few KB instead of hundreds.  The full entries
stay available in memory on :class:`ChaosResult` for the CLI and the
stress tests.
"""

import hashlib
import json
import os

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.jobs import JobSpec
from repro.runner.runner import RunInterrupted, run_jobs

#: Schema version of ``results/CHAOS.json``.  2: per-run entries are
#: compacted to counts + a SHA-256 digest of the full entry.
CHAOS_SCHEMA = 2

#: The default fault cocktail (the acceptance sweep's three kinds).
DEFAULT_CHAOS_FAULTS = ("stall", "lost_wakeup", "crash")


class ChaosInterrupted(Exception):
    """Ctrl-C mid-sweep; ``partial`` is a valid, writable ChaosResult."""

    def __init__(self, partial):
        super().__init__("chaos sweep interrupted")
        self.partial = partial


class ChaosResult:
    """Aggregated chaos sweep output."""

    def __init__(self, entries, kinds, seeds, duration_s, fingerprint,
                 stats):
        #: {(case_id, kind, seed): entry dict}
        self.entries = entries
        self.kinds = list(kinds)
        self.seeds = list(seeds)
        self.duration_s = duration_s
        self.fingerprint = fingerprint
        #: wall-clock accounting; printed, never persisted.
        self.stats = stats

    def total_violations(self):
        return sum(len(entry["chaos"]["violations"])
                   for entry in self.entries.values())

    def violations(self):
        """Flat list of every violation dict across all entries."""
        found = []
        for (case_id, kind, seed), entry in sorted(self.entries.items()):
            for violation in entry["chaos"]["violations"]:
                found.append(violation)
        return found

    def to_json_dict(self):
        """The ``results/CHAOS.json`` payload (wall-clock free)."""
        cases = {}
        crashes = recoveries = stale = deadlocks = fired = 0
        for (case_id, kind, seed), entry in sorted(self.entries.items()):
            per_case = cases.setdefault(case_id, {})
            per_case.setdefault(kind, {})[str(seed)] = _compact_entry(entry)
            chaos = entry["chaos"]
            crashes += chaos["crashes"]
            fired += len(chaos["fired"])
            watchdog = chaos.get("watchdog") or {}
            recoveries += watchdog.get("recoveries", 0)
            stale += watchdog.get("stale_repairs", 0)
            deadlocks += watchdog.get("deadlocks", 0)
        return {
            "schema": CHAOS_SCHEMA,
            "code_fingerprint": self.fingerprint,
            "duration_s": self.duration_s,
            "seeds": list(self.seeds),
            "faults": list(self.kinds),
            "summary": {
                "runs": len(self.entries),
                "violations": self.total_violations(),
                "faults_fired": fired,
                "crashes_contained": crashes,
                "watchdog_recoveries": recoveries,
                "stale_repairs": stale,
                "deadlocks": deadlocks,
            },
            "cases": cases,
        }

    def write_json(self, path):
        """Atomically write :meth:`to_json_dict` to ``path``.

        Write-to-temp + ``os.replace`` so an interrupt mid-write can
        never leave a truncated JSON file behind.  If serialization or
        the write itself fails (including KeyboardInterrupt on the
        partial-result exit-130 path), the temp file is removed so no
        stale ``.tmp`` sits next to the output.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(self.to_json_dict(), handle, indent=1,
                          sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def chaos_spec(case_id, kind, seed, duration_s):
    """The job spec for one chaos run (pBox solution + fault cocktail)."""
    return JobSpec(case_id, "pbox", seed=seed, duration_s=duration_s,
                   faults=kind)


def _entry(result):
    """Deterministic slice of a job result for the chaos payload."""
    return {
        "victim_mean_us": result["victim_mean_us"],
        "victim_p95_us": result["victim_p95_us"],
        "victim_samples": result["victim_samples"],
        "error": result.get("error"),
        "chaos": result["chaos"],
    }


def entry_digest(entry):
    """SHA-256 over the canonical JSON of a full per-run entry."""
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _compact_entry(entry):
    """The persisted (schema 2) summary of one chaos run.

    Counts only, plus a truncated digest of the full entry: a
    behavioral change anywhere in the run (a shifted injection time, a
    different woken thread, a new violation detail) flips ``digest``
    even when every count is unchanged.  64 bits of digest is ample for
    drift *detection* -- nothing adversarial hashes here.
    """
    chaos = entry["chaos"]
    watchdog = chaos.get("watchdog") or {}
    return {
        "digest": entry_digest(entry)[:16],
        "victim_mean_us": round(entry["victim_mean_us"], 3),
        "victim_p95_us": entry["victim_p95_us"],
        "victim_samples": entry["victim_samples"],
        "error": entry["error"],
        "faults_fired": len(chaos["fired"]),
        "faults_skipped": len(chaos["skipped"]),
        "crashes": chaos["crashes"],
        "violations": len(chaos["violations"]),
        "recoveries": watchdog.get("recoveries", 0),
        "stale_repairs": watchdog.get("stale_repairs", 0),
        "deadlocks": watchdog.get("deadlocks", 0),
    }


def run_chaos(case_ids=None, kinds=DEFAULT_CHAOS_FAULTS, seeds=(1, 2, 3),
              duration_s=3.0, jobs=1, cache=None, use_cache=True,
              progress=None, fingerprint=None, timeout_s=None,
              run_stats=None):
    """Run the chaos matrix; returns a :class:`ChaosResult`.

    Raises :class:`ChaosInterrupted` on Ctrl-C with the completed
    subset attached, so callers can persist partial results atomically.
    """
    import time

    from repro.runner.sweep import sweep_case_ids

    if case_ids is None:
        case_ids = sweep_case_ids()
    kinds = list(kinds)
    seeds = list(seeds)
    if fingerprint is None:
        fingerprint = code_fingerprint()
    if use_cache and cache is None:
        cache = ResultCache()
    started = time.perf_counter()
    hits_before = cache.hits if cache is not None else 0

    keyed = {}
    specs = []
    for case_id in case_ids:
        for kind in kinds:
            for seed in seeds:
                spec = chaos_spec(case_id, kind, seed, duration_s)
                keyed[(case_id, kind, seed)] = spec.key(fingerprint)
                specs.append(spec)

    interrupted = False
    try:
        results = run_jobs(specs, jobs=jobs, cache=cache,
                           use_cache=use_cache, progress=progress,
                           fingerprint=fingerprint, timeout_s=timeout_s,
                           stats=run_stats)
    except RunInterrupted as stop:
        results = stop.results
        interrupted = True

    entries = {}
    for combo, key in keyed.items():
        result = results.get(key)
        if result is not None:
            entries[combo] = _entry(result)

    hits = (cache.hits - hits_before) if cache is not None else 0
    stats = {
        "total": len(specs),
        "completed": len(entries),
        "cache_hits": hits,
        "workers": max(1, int(jobs or 1)),
        "wall_s": round(time.perf_counter() - started, 3),
    }
    chaos_result = ChaosResult(entries, kinds, seeds, duration_s,
                               fingerprint, stats)
    if interrupted:
        raise ChaosInterrupted(chaos_result)
    return chaos_result
