"""Always-on invariant checkers for chaos runs.

The suite subscribes to the tracepoint bus and audits the final kernel
and manager state, asserting properties that must hold *no matter what
faults were injected*:

- **no-deadlock**: the idle watchdog never reaches a deadlock verdict
  (lost wake-ups must be repaired, crashes must not strand waiters);
- **penalty-bounded**: no delivered penalty ever exceeds the manager's
  cap, even when a misfire fault queues twenty seconds of delay;
- **time-monotonic**: tracepoint timestamps never move backwards;
- **time-conservation**: the run ends exactly at its deadline (virtual
  time neither stalls short nor overshoots);
- **no-dangling-owner**: no dead thread remains registered as a
  resource holder (the robust-futex purge worked);
- **no-starved-waiter**: at the end of the run, no thread has been
  blocked longer than the starvation budget on a lock-like key with no
  live holder.

Violations carry enough context to reproduce: the chaos harness
decorates each one into a minimized repro spec (case, seed, fault
kinds, nearest fired fault).
"""

from repro.core.manager import PENALTY_CAP_US


class InvariantViolation:
    """One broken invariant, with where and why."""

    __slots__ = ("name", "time_us", "detail")

    def __init__(self, name, time_us, detail):
        self.name = name
        self.time_us = int(time_us)
        self.detail = detail

    def to_dict(self):
        return {
            "invariant": self.name,
            "time_us": self.time_us,
            "detail": self.detail,
        }

    def __repr__(self):
        return "InvariantViolation(%s@%dus: %s)" % (
            self.name, self.time_us, self.detail)


class InvariantSuite:
    """Audits one simulation run; collects violations instead of raising.

    Chaos workers must stay alive through arbitrary fault cocktails, so
    a broken invariant is recorded (capped, to bound memory under a
    pathological run) and reported in the job result rather than thrown.
    """

    MAX_VIOLATIONS = 100

    def __init__(self, penalty_cap_us=PENALTY_CAP_US,
                 starvation_us=1_000_000):
        self.penalty_cap_us = penalty_cap_us
        self.starvation_us = starvation_us
        self.violations = []
        self.kernel = None
        self.manager = None
        self._last_event_us = 0

    # ------------------------------------------------------------------

    def attach(self, kernel, manager=None):
        """Subscribe to ``kernel``'s tracepoint bus."""
        self.kernel = kernel
        self.manager = manager
        kernel.trace.subscribe_all(self._on_event)

    def record(self, name, time_us, detail):
        """Add one violation (bounded; see MAX_VIOLATIONS)."""
        if len(self.violations) < self.MAX_VIOLATIONS:
            self.violations.append(InvariantViolation(name, time_us, detail))

    def on_deadlock(self, suspects):
        """Watchdog callback: repair failed, the run is wedged."""
        now = 0 if self.kernel is None else self.kernel.clock.now_us
        self.record("no-deadlock", now,
                    "blocked threads: %s"
                    % ", ".join(thread.name for thread in suspects[:8]))

    # ------------------------------------------------------------------

    def _on_event(self, name, time_us, fields):
        if time_us < self._last_event_us:
            self.record("time-monotonic", time_us,
                        "%s fired at %d after an event at %d"
                        % (name, time_us, self._last_event_us))
        else:
            self._last_event_us = time_us
        if name in ("pbox.penalty", "penalty.inject"):
            delay = fields.get("delay_us") or 0
            if delay > self.penalty_cap_us:
                self.record("penalty-bounded", time_us,
                            "%s delivered %dus > cap %dus"
                            % (name, delay, self.penalty_cap_us))

    # ------------------------------------------------------------------

    def finish(self, until_us):
        """Run the end-of-simulation audits; returns the violation list."""
        kernel = self.kernel
        if kernel is None:
            return self.violations
        now = kernel.clock.now_us
        if now != until_us:
            self.record("time-conservation", now,
                        "run ended at %dus, expected %dus" % (now, until_us))
        for thread in kernel.futexes.all_owner_threads():
            if not thread.alive:
                self.record("no-dangling-owner", now,
                            "dead thread %s (tid %d) still registered "
                            "as a holder" % (thread.name, thread.tid))
        for key in kernel.futexes.keys():
            if not hasattr(key, "_on_owner_death"):
                continue  # queues/conditions idle legitimately
            owners = kernel.futexes.owners(key)
            if any(owner.alive for owner in owners):
                continue
            for waiter in kernel.futexes.waiters(key):
                waited = now - waiter.blocked_since_us
                if waiter.alive and waited > self.starvation_us:
                    self.record("no-starved-waiter", now,
                                "%s blocked %dus on un-held %r"
                                % (waiter.name, waited, key))
        return self.violations
