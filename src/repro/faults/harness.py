"""The chaos harness: one object wiring faults into one case run.

``ChaosHarness.observer`` plugs into :func:`repro.cases.run_case`'s
``observer`` hook: once the environment is assembled (kernel, runtime,
timing) but before the case builds, it derives the fault plan from the
chaos seed, arms the injector and the idle watchdog, and attaches the
invariant suite.  After the run, :meth:`finish` folds everything into
one JSON-safe dict.

Nothing in the harness output depends on wall-clock time or process
identity, so a chaos result is bit-identical across re-runs and safe to
content-address in the runner cache.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantSuite
from repro.faults.plan import FaultPlan
from repro.sim.kernel import IdleWatchdog

#: Faults are planned inside [warmup + slack, 0.9 * duration]: late
#: enough that victims have produced samples (run_case rejects empty
#: recorders), early enough that recovery has time to play out before
#: the deadline.
WINDOW_SLACK_FRACTION = 0.1
WINDOW_END_FRACTION = 0.9


class ChaosHarness:
    """Fault plan + injector + invariants + watchdog for one run."""

    def __init__(self, kinds, seed, case_id=None, faults_per_kind=2,
                 watchdog_period_us=50_000):
        self.kinds = tuple(kinds)
        self.seed = int(seed)
        self.case_id = case_id
        self.faults_per_kind = faults_per_kind
        self.watchdog_period_us = watchdog_period_us
        self.suite = InvariantSuite()
        self.plan = None
        self.injector = None
        self.watchdog = None
        self._env = None

    @property
    def attached(self):
        """True once ``observer`` has run (the run actually started)."""
        return self._env is not None

    def observer(self, env):
        """``run_case`` observer: arm everything against ``env``."""
        self._env = env
        kernel = env.kernel
        manager = env.runtime.manager
        window = env.duration_us - env.warmup_us
        start_us = env.warmup_us + int(window * WINDOW_SLACK_FRACTION)
        end_us = int(env.duration_us * WINDOW_END_FRACTION)
        self.plan = FaultPlan.generate(
            self.kinds, seed=self.seed, start_us=start_us, end_us=end_us,
            count_per_kind=self.faults_per_kind)
        self.injector = FaultInjector(kernel, manager=manager)
        self.injector.arm(self.plan)
        self.watchdog = IdleWatchdog(
            kernel, period_us=self.watchdog_period_us,
            on_deadlock=self.suite.on_deadlock)
        self.watchdog.arm(env.duration_us)
        self.suite.attach(kernel, manager)

    def record_failure(self, exc):
        """The run itself raised: containment failed, record it."""
        now = 0 if self._env is None else self._env.kernel.clock.now_us
        self.suite.record("run-completes", now, repr(exc))

    def finish(self):
        """Close the audit and return the JSON-safe chaos summary."""
        env = self._env
        if env is None:
            return {"violations": [], "plan": None, "fired": [],
                    "skipped": [], "watchdog": None, "heal": {},
                    "crashes": 0}
        violations = self.suite.finish(env.duration_us)
        manager = env.runtime.manager
        heal = {
            key: manager.stats.get(key, 0)
            for key in ("penalty_backoffs", "safe_mode_releases",
                        "penalty_clamped", "penalty_reverts")
        }
        return {
            "violations": [self._decorate(v) for v in violations],
            "plan": self.plan.to_dict(),
            "fired": list(self.injector.fired),
            "skipped": list(self.injector.skipped),
            "watchdog": self.watchdog.stats(),
            "heal": heal,
            "crashes": env.kernel.stats.get("crashes", 0),
        }

    def _decorate(self, violation):
        """Violation dict + the minimized repro spec.

        ``repro`` is everything needed to replay the failure in one
        process: the case, the chaos seed, the fault cocktail, and the
        last fault that fired at or before the violation (usually the
        trigger).
        """
        entry = violation.to_dict()
        nearest = None
        for record in self.injector.fired:
            if record["at_us"] <= violation.time_us:
                nearest = record
        entry["repro"] = {
            "case": self.case_id,
            "seed": self.seed,
            "faults": ",".join(self.kinds),
            "nearest_fault": nearest,
        }
        return entry
