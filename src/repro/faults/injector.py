"""The fault injector: arms a plan as virtual-time kernel timers.

Each :class:`~repro.faults.plan.FaultSpec` becomes one ``kernel.post``
callback at its planned virtual time.  Target selection happens at fire
time (the planned selector indexes into whatever candidates exist right
then) and only consults deterministic orderings -- the kernel's spawn-
ordered thread list, the wait-queue table's insertion-ordered owner
registry, the manager's psid-ordered pBox table -- so a chaos run is as
replayable as a vanilla one.

Fired and skipped faults are recorded as JSON-safe dicts; a fault is
*skipped* (not an error) when no suitable target exists at its instant,
e.g. a ``holder_stall`` planned for a moment when no lock is held.
"""

from repro.obs.tracepoints import key_label


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running kernel."""

    def __init__(self, kernel, manager=None):
        self.kernel = kernel
        self.manager = manager
        self.fired = []      # JSON-safe records of faults that hit
        self.skipped = []    # planned faults with no target at fire time
        self._tp_inject = kernel.trace.point("fault.inject")

    def arm(self, plan):
        """Schedule every spec in ``plan`` as a kernel timer."""
        for spec in plan:
            self.kernel.post(spec.at_us,
                             lambda spec=spec: self._fire(spec))

    # ------------------------------------------------------------------

    def _fire(self, spec):
        handler = getattr(self, "_fire_" + spec.kind)
        target = handler(spec)
        record = {
            "kind": spec.kind,
            "at_us": spec.at_us,
            "param_us": spec.param_us,
            "target": target,
        }
        if target is None:
            self.skipped.append(record)
            return
        self.fired.append(record)
        if self._tp_inject.active:
            self._tp_inject.fire(self.kernel.clock.now_us, kind=spec.kind,
                                 at_us=spec.at_us, target=target,
                                 param_us=spec.param_us)

    def _alive_threads(self):
        return [t for t in self.kernel.threads if t.alive]

    def _alive_owners(self):
        return [t for t in self.kernel.futexes.all_owner_threads()
                if t.alive]

    # -- fault kinds ----------------------------------------------------

    def _fire_stall(self, spec):
        """Charge a stall to an arbitrary thread (models preemption)."""
        threads = self._alive_threads()
        if not threads:
            return None
        target = threads[spec.selector % len(threads)]
        target.overhead_us += spec.param_us
        return "tid:%d" % target.tid

    def _fire_holder_stall(self, spec):
        """Stall a thread that currently holds a resource.

        The overhead lands before the holder's next syscall -- i.e.
        inside its critical section -- so the hold time stretches by
        ``param_us`` and every waiter behind it becomes a victim.
        """
        owners = self._alive_owners()
        if not owners:
            return None
        target = owners[spec.selector % len(owners)]
        target.overhead_us += spec.param_us
        return "tid:%d" % target.tid

    def _fire_lost_wakeup(self, spec):
        """Arm a one-shot filter that swallows the next contended wake."""
        if self.kernel.wake_filter is not None:
            return None  # a previous lost_wakeup is still armed

        def drop_one(key, n):
            if not self.kernel.futexes.waiters(key):
                return True  # uncontended wake: dropping it is a no-op
            self.kernel.wake_filter = None
            self.fired.append({
                "kind": "lost_wakeup_drop",
                "at_us": self.kernel.clock.now_us,
                "param_us": 0,
                "target": key_label(key),
            })
            return False

        self.kernel.wake_filter = drop_one
        return "armed"

    def _fire_crash(self, spec):
        """Kill a thread; prefer one inside a critical section."""
        pool = self._alive_owners() or self._alive_threads()
        if not pool:
            return None
        target = pool[spec.selector % len(pool)]
        self.kernel.kill_thread(target)
        return "tid:%d" % target.tid

    def _fire_penalty_misfire(self, spec):
        """Queue an absurd pending penalty on some pBox.

        Bypasses the penalty engine entirely (that is the point: the
        fault models a buggy decision), so the manager's clamp and
        revert healing is the only thing standing between the victim
        thread and a 20-second stall.
        """
        if self.manager is None:
            return None
        boxes = self.manager.pboxes()
        if not boxes:
            return None
        target = boxes[spec.selector % len(boxes)]
        self.manager.inject_penalty(target, spec.param_us)
        return "psid:%d" % target.psid

    def _fire_tracepoint_drop(self, spec):
        """Disable one live tracepoint for ``param_us``.

        Exercises every subscriber's tolerance for gaps in the event
        stream (the invariant suite must not report false violations
        just because it went blind for a window).
        """
        trace = self.kernel.trace
        live = [name for name in trace.names() if trace.enabled(name)]
        if not live:
            return None
        name = live[spec.selector % len(live)]
        tp = trace.point(name)
        tp.active = False

        def restore():
            tp.active = bool(tp._subs)

        self.kernel.post(spec.at_us + spec.param_us, restore)
        return name
