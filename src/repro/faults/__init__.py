"""Deterministic fault injection, invariant checking, chaos sweeps.

The robustness layer of the reproduction (docs/ROBUSTNESS.md):

- :mod:`repro.faults.plan` — declarative, SHA-256-seeded fault plans
  (:class:`FaultSpec` / :class:`FaultPlan`);
- :mod:`repro.faults.injector` — :class:`FaultInjector`: arms a plan as
  virtual-time kernel timers and records what actually fired;
- :mod:`repro.faults.invariants` — :class:`InvariantSuite`: always-on
  assertions over the tracepoint bus and the final kernel state;
- :mod:`repro.faults.harness` — :class:`ChaosHarness`: one-object
  wiring of all of the above into a ``run_case`` observer;
- :mod:`repro.faults.chaos` — :func:`run_chaos`: the cases x faults x
  seeds sweep behind ``python -m repro chaos`` and
  ``results/CHAOS.json``.

Every fault fires at a planned integer virtual time with SHA-256-
derived parameters, so chaos runs inherit the simulator's bit-for-bit
determinism: the same spec always injects the same faults, hits the
same targets, and produces the same result dict.
"""

from repro.faults.chaos import (
    CHAOS_SCHEMA,
    DEFAULT_CHAOS_FAULTS,
    ChaosInterrupted,
    ChaosResult,
    chaos_spec,
    run_chaos,
)
from repro.faults.harness import ChaosHarness
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantSuite, InvariantViolation
from repro.faults.plan import (
    DEFAULT_PARAM_US,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CHAOS_SCHEMA",
    "DEFAULT_CHAOS_FAULTS",
    "DEFAULT_PARAM_US",
    "FAULT_KINDS",
    "ChaosHarness",
    "ChaosInterrupted",
    "ChaosResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantSuite",
    "InvariantViolation",
    "chaos_spec",
    "run_chaos",
]
