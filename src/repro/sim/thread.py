"""Simulated threads.

A :class:`SimThread` wraps a generator function (the thread body) plus the
scheduling state the kernel needs: run state, cgroup membership, core
affinity, accumulated CPU time, and the pBox bookkeeping slot that the
manager hangs per-thread data off (mirroring the ``task_struct`` field the
kernel patch adds).
"""

import enum
import itertools


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"      # waiting on a futex
    SLEEPING = "sleeping"    # timed sleep
    THROTTLED = "throttled"  # cgroup bandwidth exhausted
    EXITED = "exited"


_ids = itertools.count(1)


def reset_thread_ids():
    """Reset the global thread-id counter (test isolation helper)."""
    global _ids
    _ids = itertools.count(1)


class SimThread:
    """A kernel-schedulable thread backed by a generator.

    Parameters
    ----------
    body:
        A generator (already instantiated) or a zero-argument callable
        returning one.  The generator yields syscall objects.
    name:
        Debug name; shows up in reprs and traces.
    cgroup:
        Optional :class:`~repro.sim.cgroup.Cgroup` for CPU bandwidth
        accounting.  ``None`` means the unconstrained root group.
    affinity:
        Optional set of core indices the thread may run on (used by the
        DARC baseline).  ``None`` means any core.
    """

    def __init__(self, body, name=None, cgroup=None, affinity=None):
        self.tid = next(_ids)
        self.name = name or ("thread-%d" % self.tid)
        if callable(body) and not hasattr(body, "send"):
            body = body()
        if not hasattr(body, "send"):
            raise TypeError("thread body must be a generator")
        self.body = body
        self.state = ThreadState.NEW
        self.cgroup = cgroup
        self.affinity = affinity
        self.return_value = None

        # Scheduling bookkeeping (owned by the kernel/scheduler).
        self.pending_compute_us = 0
        self.cpu_time_us = 0          # total CPU consumed
        self.wakeup_event = None      # cancellable timer for sleeps/timeouts
        self.wait_key = None          # futex key while BLOCKED
        self.blocked_since_us = 0     # when the current futex wait began
        self.joiners = []             # threads blocked in Join on us
        self.started_at_us = None
        self.exited_at_us = None

        # Extra compute injected before the next resume; used to model the
        # per-call overhead of pBox operations without littering app code.
        self.overhead_us = 0

        # Priority-penalty extension: while demoted, the scheduler only
        # runs this thread when no normal thread is runnable.
        self.demoted_until_us = 0

        # EEVDF scheduler policy state (sim.scheduler.EevdfRunQueue):
        # cumulative virtual runtime plus the eligible/deadline stamps
        # of the thread's current queue residency.  The FIFO policy
        # never reads or writes them, so the default path is unchanged.
        self.vruntime_us = 0
        self.v_eligible_us = 0
        self.v_deadline_us = 0

        # Slot for the pBox runtime: the pbox currently bound to this
        # thread (the paper binds a pBox to the creating thread).
        self.pbox = None

    @property
    def alive(self):
        """True until the thread body returns or raises StopIteration."""
        return self.state is not ThreadState.EXITED

    def __repr__(self):
        return "SimThread(tid=%d, name=%r, state=%s)" % (
            self.tid,
            self.name,
            self.state.value,
        )
