"""Syscall objects yielded by simulated threads.

A simulated thread is a Python generator.  It interacts with the kernel
by yielding one of the syscall objects below; the kernel performs the
action and resumes the generator with the syscall's return value, e.g.::

    def worker():
        yield Compute(us=500)          # burn 500 us of CPU
        woken = yield FutexWait(lock)  # block until FutexWake(lock)
        now = yield Now()

The set mirrors what the paper's mechanism needs to observe: CPU
consumption, timed sleeps (``os_thread_sleep`` in Figure 9), futex-style
waits (the "waiting-related syscalls" of Section 4.2.2), and thread
lifecycle.
"""


class Syscall:
    """Base class; exists so kernels can type-check yields."""

    __slots__ = ()


class Compute(Syscall):
    """Consume ``us`` microseconds of CPU time.

    The time is charged against the thread's cgroup and is preemptible at
    scheduler-quantum granularity, so concurrent compute on fewer cores
    stretches in wall-clock (virtual) time exactly as on a real machine.
    """

    __slots__ = ("us",)

    def __init__(self, us):
        if us < 0:
            raise ValueError("compute time must be non-negative")
        self.us = int(us)

    def __repr__(self):
        return "Compute(us=%d)" % self.us


class Sleep(Syscall):
    """Sleep off-CPU for ``us`` microseconds (like ``usleep``)."""

    __slots__ = ("us",)

    def __init__(self, us):
        if us < 0:
            raise ValueError("sleep time must be non-negative")
        self.us = int(us)

    def __repr__(self):
        return "Sleep(us=%d)" % self.us


class FutexWait(Syscall):
    """Block on the wait queue identified by ``key``.

    Returns ``True`` when woken by :class:`FutexWake`, ``False`` when the
    optional ``timeout_us`` expires first.  ``key`` may be any hashable
    object; application models use the contended object itself, which
    matches the paper's use of object addresses as resource keys.
    """

    __slots__ = ("key", "timeout_us")

    def __init__(self, key, timeout_us=None):
        self.key = key
        self.timeout_us = None if timeout_us is None else int(timeout_us)

    def __repr__(self):
        return "FutexWait(key=%r, timeout_us=%r)" % (self.key, self.timeout_us)


class FutexWake(Syscall):
    """Wake up to ``n`` threads waiting on ``key``; returns count woken."""

    __slots__ = ("key", "n")

    def __init__(self, key, n=1):
        self.key = key
        self.n = int(n)

    def __repr__(self):
        return "FutexWake(key=%r, n=%d)" % (self.key, self.n)


class Spawn(Syscall):
    """Start a new :class:`~repro.sim.thread.SimThread`; returns it."""

    __slots__ = ("thread",)

    def __init__(self, thread):
        self.thread = thread

    def __repr__(self):
        return "Spawn(%r)" % (self.thread,)


class Join(Syscall):
    """Block until ``thread`` exits; returns the thread's return value."""

    __slots__ = ("thread",)

    def __init__(self, thread):
        self.thread = thread

    def __repr__(self):
        return "Join(%r)" % (self.thread,)


class Now(Syscall):
    """Return the current virtual time in microseconds."""

    __slots__ = ()

    def __repr__(self):
        return "Now()"


class Yield(Syscall):
    """Relinquish the CPU without consuming time (like ``sched_yield``)."""

    __slots__ = ()

    def __repr__(self):
        return "Yield()"
