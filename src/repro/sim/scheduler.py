"""Run-queue and core bookkeeping for the simulated kernel.

The scheduler is deliberately simple -- round-robin with a fixed quantum
over N cores, plus optional per-thread core affinity and cgroup bandwidth
limits.  The paper's point does not depend on CFS subtleties: what matters
is that CPU time is a schedulable, partitionable resource so hardware-
centric baselines (cgroup, PARTIES, DARC) act on the dimension they act on
in reality, while virtual-resource waits stay untouched by them.
"""

from collections import deque

from repro.sim.thread import ThreadState

DEFAULT_QUANTUM_US = 1_000


class Core:
    """One simulated CPU core."""

    def __init__(self, index):
        self.index = index
        self.running = None        # SimThread or None
        self.slice_end_event = None
        self.busy_us = 0           # lifetime utilization accounting
        self.reserved_for = None   # tag used by the DARC baseline
        # Reusable slice-end timer (allocated once by the kernel); a core
        # has at most one slice in flight, so the same heap entry object
        # can be re-armed every context switch instead of allocating a
        # fresh timer + closure per slice.
        self._slice_timer = None
        self._slice_started_us = 0

    @property
    def idle(self):
        """True when no thread occupies the core."""
        return self.running is None

    def __repr__(self):
        return "Core(index=%d, running=%r)" % (self.index, self.running)


class RunQueue:
    """Global FIFO ready queue with affinity-aware picking."""

    def __init__(self):
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    def push(self, thread):
        """Append a READY thread."""
        thread.state = ThreadState.READY
        self._queue.append(thread)

    def push_front(self, thread):
        """Prepend a READY thread (used when a slice is handed back)."""
        thread.state = ThreadState.READY
        self._queue.appendleft(thread)

    def pick_for_core(self, core):
        """Dequeue the first thread eligible to run on ``core``.

        Eligibility combines the thread's affinity mask and the core's
        reservation tag (a DARC-reserved core only accepts threads whose
        ``darc_tag`` matches).  Demoted threads (the priority-penalty
        extension) are only picked when no normal thread fits, and they
        keep FIFO order among themselves.  Returns ``None`` when
        nothing fits.
        """
        queue = self._queue
        if not queue:
            return None
        # Fast path: the head thread has no affinity mask, the core has
        # no DARC reservation, and the thread was never demoted -- the
        # overwhelmingly common case in every Table 3 scenario.
        head = queue[0]
        if (core.reserved_for is None and head.affinity is None
                and not head.demoted_until_us):
            queue.popleft()
            return head
        now = self._now()
        demoted_index = None
        for i, thread in enumerate(queue):
            if thread.affinity is not None and core.index not in thread.affinity:
                continue
            if core.reserved_for is not None:
                tag = getattr(thread, "darc_tag", None)
                if tag != core.reserved_for:
                    continue
            if thread.demoted_until_us > now:
                if demoted_index is None:
                    demoted_index = i
                continue
            del self._queue[i]
            return thread
        if demoted_index is not None:
            thread = self._queue[demoted_index]
            del self._queue[demoted_index]
            return thread
        return None

    def _now(self):
        """Current virtual time (patched in by the kernel at attach)."""
        return 0

    def remove(self, thread):
        """Remove ``thread`` if queued; returns True if it was present."""
        try:
            self._queue.remove(thread)
        except ValueError:
            return False
        return True

    def threads(self):
        """Snapshot of queued threads."""
        return list(self._queue)
