"""Run-queue and core bookkeeping for the simulated kernel.

Two scheduler policies live behind one seam (:class:`SchedPolicy`):

- ``cfs`` (:class:`RunQueue`, the default): round-robin FIFO with a
  fixed quantum over N cores -- deliberately simple, because the
  paper's point does not depend on CFS subtleties.  What matters is
  that CPU time is a schedulable, partitionable resource so hardware-
  centric baselines (cgroup, PARTIES, DARC) act on the dimension they
  act on in reality, while virtual-resource waits stay untouched by
  them.
- ``eevdf`` (:class:`EevdfRunQueue`): an EEVDF-style virtual-deadline
  policy (Earliest Eligible Virtual Deadline First, the post-6.6 Linux
  default) for the scheduler-interaction experiments: threads carry a
  virtual runtime, a push computes an eligible time and a virtual
  deadline, and a core picks the earliest deadline among eligible
  threads.

Both policies expose the same protocol (``push`` / ``push_front`` /
``pick_for_core`` / ``remove`` / ``threads``) plus two capability
attributes the kernel reads once at construction:

- ``fifo_fast_path``: True when the kernel's inlined head-of-queue
  dispatch shortcut is behaviourally identical to ``pick_for_core``
  (true only for the FIFO policy).  The CFS hot path is untouched by
  the seam -- the golden corpus pins that bit-for-bit.
- ``charge(thread, ran_us)`` (optional): invoked at every slice end
  with the CPU actually consumed, so a policy can account virtual
  runtime.  Policies without the attribute pay nothing.

Determinism: a policy may only consult the thread fields the kernel
maintains (never wall-clock or iteration order of a set), must break
ties by queue arrival order, and must keep all arithmetic in integer
microseconds -- the same contract the kernel documents.
"""

from collections import deque

from repro.sim.thread import ThreadState

DEFAULT_QUANTUM_US = 1_000


class Core:
    """One simulated CPU core."""

    def __init__(self, index):
        self.index = index
        self.running = None        # SimThread or None
        self.slice_end_event = None
        self.busy_us = 0           # lifetime utilization accounting
        self.reserved_for = None   # tag used by the DARC baseline
        # Reusable slice-end timer (allocated once by the kernel); a core
        # has at most one slice in flight, so the same heap entry object
        # can be re-armed every context switch instead of allocating a
        # fresh timer + closure per slice.
        self._slice_timer = None
        self._slice_started_us = 0

    @property
    def idle(self):
        """True when no thread occupies the core."""
        return self.running is None

    def __repr__(self):
        return "Core(index=%d, running=%r)" % (self.index, self.running)


class SchedPolicy:
    """Protocol shared by the pluggable run-queue policies.

    Subclasses own a ``_queue`` deque (the kernel's dispatch loop tests
    its truthiness directly) and implement the push/pick methods.  The
    bookkeeping helpers below are policy-independent.
    """

    #: Policy name as selected by ``Kernel(sched=...)``.
    name = "base"

    #: True when the kernel's inlined head-of-queue dispatch shortcut
    #: (pop the head if it has no affinity, no demotion, and the core
    #: has no reservation) is equivalent to ``pick_for_core``.
    fifo_fast_path = False

    def __len__(self):
        return len(self._queue)

    def _now(self):
        """Current virtual time (patched in by the kernel at attach)."""
        return 0

    def remove(self, thread):
        """Remove ``thread`` if queued; returns True if it was present."""
        try:
            self._queue.remove(thread)
        except ValueError:
            return False
        return True

    def threads(self):
        """Snapshot of queued threads."""
        return list(self._queue)


class RunQueue(SchedPolicy):
    """Global FIFO ready queue with affinity-aware picking (``cfs``)."""

    name = "cfs"
    fifo_fast_path = True

    def __init__(self):
        self._queue = deque()

    def push(self, thread):
        """Append a READY thread."""
        thread.state = ThreadState.READY
        self._queue.append(thread)

    def push_front(self, thread):
        """Prepend a READY thread (used when a slice is handed back)."""
        thread.state = ThreadState.READY
        self._queue.appendleft(thread)

    def pick_for_core(self, core):
        """Dequeue the first thread eligible to run on ``core``.

        Eligibility combines the thread's affinity mask and the core's
        reservation tag (a DARC-reserved core only accepts threads whose
        ``darc_tag`` matches).  Demoted threads (the priority-penalty
        extension) are only picked when no normal thread fits, and they
        keep FIFO order among themselves.  Returns ``None`` when
        nothing fits.
        """
        queue = self._queue
        if not queue:
            return None
        # Fast path: the head thread has no affinity mask, the core has
        # no DARC reservation, and the thread was never demoted -- the
        # overwhelmingly common case in every Table 3 scenario.
        head = queue[0]
        if (core.reserved_for is None and head.affinity is None
                and not head.demoted_until_us):
            queue.popleft()
            return head
        now = self._now()
        demoted_index = None
        for i, thread in enumerate(queue):
            if thread.affinity is not None and core.index not in thread.affinity:
                continue
            if core.reserved_for is not None:
                tag = getattr(thread, "darc_tag", None)
                if tag != core.reserved_for:
                    continue
            if thread.demoted_until_us > now:
                if demoted_index is None:
                    demoted_index = i
                continue
            del self._queue[i]
            return thread
        if demoted_index is not None:
            thread = self._queue[demoted_index]
            del self._queue[demoted_index]
            return thread
        return None


class EevdfRunQueue(SchedPolicy):
    """EEVDF-style virtual-deadline ready queue (``eevdf``).

    Simplified single-weight EEVDF: the queue keeps a virtual clock
    ``vtime_us``; a push *places* the thread -- its vruntime catches up
    to the virtual clock if it fell behind (the ``place_entity`` rule:
    sleepers and newborns must not hoard an unbounded lag claim) --
    then stamps eligible time = vruntime and virtual deadline =
    eligible + slice.  A core picks the earliest deadline among
    *eligible* threads (``eligible <= vtime``), so a thread that was
    preempted mid-burst (vruntime ahead of the clock) waits while
    fresh, behind-the-clock threads leapfrog it -- the lag semantics
    that distinguish EEVDF from the FIFO policy.  Work conservation is
    explicit: when every feasible thread is still ineligible, the
    virtual clock jumps forward to the first eligible point rather
    than idling the core.  Ties break by queue arrival order (strict
    ``<`` comparisons over a deterministic scan), and every quantity
    is an integer microsecond, so the policy inherits the kernel's
    bit-for-bit determinism contract.

    Invariants the property suite pins (tests/test_sched_policies.py):

    - deadlines are monotone per thread (eligible times never move
      backwards: ``vruntime`` and ``vtime`` only grow);
    - no starvation: a picked thread's vruntime grows by the service
      it received, so a waiting thread's fixed deadline eventually
      becomes the minimum;
    - work conservation: ``pick_for_core`` returns a thread whenever
      any feasible (affinity/reservation) thread is queued.
    """

    name = "eevdf"
    fifo_fast_path = False

    def __init__(self, slice_us=DEFAULT_QUANTUM_US):
        self._queue = deque()
        self.slice_us = slice_us
        self.vtime_us = 0

    def _enter(self, thread):
        thread.state = ThreadState.READY
        if thread.vruntime_us < self.vtime_us:
            # place_entity: a thread that slept (or was just born)
            # re-enters at the virtual clock instead of cashing in the
            # lag it accumulated off-CPU.
            thread.vruntime_us = self.vtime_us
        thread.v_eligible_us = thread.vruntime_us
        thread.v_deadline_us = thread.vruntime_us + self.slice_us

    def push(self, thread):
        """Stamp eligibility/deadline and append a READY thread."""
        self._enter(thread)
        self._queue.append(thread)

    def push_front(self, thread):
        """Handed-back slice: same stamping, earlier tie-break rank."""
        self._enter(thread)
        self._queue.appendleft(thread)

    def charge(self, thread, ran_us):
        """Account ``ran_us`` of service against the virtual clocks.

        The thread's vruntime advances by its service; the queue's
        virtual clock advances by the service spread over the runnable
        population (single-weight fair rate).  The explicit jump in
        ``pick_for_core`` keeps work conservation independent of this
        rate's rounding.
        """
        if ran_us <= 0:
            return
        thread.vruntime_us += ran_us
        runnable = len(self._queue) + 1
        self.vtime_us += max(1, ran_us // runnable)

    def _feasible(self, thread, core, reserved):
        if thread.affinity is not None and core.index not in thread.affinity:
            return False
        if reserved is not None:
            if getattr(thread, "darc_tag", None) != reserved:
                return False
        return True

    def pick_for_core(self, core):
        """Dequeue the earliest-deadline eligible thread for ``core``.

        Demoted threads are only picked when no normal feasible thread
        exists, mirroring the FIFO policy's demotion semantics (with
        min-deadline order among the demoted).
        """
        queue = self._queue
        if not queue:
            return None
        now = self._now()
        reserved = core.reserved_for
        min_eligible = None
        for thread in queue:
            if not self._feasible(thread, core, reserved):
                continue
            if thread.demoted_until_us > now:
                continue
            ve = thread.v_eligible_us
            if min_eligible is None or ve < min_eligible:
                min_eligible = ve
        if min_eligible is not None:
            if self.vtime_us < min_eligible:
                # Work conservation: never idle a core while a feasible
                # thread is queued -- jump the virtual clock to the
                # first eligible point.
                self.vtime_us = min_eligible
            vtime = self.vtime_us
            best = None
            best_index = -1
            for i, thread in enumerate(queue):
                if not self._feasible(thread, core, reserved):
                    continue
                if thread.demoted_until_us > now:
                    continue
                if thread.v_eligible_us > vtime:
                    continue
                if best is None or thread.v_deadline_us < best.v_deadline_us:
                    best = thread
                    best_index = i
            del queue[best_index]
            return best
        # Only demoted threads fit (or nothing does): min-deadline
        # among the feasible demoted threads.
        best = None
        best_index = -1
        for i, thread in enumerate(queue):
            if not self._feasible(thread, core, reserved):
                continue
            if best is None or thread.v_deadline_us < best.v_deadline_us:
                best = thread
                best_index = i
        if best is None:
            return None
        del queue[best_index]
        return best

    def snapshot_state(self):
        """JSON-safe policy state (checkpoint walker)."""
        return {
            "vtime_us": self.vtime_us,
            "queued": [
                (t.tid, t.vruntime_us, t.v_eligible_us, t.v_deadline_us)
                for t in self._queue
            ],
        }


#: Selectable scheduler policies (``Kernel(sched=...)``, case specs,
#: ``repro scale --sched``).
SCHED_POLICIES = {
    "cfs": RunQueue,
    "eevdf": EevdfRunQueue,
}


def make_run_queue(sched="cfs"):
    """Instantiate the run-queue policy registered under ``sched``."""
    try:
        policy = SCHED_POLICIES[sched]
    except KeyError:
        raise ValueError(
            "unknown scheduler policy %r; known: %s"
            % (sched, sorted(SCHED_POLICIES))
        ) from None
    return policy()
