"""Virtual clock for the simulated kernel.

All simulation time is kept as integer microseconds.  Integer time keeps
heap ordering exact and makes every run deterministic; helpers convert to
and from the units used in the paper (milliseconds and seconds).
"""

US_PER_MS = 1_000
US_PER_SEC = 1_000_000


def ms(value):
    """Convert milliseconds to integer microseconds of virtual time."""
    return int(round(value * US_PER_MS))


def seconds(value):
    """Convert seconds to integer microseconds of virtual time."""
    return int(round(value * US_PER_SEC))


def to_ms(us):
    """Convert integer microseconds to float milliseconds."""
    return us / US_PER_MS


def to_seconds(us):
    """Convert integer microseconds to float seconds."""
    return us / US_PER_SEC


class Clock:
    """Monotonic virtual clock owned by the kernel.

    Only the kernel advances the clock; everything else reads it.  The
    class exists (rather than a bare int) so that components can hold a
    reference and always observe the current time.

    ``now_us`` is a plain attribute, not a property: the kernel event
    loop and every tracepoint firing site read it millions of times per
    simulated second, and the descriptor-protocol overhead of a property
    was measurable in the full-registry sweep.  Treat it as read-only
    outside this class; advancing time goes through :meth:`advance_to`,
    which keeps the monotonicity check.
    """

    __slots__ = ("now_us",)

    def __init__(self, start_us=0):
        self.now_us = int(start_us)

    def advance_to(self, when_us):
        """Advance the clock to ``when_us``.

        Raises ``ValueError`` if asked to move backwards, which would
        indicate a scheduling bug in the kernel event loop.
        """
        if when_us < self.now_us:
            raise ValueError(
                "clock cannot move backwards: %d -> %d" % (self.now_us, when_us)
            )
        self.now_us = int(when_us)

    def __repr__(self):
        return "Clock(now_us=%d)" % self.now_us
