"""Futex-style wait queues.

The kernel keeps one FIFO wait queue per key (any hashable object).  This
mirrors how the paper's heuristic (Section 4.2.2) frames intra-app
interference: victims end up in waiting-related syscalls such as ``futex``
keyed by some shared object.

The table also tracks *owners*: the threads currently holding the
resource a key stands for.  Synchronization primitives register and
deregister themselves (:meth:`WaitQueueTable.add_owner` /
:meth:`WaitQueueTable.remove_owner`), so the ``futex.wait`` tracepoint
can report who a blocking thread is actually waiting *for* -- the
identity the contention attribution profiler needs to blame an
aggressor instead of recording "unknown".
"""

from collections import deque


class WaitQueueTable:
    """FIFO wait queues keyed by arbitrary hashable objects.

    When constructed with a clock and a tracepoint bus, the table fires
    ``futex.wait`` / ``futex.wake`` tracepoints so observers can follow
    blocking without patching the kernel.  ``futex.wait`` carries the
    registered owners of the key (holder tids and, when the holding
    threads are bound to pBoxes, holder psids); ``futex.wake`` carries
    the waking thread's identity.
    """

    def __init__(self, clock=None, trace=None):
        self._queues = {}
        self._owners = {}   # key -> {thread: hold count} (insertion order)
        self._waiting = 0   # total blocked threads (O(1) waiting_count)
        self._clock = clock
        if trace is not None and clock is not None:
            self._tp_wait = trace.point("futex.wait")
            self._tp_wake = trace.point("futex.wake")
        else:
            self._tp_wait = None
            self._tp_wake = None

    # -- owner registry --------------------------------------------------

    def add_owner(self, key, thread):
        """Register ``thread`` as (one of) the holder(s) of ``key``."""
        if thread is None:
            return
        holders = self._owners.get(key)
        if holders is None:
            holders = self._owners[key] = {}
        holders[thread] = holders.get(thread, 0) + 1

    def remove_owner(self, key, thread):
        """Deregister one hold of ``key`` by ``thread``."""
        holders = self._owners.get(key)
        if not holders or thread not in holders:
            return
        holders[thread] -= 1
        if holders[thread] <= 0:
            del holders[thread]
        if not holders:
            del self._owners[key]

    def owners(self, key):
        """Threads currently registered as holding ``key``."""
        return tuple(self._owners.get(key, ()))

    def purge_owner(self, thread):
        """Drop every hold registered to ``thread``; returns the leaks.

        Called by the kernel when a thread exits.  A well-behaved thread
        released everything first, so the returned list is empty and the
        scan costs one membership test per currently-held key.  A thread
        that dies holding resources (crash fault, buggy model) would
        otherwise leave a dangling owner id that the attribution layer
        blames forever and that no wake-up ever clears.

        Returns ``[(key, hold_count), ...]`` in registration order so
        the kernel can run per-primitive recovery (robust-futex style).
        """
        leaked = []
        for key in list(self._owners):
            holders = self._owners[key]
            holds = holders.pop(thread, 0)
            if holds:
                if not holders:
                    del self._owners[key]
                leaked.append((key, holds))
        return leaked

    def all_owner_threads(self):
        """Every thread currently registered as holding some key."""
        threads = []
        for holders in self._owners.values():
            for thread in holders:
                if thread not in threads:
                    threads.append(thread)
        return threads

    # -- wait queues -----------------------------------------------------

    def add(self, key, thread):
        """Append ``thread`` to the queue for ``key``."""
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        queue.append(thread)
        self._waiting += 1
        tp = self._tp_wait
        if tp is not None and tp.active:
            holders = self.owners(key)
            tp.fire(self._clock.now_us, tid=thread.tid, key=key,
                    waiters=len(queue),
                    holders=[holder.tid for holder in holders],
                    holder_psids=[
                        None if holder.pbox is None else holder.pbox.psid
                        for holder in holders
                    ])
        return queue

    def remove(self, key, thread):
        """Remove ``thread`` from ``key``'s queue; returns True if found."""
        queue = self._queues.get(key)
        if not queue:
            return False
        try:
            queue.remove(thread)
        except ValueError:
            return False
        self._waiting -= 1
        if not queue:
            del self._queues[key]
        return True

    def pop_waiters(self, key, n, waker=None):
        """Dequeue up to ``n`` threads waiting on ``key`` (FIFO order)."""
        queue = self._queues.get(key)
        if not queue:
            return []
        if n >= len(queue):
            # Whole-queue wake (wake-all broadcasts): one list copy
            # instead of a popleft loop.
            woken = list(queue)
            queue.clear()
        else:
            woken = []
            while len(woken) < n:
                woken.append(queue.popleft())
        self._waiting -= len(woken)
        if not queue:
            del self._queues[key]
        tp = self._tp_wake
        if tp is not None and tp.active and woken:
            tp.fire(self._clock.now_us, key=key, requested=n,
                    woken=[thread.tid for thread in woken],
                    waker=None if waker is None else waker.tid)
        return woken

    def waiters(self, key):
        """Snapshot (list) of threads currently waiting on ``key``."""
        return list(self._queues.get(key, ()))

    def waiting_count(self):
        """Total number of blocked threads across all keys (O(1))."""
        return self._waiting

    def keys(self):
        """Keys that currently have waiters."""
        return list(self._queues.keys())

    def snapshot_state(self, label=repr):
        """JSON-safe walk of queues and owners (checkpoint walker).

        Pure observation: keys are rendered through ``label`` so the
        output is stable across processes, queue entries keep their
        FIFO positions (wake order is part of the determinism
        contract), and everything is sorted so dict insertion order
        never leaks into the walk.
        """
        queues = sorted(
            (label(key), [thread.tid for thread in queue])
            for key, queue in self._queues.items())
        owners = sorted(
            (label(key),
             sorted((thread.tid, count) for thread, count in holders.items()))
            for key, holders in self._owners.items())
        return {"queues": queues, "owners": owners, "waiting": self._waiting}
