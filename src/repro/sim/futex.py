"""Futex-style wait queues.

The kernel keeps one FIFO wait queue per key (any hashable object).  This
mirrors how the paper's heuristic (Section 4.2.2) frames intra-app
interference: victims end up in waiting-related syscalls such as ``futex``
keyed by some shared object.
"""

from collections import OrderedDict, deque


class WaitQueueTable:
    """FIFO wait queues keyed by arbitrary hashable objects.

    When constructed with a clock and a tracepoint bus, the table fires
    ``futex.wait`` / ``futex.wake`` tracepoints so observers can follow
    blocking without patching the kernel.
    """

    def __init__(self, clock=None, trace=None):
        self._queues = {}
        self._clock = clock
        if trace is not None and clock is not None:
            self._tp_wait = trace.point("futex.wait")
            self._tp_wake = trace.point("futex.wake")
        else:
            self._tp_wait = None
            self._tp_wake = None

    def add(self, key, thread):
        """Append ``thread`` to the queue for ``key``."""
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        queue.append(thread)
        tp = self._tp_wait
        if tp is not None and tp.active:
            tp.fire(self._clock.now_us, tid=thread.tid, key=key,
                    waiters=len(queue))

    def remove(self, key, thread):
        """Remove ``thread`` from ``key``'s queue; returns True if found."""
        queue = self._queues.get(key)
        if not queue:
            return False
        try:
            queue.remove(thread)
        except ValueError:
            return False
        if not queue:
            del self._queues[key]
        return True

    def pop_waiters(self, key, n):
        """Dequeue up to ``n`` threads waiting on ``key`` (FIFO order)."""
        queue = self._queues.get(key)
        if not queue:
            return []
        woken = []
        while queue and len(woken) < n:
            woken.append(queue.popleft())
        if not queue:
            del self._queues[key]
        tp = self._tp_wake
        if tp is not None and tp.active and woken:
            tp.fire(self._clock.now_us, key=key, requested=n,
                    woken=[thread.tid for thread in woken])
        return woken

    def waiters(self, key):
        """Snapshot (list) of threads currently waiting on ``key``."""
        return list(self._queues.get(key, ()))

    def waiting_count(self):
        """Total number of blocked threads across all keys."""
        return sum(len(q) for q in self._queues.values())

    def keys(self):
        """Keys that currently have waiters."""
        return list(self._queues.keys())
