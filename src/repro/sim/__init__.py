"""Discrete-event operating-system substrate for the pBox reproduction.

The paper implements pBox inside the Linux 5.4 kernel.  That mechanism is
not expressible in pure Python, so this package provides the substitution:
a deterministic, virtual-time kernel with simulated threads, a multi-core
scheduler with cgroup-style CPU bandwidth control, futex-backed blocking
primitives, and hooks that let a pBox manager observe and delay threads the
same way the kernel patch does (``schedule_hrtimeout``).

All time is integer microseconds of *virtual* time; runs are bit-for-bit
reproducible given a seed.
"""

from repro.sim.clock import Clock
from repro.sim.errors import DeadlockError, SimulationError, ThreadCrashedError
from repro.sim.cgroup import Cgroup
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStream
from repro.sim.syscalls import (
    Compute,
    FutexWait,
    FutexWake,
    Join,
    Now,
    Sleep,
    Spawn,
    Yield,
)
from repro.sim.thread import SimThread, ThreadState
from repro.sim.primitives import (
    Condition,
    Mutex,
    RWLock,
    Semaphore,
    TaskQueue,
)

__all__ = [
    "Cgroup",
    "Clock",
    "Compute",
    "Condition",
    "DeadlockError",
    "FutexWait",
    "FutexWake",
    "Join",
    "Kernel",
    "Mutex",
    "Now",
    "RWLock",
    "RngStream",
    "Semaphore",
    "SimThread",
    "SimulationError",
    "ThreadCrashedError",
    "Sleep",
    "Spawn",
    "TaskQueue",
    "ThreadState",
    "Yield",
]
