"""CFS-bandwidth-style CPU control groups.

This models the slice of Linux cgroup v1 that the paper's cgroup baseline
uses (Section 6.3): each group has a quota of CPU microseconds per period.
When a group's threads have consumed the quota within the current period,
they are throttled until the period refreshes.  ``quota_us=None`` means
unlimited (the root group).
"""


class Cgroup:
    """A CPU bandwidth control group.

    Parameters
    ----------
    name:
        Debug name.
    quota_us:
        CPU microseconds the group may consume per ``period_us``; ``None``
        disables throttling.
    period_us:
        Bandwidth enforcement period (Linux default is 100 ms).
    """

    DEFAULT_PERIOD_US = 100_000

    def __init__(self, name, quota_us=None, period_us=DEFAULT_PERIOD_US):
        if quota_us is not None and quota_us <= 0:
            raise ValueError("quota must be positive or None")
        if period_us <= 0:
            raise ValueError("period must be positive")
        self.name = name
        self.quota_us = quota_us
        self.period_us = period_us
        self.runtime_us = 0           # consumed in the current period
        self.period_start_us = 0
        self.throttled_threads = []   # threads parked until refresh
        self.total_cpu_us = 0         # lifetime accounting
        self._tp_throttle = None
        self._tp_unthrottle = None

    def attach_trace(self, bus):
        """Wire this group's throttle tracepoints to ``bus``."""
        self._tp_throttle = bus.point("cgroup.throttle")
        self._tp_unthrottle = bus.point("cgroup.unthrottle")

    def park(self, thread, now_us):
        """Park a thread that hit the quota until the next refresh."""
        self.throttled_threads.append(thread)
        tp = self._tp_throttle
        if tp is not None and tp.active:
            tp.fire(now_us, group=self.name, tid=thread.tid)

    def set_quota(self, quota_us):
        """Change the quota at runtime (used by PARTIES-style shifting)."""
        if quota_us is not None and quota_us <= 0:
            raise ValueError("quota must be positive or None")
        was_unlimited = self.quota_us is None
        self.quota_us = quota_us
        if was_unlimited and quota_us is not None:
            # While unlimited, the kernel skips this group's per-slice
            # refresh (fast path), so the window counters may be stale;
            # start the first limited period with a clean budget.
            self.runtime_us = 0

    def refresh(self, now_us):
        """Roll the accounting window forward if the period elapsed.

        Returns the list of threads to unthrottle (callers re-queue them).
        """
        if now_us - self.period_start_us < self.period_us:
            return []
        # Align the window start so refreshes are phase-stable.
        elapsed_periods = (now_us - self.period_start_us) // self.period_us
        self.period_start_us += elapsed_periods * self.period_us
        self.runtime_us = 0
        released = self.throttled_threads
        self.throttled_threads = []
        tp = self._tp_unthrottle
        if tp is not None and tp.active and released:
            tp.fire(now_us, group=self.name,
                    tids=[thread.tid for thread in released])
        return released

    def remaining_us(self, now_us):
        """CPU budget left in the current period (None if unlimited)."""
        if self.quota_us is None:
            return None
        if now_us - self.period_start_us >= self.period_us:
            return self.quota_us
        return max(0, self.quota_us - self.runtime_us)

    def next_refresh_us(self, now_us):
        """Virtual time at which the current period ends."""
        if now_us - self.period_start_us >= self.period_us:
            return now_us
        return self.period_start_us + self.period_us

    def charge(self, us):
        """Charge ``us`` microseconds of CPU to the group."""
        self.runtime_us += us
        self.total_cpu_us += us

    def snapshot_state(self):
        """JSON-safe walk of the group's accounting (checkpoint walker)."""
        return {
            "name": self.name,
            "quota_us": self.quota_us,
            "period_us": self.period_us,
            "runtime_us": self.runtime_us,
            "period_start_us": self.period_start_us,
            "throttled": [thread.tid for thread in self.throttled_threads],
            "total_cpu_us": self.total_cpu_us,
        }

    def __repr__(self):
        return "Cgroup(name=%r, quota_us=%r, period_us=%d)" % (
            self.name,
            self.quota_us,
            self.period_us,
        )
