"""Blocking synchronization primitives built on the simulated futex.

Application models use these the way real servers use pthread primitives;
per the paper's heuristic (Section 4.2.2), these are exactly the places
where intra-app interference surfaces -- a victim activity parked in a
waiting-related syscall because of a shared virtual resource.

All ``acquire``-style operations are generators and must be driven with
``yield from``; ``release``-style operations are plain calls (they only
wake other threads, never block).
"""

from collections import deque

from repro.sim.syscalls import FutexWait

_EMPTY = object()


class Mutex:
    """A mutual-exclusion lock with futex-style barging.

    Like a pthread mutex, a releasing thread wakes one waiter but does not
    hand the lock over: a running thread can barge in first.  Holder
    identity is tracked so application models (and tests) can assert who
    owns a resource, and registered with the kernel's wait-queue table so
    blocking tracepoints can name the holder (contention attribution).
    """

    def __init__(self, kernel, name=None):
        self._kernel = kernel
        self.name = name or "mutex"
        self._owner = None

    def _register_owner(self):
        self._kernel.futexes.add_owner(self, self._owner)

    @property
    def locked(self):
        """True while some thread holds the lock."""
        return self._owner is not None

    @property
    def holder(self):
        """The :class:`SimThread` holding the lock, or ``None``."""
        return self._owner

    def acquire(self):
        """Block until the lock is held by the calling thread."""
        while self._owner is not None:
            yield FutexWait(self)
        self._owner = self._kernel.current_thread
        self._register_owner()

    def try_acquire(self):
        """Take the lock if free; returns True on success."""
        if self._owner is None:
            self._owner = self._kernel.current_thread
            self._register_owner()
            return True
        return False

    def release(self):
        """Release the lock and wake one waiter."""
        if self._owner is None:
            raise RuntimeError("releasing unlocked mutex %r" % self.name)
        self._kernel.futexes.remove_owner(self, self._owner)
        self._owner = None
        self._kernel.futex_wake(self, 1)

    def _on_owner_death(self, thread, holds):
        """Robust-futex recovery: a holder died without releasing.

        The kernel calls this after purging the dead thread from the
        wait-queue owner registry (``WaitQueueTable.purge_owner``); the
        hold counts were already dropped there, so this only has to fix
        the primitive's own state and unblock waiters.
        """
        if self._owner is thread:
            self._owner = None
            self._kernel.futex_wake(self, 1)

    def __repr__(self):
        return "Mutex(name=%r, locked=%s)" % (self.name, self.locked)


class RWLock:
    """Reader-writer lock (the model for PostgreSQL LWLocks).

    ``policy`` selects fairness:

    - ``"reader_pref"``: readers enter whenever no writer holds the lock;
      a stream of readers starves writers (this is what interference case
      c8 exploits).
    - ``"writer_pref"``: new readers queue behind waiting writers.
    """

    def __init__(self, kernel, name=None, policy="reader_pref"):
        if policy not in ("reader_pref", "writer_pref"):
            raise ValueError("unknown policy %r" % policy)
        self._kernel = kernel
        self.name = name or "rwlock"
        self.policy = policy
        self._readers = 0
        self._writer = None
        self._writers_waiting = 0

    @property
    def reader_count(self):
        """Number of threads currently holding the lock in shared mode."""
        return self._readers

    @property
    def writer(self):
        """Thread holding the lock exclusively, or ``None``."""
        return self._writer

    def acquire_shared(self):
        """Block until the lock is held in shared mode."""
        while self._blocked_for_reader():
            yield FutexWait(self)
        self._readers += 1
        self._kernel.futexes.add_owner(self, self._kernel.current_thread)

    def _blocked_for_reader(self):
        if self._writer is not None:
            return True
        if self.policy == "writer_pref" and self._writers_waiting > 0:
            return True
        return False

    def acquire_exclusive(self):
        """Block until the lock is held exclusively."""
        self._writers_waiting += 1
        try:
            while self._writer is not None or self._readers > 0:
                yield FutexWait(self)
            self._writer = self._kernel.current_thread
            self._kernel.futexes.add_owner(self, self._writer)
        finally:
            self._writers_waiting -= 1

    def release_shared(self):
        """Drop a shared hold; wakes waiters when the last reader leaves."""
        if self._readers <= 0:
            raise RuntimeError("releasing un-held shared lock %r" % self.name)
        self._readers -= 1
        self._kernel.futexes.remove_owner(self, self._kernel.current_thread)
        if self._readers == 0:
            self._kernel.futex_wake(self, n=1 << 30)

    def release_exclusive(self):
        """Drop the exclusive hold and wake all waiters."""
        if self._writer is None:
            raise RuntimeError("releasing un-held exclusive lock %r" % self.name)
        self._kernel.futexes.remove_owner(self, self._writer)
        self._writer = None
        self._kernel.futex_wake(self, n=1 << 30)

    def _on_owner_death(self, thread, holds):
        """Robust-futex recovery: drop the dead thread's holds."""
        if self._writer is thread:
            self._writer = None
            self._kernel.futex_wake(self, n=1 << 30)
        elif self._readers > 0:
            self._readers = max(0, self._readers - holds)
            if self._readers == 0:
                self._kernel.futex_wake(self, n=1 << 30)

    def __repr__(self):
        return "RWLock(name=%r, readers=%d, writer=%r)" % (
            self.name,
            self._readers,
            self._writer,
        )


class Semaphore:
    """Counting semaphore -- the model for multi-unit virtual resources
    such as InnoDB tickets or free buffer-pool blocks."""

    def __init__(self, kernel, units, name=None):
        if units < 0:
            raise ValueError("units must be non-negative")
        self._kernel = kernel
        self.name = name or "semaphore"
        self._units = units

    @property
    def available(self):
        """Units currently available."""
        return self._units

    def acquire(self, n=1):
        """Block until ``n`` units are available, then take them."""
        while self._units < n:
            yield FutexWait(self)
        self._units -= n
        self._kernel.futexes.add_owner(self, self._kernel.current_thread)

    def try_acquire(self, n=1):
        """Take ``n`` units if available; returns True on success."""
        if self._units >= n:
            self._units -= n
            self._kernel.futexes.add_owner(
                self, self._kernel.current_thread
            )
            return True
        return False

    def release(self, n=1):
        """Return ``n`` units and wake waiters."""
        self._units += n
        self._kernel.futexes.remove_owner(self, self._kernel.current_thread)
        self._kernel.futex_wake(self, n=1 << 30)

    def _on_owner_death(self, thread, holds):
        """Robust-futex recovery: return the dead thread's units.

        The owner registry counts one hold per ``acquire`` call, not per
        unit, so a multi-unit acquire is repaid as one unit per hold --
        an under-approximation that errs on the side of keeping the
        semaphore conservative rather than inflating its capacity.
        """
        self._units += holds
        self._kernel.futex_wake(self, n=1 << 30)

    def __repr__(self):
        return "Semaphore(name=%r, available=%d)" % (self.name, self._units)


class Condition:
    """Condition variable tied to a :class:`Mutex`."""

    def __init__(self, kernel, mutex, name=None):
        self._kernel = kernel
        self.mutex = mutex
        self.name = name or "condition"

    def wait(self):
        """Release the mutex, block until notified, then re-acquire."""
        self.mutex.release()
        yield FutexWait(self)
        yield from self.mutex.acquire()

    def wait_for(self, predicate):
        """Wait (repeatedly) until ``predicate()`` is true."""
        while not predicate():
            yield from self.wait()

    def notify(self, n=1):
        """Wake up to ``n`` waiters."""
        self._kernel.futex_wake(self, n)

    def notify_all(self):
        """Wake every waiter."""
        self._kernel.futex_wake(self, n=1 << 30)


class TaskQueue:
    """FIFO task queue with optional admission control.

    This models the kernel-visible queues (accept queues, epoll-fed task
    queues) that event-driven applications rely on.  The pBox manager's
    shared-thread penalty (Section 5, "Supporting Event-driven Model")
    plugs in through ``admission``: a callable ``admission(item) -> bool``
    consulted when a consumer pops.  Inadmissible items (tasks of a
    penalized pBox) are rotated to the back of the queue, exactly like the
    paper's "put back to the task queue" behaviour.
    """

    RETRY_US = 500

    def __init__(self, kernel, name=None, admission=None):
        self._kernel = kernel
        self.name = name or "taskqueue"
        self.admission = admission
        self._items = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Enqueue ``item`` and wake one consumer (never blocks)."""
        self._items.append(item)
        self._kernel.futex_wake(self, 1)

    def get(self):
        """Block until an admissible item is available; returns it."""
        while True:
            item = self._pop_admissible()
            if item is not _EMPTY:
                return item
            if self._items:
                # Everything queued is currently inadmissible (penalized);
                # retry after a short delay, like the patched syscalls do.
                yield FutexWait(self, timeout_us=self.RETRY_US)
            else:
                yield FutexWait(self)

    def try_get(self):
        """Pop an admissible item without blocking, or return ``None``."""
        item = self._pop_admissible()
        return None if item is _EMPTY else item

    def _pop_admissible(self):
        if not self._items:
            return _EMPTY
        if self.admission is None:
            return self._items.popleft()
        for _ in range(len(self._items)):
            item = self._items.popleft()
            if self.admission(item):
                return item
            self._items.append(item)
        return _EMPTY

    def __repr__(self):
        return "TaskQueue(name=%r, depth=%d)" % (self.name, len(self._items))
