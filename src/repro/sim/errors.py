"""Error types raised by the simulated kernel."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(SimulationError):
    """Raised when the event loop stalls while live threads remain blocked.

    The simulated kernel has a global view of every thread, so unlike a
    real OS it can cheaply detect that no event can ever wake the
    remaining blocked threads and fail fast instead of spinning.
    """


class ThreadCrashedError(SimulationError):
    """Raised when a simulated thread's generator raises an exception.

    The original exception is chained so test failures point at the
    application-model bug rather than at the kernel loop.
    """
