"""The discrete-event kernel: event loop, scheduler, syscalls.

This is the substitution for the Linux 5.4 kernel the paper patches.  It
runs simulated threads (generators yielding syscall objects) over N cores
in virtual time, supports cgroup CPU bandwidth limits, futex wait/wake,
timed sleeps, and -- crucially for pBox -- *resume hooks*: callbacks
consulted whenever a thread is about to continue past a syscall, which is
where the pBox manager injects its delay penalties (the moral equivalent
of the kernel patch calling ``schedule_hrtimeout`` on return to user
space).

Typical use::

    kernel = Kernel(cores=4)

    def worker():
        yield Compute(us=100)
        yield Sleep(us=50)

    kernel.spawn(worker)
    kernel.run(until_us=seconds(1))

Determinism guarantees
----------------------

Simulation is *bit-for-bit deterministic*: two kernels constructed with
the same ``(cores, quantum_us, seed)`` and driven by the same sequence
of ``spawn``/``post`` calls produce identical event orderings, identical
final virtual times, and identical thread/statistics state.  The
guarantees rest on three invariants:

- virtual time is integer microseconds and every heap entry carries a
  monotonically increasing sequence number, so event ordering has no
  ties to break non-deterministically;
- all randomness flows from the single root ``seed`` through named
  :class:`~repro.sim.rng.RngRegistry` streams, so adding a new consumer
  of randomness never perturbs existing streams;
- no wall-clock, thread-identity, or iteration-order-of-set source ever
  feeds a scheduling decision.

These invariants are what make the experiment runner's
content-addressed result cache (``repro.runner``) sound: a run is fully
described by its job spec (case, solution, seed, duration, knobs) plus
the code fingerprint, so equal keys really do mean equal results, and
parallel workers replaying jobs in any order produce output identical
to a serial sweep.
"""

import itertools
from heapq import heappop, heappush

from repro.obs.tracepoints import TracepointBus
from repro.sim.cgroup import Cgroup
from repro.sim.clock import Clock
from repro.sim.errors import DeadlockError, ThreadCrashedError
from repro.sim.futex import WaitQueueTable
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import DEFAULT_QUANTUM_US, Core, make_run_queue
from repro.sim.syscalls import (
    Compute,
    FutexWait,
    FutexWake,
    Join,
    Now,
    Sleep,
    Spawn,
    Yield,
)
from repro.sim.thread import SimThread, ThreadState
from repro.sim.timerwheel import TimerWheel

_BLOCKED = object()  # sentinel: the thread cannot continue synchronously


class _Timer:
    """A cancellable entry in the event heap."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn):
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        """Prevent the timer's callback from firing."""
        self.cancelled = True


class PenaltyArmer:
    """Batch same-expiry penalty wake-ups into one timer dispatch.

    When the manager penalizes many pBoxes in the same window, their
    delays often expire at the same microsecond.  Arming one wheel
    timer per penalty makes N simultaneous penalties cost N inserts
    and N dispatches; this armer keeps one bucket per distinct expiry
    and posts a single timer that fires the bucket's entries in arm
    order -- the same batching the futex wake-all path uses.

    Equivalence with per-penalty timers is exact under the wheel's
    ``(when, seq)`` ordering contract: a bucket's entries would have
    fired back-to-back anyway (each join still consumes a ``_seq``
    tick, so tie-breaks and event accounting are bit-identical to the
    unbatched kernel -- the golden corpus is the proof).  Handles
    support ``cancel()`` like plain timers, so ``kill_thread`` works
    unchanged.
    """

    __slots__ = ("kernel", "_buckets", "stats")

    def __init__(self, kernel):
        self.kernel = kernel
        self._buckets = {}   # when_us -> [_Timer entries, in arm order]
        self.stats = {"armed": 0, "batched": 0, "dispatches": 0}

    def arm(self, when_us, fn):
        """Schedule ``fn()`` at ``when_us``; returns a cancellable handle."""
        when_us = int(when_us)
        now = self.kernel.clock.now_us
        if when_us < now:
            when_us = now
        entry = _Timer(fn)
        self.stats["armed"] += 1
        bucket = self._buckets.get(when_us)
        if bucket is None:
            self._buckets[when_us] = [entry]
            self.kernel.post(when_us, lambda: self._fire(when_us))
        else:
            # Joining an existing bucket: burn the seq tick the
            # individual post would have consumed, so every later
            # timer keeps the exact tie-break rank it had before
            # batching (and event accounting stays comparable).
            next(self.kernel._seq)
            self.stats["batched"] += 1
            bucket.append(entry)
        return entry

    def _fire(self, when_us):
        # Pop before iterating: an entry that re-arms at this same
        # microsecond starts a fresh bucket, which fires strictly
        # later -- matching what an individual re-posted timer does.
        bucket = self._buckets.pop(when_us, None)
        if not bucket:
            return
        self.stats["dispatches"] += 1
        for entry in bucket:
            if not entry.cancelled:
                entry.fn()

    def snapshot_state(self):
        """JSON-safe walk of pending buckets (checkpoint walker).

        Records each distinct expiry and how many live entries it
        holds; the entries themselves (closures) are reconstructed by
        replay, so their count plus the trace digest pins the ordering.
        """
        buckets = sorted(
            (when, sum(1 for entry in bucket if not entry.cancelled))
            for when, bucket in self._buckets.items())
        return {"stats": dict(self.stats), "buckets": buckets}


class Kernel:
    """Virtual-time OS kernel.

    Parameters
    ----------
    cores:
        Number of simulated CPU cores.
    quantum_us:
        Preemption quantum for the round-robin scheduler.
    seed:
        Root seed for the kernel's RNG registry (handed to workloads).
    sched:
        Scheduler policy name (``"cfs"`` round-robin FIFO, the default,
        or ``"eevdf"`` virtual-deadline; see
        :data:`~repro.sim.scheduler.SCHED_POLICIES`).
    """

    def __init__(self, cores=4, quantum_us=DEFAULT_QUANTUM_US, seed=0,
                 sched="cfs"):
        if cores < 1:
            raise ValueError("need at least one core")
        self.clock = Clock()
        self.cores = [Core(i) for i in range(cores)]
        self.quantum_us = quantum_us
        self.sched = sched
        self.run_queue = make_run_queue(sched)
        self.run_queue._now = lambda: self.clock.now_us
        # Policy capabilities, read once: whether _dispatch may use the
        # inlined head-of-queue shortcut, and the optional slice-end
        # virtual-runtime accounting hook.  For the default FIFO policy
        # these resolve to (True, None) and the hot paths are the same
        # decisions as before the seam -- the golden corpus pins it.
        self._fifo_fast_path = self.run_queue.fifo_fast_path
        self._sched_charge = getattr(self.run_queue, "charge", None)
        # Observability: the tracepoint bus every layer fires into.
        # Firing sites pre-fetch their Tracepoint and guard on its
        # ``active`` flag, so a run with no subscribers pays one
        # attribute check per site (the Figure 16 "disabled" story).
        self.trace = TracepointBus()
        self._tp_enqueue = self.trace.point("sched.enqueue")
        self._tp_switch = self.trace.point("sched.switch")
        self._tp_switchout = self.trace.point("sched.switchout")
        self._tp_sleep = self.trace.point("sched.sleep")
        self._tp_penalty = self.trace.point("penalty.inject")
        self._tp_owner_exit = self.trace.point("futex.owner_exit")
        self.futexes = WaitQueueTable(clock=self.clock, trace=self.trace)
        self.rngs = RngRegistry(seed)
        self.root_cgroup = Cgroup("root", quota_us=None)
        self.root_cgroup.attach_trace(self.trace)
        self.cgroups = {"root": self.root_cgroup}
        self.current_thread = None
        self.threads = []
        self.resume_hooks = []
        # Penalty delivery: resume-hook delays are armed through this
        # batcher (one wheel dispatch per distinct expiry) instead of
        # one timer per penalty; see PenaltyArmer.
        self.penalty_armer = PenaltyArmer(self)
        self.stats = {
            "syscalls": 0,
            "context_switches": 0,
            "penalties": 0,
            "penalty_us": 0,
            "throttles": 0,
            "crashes": 0,
        }
        # Fault-injection hook: when set, ``wake_filter(key, n)`` is
        # consulted before a futex wake; returning False swallows it
        # (the "lost wakeup" fault).  None in normal runs, so the hot
        # path pays one attribute test.
        self.wake_filter = None
        self._wheel = TimerWheel()
        self._seq = itertools.count()
        # Request tracing: ids handed out by next_request_id() and the
        # tid -> rid map maintained by closed-loop clients while a
        # request is in flight.  Pure bookkeeping for the req.* points
        # and pool tagging -- never consulted by the scheduler, so it
        # cannot perturb timing.  Kept separate from ``_seq`` (timer
        # ordering) so request tracing never shifts timer tie-breaks.
        self._req_seq = itertools.count(1)
        self.active_requests = {}
        # Scheduler hot path: which cores are idle, as a bitmask (bit i
        # set while core i has no running thread).  _dispatch iterates
        # set bits in ascending index order -- the same visit order as
        # a full core scan, but O(idle cores) instead of O(cores), and
        # O(1) when the machine is saturated (the common state at 10k
        # threads).
        self._idle_mask = (1 << cores) - 1
        # Hot path: each core gets one reusable slice-end timer whose
        # callback is bound once.  A core has at most one slice pending,
        # so re-arming the same _Timer every context switch saves a
        # timer + closure allocation per switch (see _start_slice).
        for core in self.cores:
            core._slice_timer = _Timer(self._make_slice_end(core))
            core._mask_bit = 1 << core.index

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def now_us(self):
        """Current virtual time in microseconds."""
        return self.clock.now_us

    def rng(self, name):
        """Named deterministic RNG stream (see :class:`RngRegistry`)."""
        return self.rngs.stream(name)

    def next_request_id(self):
        """Allocate the next request id (monotonic, starts at 1).

        Ids are drawn unconditionally by the closed-loop clients --
        not only while a ``req.*`` subscriber is attached -- so the
        numbering is identical whether or not anyone is listening.
        """
        return next(self._req_seq)

    def create_cgroup(self, name, quota_us=None, period_us=Cgroup.DEFAULT_PERIOD_US):
        """Create and register a CPU bandwidth cgroup."""
        if name in self.cgroups:
            raise ValueError("cgroup %r already exists" % name)
        group = Cgroup(name, quota_us=quota_us, period_us=period_us)
        group.attach_trace(self.trace)
        self.cgroups[name] = group
        return group

    def spawn(self, body, name=None, cgroup=None, affinity=None):
        """Create and start a thread; returns the :class:`SimThread`."""
        thread = SimThread(body, name=name, cgroup=cgroup, affinity=affinity)
        self.threads.append(thread)
        thread.started_at_us = self.now_us
        thread._resume_value = None
        thread._pending_syscall = None
        self._enqueue(thread, compute_us=0, resume_value=None)
        return thread

    def spawn_after(self, delay_us, body, name=None, cgroup=None, affinity=None):
        """Spawn a thread once ``delay_us`` of virtual time has passed."""

        def _later():
            self.spawn(body, name=name, cgroup=cgroup, affinity=affinity)

        self.post(self.now_us + delay_us, _later)

    def post(self, when_us, fn):
        """Schedule ``fn()`` to run at virtual time ``when_us``."""
        timer = _Timer(fn)
        now = self.clock.now_us
        # int() matches the clock's integer-microsecond invariant (the
        # old heap floored float deadlines when advancing the clock;
        # the wheel floors them when arming -- same firing time).
        when_us = int(when_us)
        if when_us < now:
            when_us = now
        self._wheel.insert(when_us, next(self._seq), timer)
        return timer

    def call_every(self, period_us, fn, start_us=None):
        """Run ``fn()`` every ``period_us``; ``fn`` may return False to stop."""
        first = self.now_us + period_us if start_us is None else start_us

        def _tick():
            if fn() is False:
                return
            self.post(self.now_us + period_us, _tick)

        return self.post(first, _tick)

    def run(self, until_us=None):
        """Run the event loop.

        Processes events until the heap is empty or virtual time would
        exceed ``until_us``.  Raises :class:`DeadlockError` if the heap
        drains while live threads remain blocked.

        Given the same kernel construction arguments and the same prior
        ``spawn``/``post`` sequence, ``run`` is fully deterministic (see
        the module docstring) -- the experiment runner's cache relies on
        this.
        """
        # Hot loop: locals instead of attribute lookups, and a float
        # +inf sentinel so the limit test is a single comparison.  The
        # wheel drains cancelled entries and enforces the limit
        # internally; entries pop in exact (when, seq) order.
        #
        # The due-heap fast path is inlined: whenever the wheel's "due"
        # heap is non-empty its head is the global minimum (far-level
        # entries all live in later blocks -- see timerwheel.py), so a
        # due event costs one C heappop with no method call or result
        # tuple.  The slow branch (due empty: hunt to the next block,
        # or nothing left) stays behind pop_next.
        clock = self.clock
        wheel = self._wheel
        due = wheel._due
        pop_next = wheel.pop_next
        limit = float("inf") if until_us is None else until_us
        while True:
            if due:
                entry = due[0]
                when = entry[0]
                if when > limit:
                    break
                heappop(due)
                wheel._count -= 1
                wheel._cur = when
                timer = entry[2]
                if timer.cancelled:
                    continue
            else:
                entry = pop_next(limit)
                if entry is None:
                    break
                when, timer = entry
            if when > clock.now_us:
                # Inlined advance_to: wheel order + the post() clamp
                # make backwards movement impossible here.
                clock.now_us = when
            timer.fn()
        if until_us is not None and until_us > self.now_us:
            self.clock.advance_to(until_us)
        if not self._wheel:
            blocked = [t for t in self.threads if t.alive]
            if blocked and until_us is None:
                raise DeadlockError(
                    "event loop drained with %d live threads: %r"
                    % (len(blocked), blocked[:8])
                )

    def futex_wake(self, key, n=1):
        """Wake up to ``n`` threads blocked on ``key``; returns count.

        Callable directly from thread bodies (synchronously, in zero
        virtual time) because waking only moves threads to the run queue.
        """
        if self.wake_filter is not None and not self.wake_filter(key, n):
            return 0
        woken = self.futexes.pop_waiters(key, n, waker=self.current_thread)
        if not woken:
            return 0
        if self._idle_mask:
            # Idle cores exist: enqueue-and-dispatch each waiter so the
            # trace keeps the classic enqueue/switch interleaving (the
            # golden corpus pins the event stream, not just the
            # schedule).
            for thread in woken:
                if thread.wakeup_event is not None:
                    thread.wakeup_event.cancel()
                    thread.wakeup_event = None
                thread.wait_key = None
                self._enqueue(thread, compute_us=0, resume_value=True)
            self._dispatch()
            return len(woken)
        # All cores busy -- the common state under load.  Batch: push
        # every waiter straight onto the run queue and dispatch once.
        # Identical outcome (no dispatch can place anything while no
        # core is idle) at O(1) per waiter instead of a core scan each.
        run_queue = self.run_queue
        tp = self._tp_enqueue
        now = self.clock.now_us
        for thread in woken:
            if thread.wakeup_event is not None:
                thread.wakeup_event.cancel()
                thread.wakeup_event = None
            thread.wait_key = None
            thread.pending_compute_us = 0
            thread._resume_value = True
            if tp.active:
                tp.fire(now, tid=thread.tid, name=thread.name)
            run_queue.push(thread)
        self._dispatch()
        return len(woken)

    def charge_current(self, us):
        """Charge ``us`` of CPU overhead to the calling thread.

        Used by the pBox runtime to model per-operation cost (Figure 10 /
        Figure 16) without adding Compute yields to application models.
        The charge is consumed before the thread's next syscall executes.
        """
        if us <= 0:
            return
        thread = self.current_thread
        if thread is not None:
            thread.overhead_us += int(us)

    def add_resume_hook(self, hook):
        """Register ``hook(thread) -> delay_us`` consulted at resume time.

        A positive return value puts the thread to sleep for that long
        before its next syscall is processed -- the pBox penalty channel.
        """
        self.resume_hooks.append(hook)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------

    def _enqueue(self, thread, compute_us, resume_value, front=False):
        thread.pending_compute_us = compute_us
        thread._resume_value = resume_value
        if self._tp_enqueue.active:
            self._tp_enqueue.fire(self.clock.now_us, tid=thread.tid,
                                  name=thread.name)
        if front:
            self.run_queue.push_front(thread)
        else:
            self.run_queue.push(thread)
        self._dispatch()

    def _make_slice_end(self, core):
        """Bind the slice-end callback for ``core`` once (timer reuse)."""

        def _end():
            self._slice_end(core)

        return _end

    def _dispatch(self):
        # Sharded run-queue scan: only cores idle at entry are visited,
        # in ascending index order (identical placement to the old full
        # core scan).  A core filled by a recursive dispatch (throttle
        # path) is skipped by the running re-check; no core can become
        # idle mid-dispatch (only _slice_end clears running, and it
        # runs from the event loop).
        mask = self._idle_mask
        if not mask:
            return
        run_queue = self.run_queue
        queue = run_queue._queue
        cores = self.cores
        fifo = self._fifo_fast_path
        while mask and queue:
            idx = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            core = cores[idx]
            if core.running is not None:
                continue
            if fifo:
                # Inlined pick_for_core fast path: head thread
                # unconstrained, core unreserved -- the common case at
                # every scale point.  Only valid for the FIFO policy;
                # deadline policies always go through pick_for_core.
                head = queue[0]
                if (core.reserved_for is None and head.affinity is None
                        and not head.demoted_until_us):
                    queue.popleft()
                    thread = head
                else:
                    thread = run_queue.pick_for_core(core)
                    if thread is None:
                        continue
            else:
                thread = run_queue.pick_for_core(core)
                if thread is None:
                    continue
            self._start_slice(core, thread)

    def _start_slice(self, core, thread):
        now = self.clock.now_us
        group = thread.cgroup or self.root_cgroup
        if group.quota_us is None and not group.throttled_threads:
            # Unlimited group (the root group for every thread outside a
            # cgroup baseline): the bandwidth window is irrelevant, so
            # skip the refresh/remaining bookkeeping on this hottest of
            # paths.  refresh() on an unlimited group only resets
            # counters nothing reads; set_quota() re-zeroes them on the
            # unlimited -> limited transition.
            quantum = self.quantum_us
            pending = thread.pending_compute_us
            slice_us = quantum if quantum < pending else pending
        else:
            # Roll the bandwidth window forward before checking the
            # budget; otherwise a group that never throttles keeps
            # charging a stale period and the quota never binds.
            for released in group.refresh(now):
                self.run_queue.push(released)
            remaining = group.remaining_us(now)
            if remaining == 0:
                self._throttle(thread, group)
                self._dispatch()
                return
            slice_us = min(self.quantum_us, thread.pending_compute_us)
            if remaining is not None:
                slice_us = min(slice_us, remaining)
        core.running = thread
        self._idle_mask &= ~core._mask_bit
        thread.state = ThreadState.RUNNING
        self.stats["context_switches"] += 1
        if self._tp_switch.active:
            self._tp_switch.fire(now, tid=thread.tid,
                                 name=thread.name, core=core.index,
                                 slice_us=slice_us)
        # Re-arm the core's reusable slice-end timer instead of going
        # through post(): saves a _Timer + closure allocation per
        # context switch, the hottest allocation site of the event loop.
        timer = core._slice_timer
        timer.cancelled = False
        when = int(now + slice_us)
        wheel = self._wheel
        # Inlined wheel.insert() due-block fast path: most slices end
        # inside the cursor's current 1024us block (when >= cursor holds
        # because the cursor never runs ahead of the clock).
        if when ^ wheel._cur < 1024:
            heappush(wheel._due, (when, next(self._seq), timer))
            wheel._count += 1
        else:
            wheel.insert(when, next(self._seq), timer)
        core.slice_end_event = timer
        core._slice_started_us = now

    def _slice_end(self, core):
        thread = core.running
        core.running = None
        self._idle_mask |= core._mask_bit
        core.slice_end_event = None
        ran = self.clock.now_us - core._slice_started_us
        if ran:
            core.busy_us += ran
            thread.cpu_time_us += ran
            group = thread.cgroup or self.root_cgroup
            # Inlined Cgroup.charge() -- one call per context switch.
            group.runtime_us += ran
            group.total_cpu_us += ran
            thread.pending_compute_us -= ran
            charge = self._sched_charge
            if charge is not None:
                # Deadline policies account virtual runtime here; the
                # FIFO policy has no hook and pays one None test.
                charge(thread, ran)
        if self._tp_switchout.active:
            self._tp_switchout.fire(self.clock.now_us, tid=thread.tid,
                                    core=core.index, ran_us=ran,
                                    done=thread.pending_compute_us <= 0)
        if thread.pending_compute_us > 0:
            self.run_queue.push(thread)
            self._dispatch()
            return
        self._dispatch()
        self._resume(thread)

    def _throttle(self, thread, group):
        thread.state = ThreadState.THROTTLED
        group.park(thread, self.clock.now_us)
        self.stats["throttles"] += 1
        if not getattr(group, "_refresh_scheduled", False):
            group._refresh_scheduled = True
            self.post(group.next_refresh_us(self.now_us), lambda: self._refresh(group))

    def _refresh(self, group):
        group._refresh_scheduled = False
        released = group.refresh(self.now_us)
        for thread in released:
            self.run_queue.push(thread)
        if group.throttled_threads and not group._refresh_scheduled:
            group._refresh_scheduled = True
            self.post(group.next_refresh_us(self.now_us), lambda: self._refresh(group))
        if released:
            self._dispatch()

    # ------------------------------------------------------------------
    # Thread advancement
    # ------------------------------------------------------------------

    def _resume(self, thread):
        """Continue a thread whose CPU slice / wait completed."""
        if thread._pending_syscall is not None:
            syscall = thread._pending_syscall
            thread._pending_syscall = None
            result = self._execute(thread, syscall)
            if result is _BLOCKED:
                return
            self._advance(thread, result)
        else:
            self._advance(thread, thread._resume_value)

    def _advance(self, thread, send_value):
        hooks = self.resume_hooks
        if hooks:
            for hook in hooks:
                delay = hook(thread)
                if delay:
                    self.stats["penalties"] += 1
                    self.stats["penalty_us"] += delay
                    if self._tp_penalty.active:
                        pbox = thread.pbox
                        self._tp_penalty.fire(
                            self.clock.now_us, tid=thread.tid, delay_us=delay,
                            psid=None if pbox is None else pbox.psid,
                        )
                    thread.state = ThreadState.SLEEPING
                    thread.wakeup_event = self.penalty_armer.arm(
                        self.now_us + delay,
                        lambda: self._advance(thread, send_value),
                    )
                    return
        body_send = thread.body.send
        execute = self._execute
        while True:
            previous = self.current_thread
            self.current_thread = thread
            try:
                syscall = body_send(send_value)
            except StopIteration as stop:
                self.current_thread = previous
                self._exit(thread, stop.value)
                return
            except Exception as exc:
                self.current_thread = previous
                raise ThreadCrashedError(
                    "thread %r crashed: %r" % (thread.name, exc)
                ) from exc
            self.current_thread = previous
            result = execute(thread, syscall)
            if result is _BLOCKED:
                return
            send_value = result

    def _execute(self, thread, syscall):
        """Perform ``syscall``; return its value or ``_BLOCKED``.

        Dispatches on the exact syscall class first (the syscall set is
        closed and flat, so ``type(x) is C`` is both correct and faster
        than an isinstance chain); unknown classes fall through to the
        original isinstance tests so hypothetical subclasses keep
        working.
        """
        self.stats["syscalls"] += 1
        cls = syscall.__class__
        if cls is Compute:
            amount = syscall.us + thread.overhead_us
            thread.overhead_us = 0
            self._enqueue(thread, compute_us=amount, resume_value=None)
            return _BLOCKED

        if thread.overhead_us:
            overhead = thread.overhead_us
            thread.overhead_us = 0
            thread._pending_syscall = syscall
            self._enqueue(thread, compute_us=overhead, resume_value=None)
            return _BLOCKED

        # Exact-class fast paths for the remaining hot syscalls (same
        # bodies as the isinstance chain below, minus the chain walk).
        if cls is FutexWait:
            thread.state = ThreadState.BLOCKED
            thread.wait_key = syscall.key
            thread.blocked_since_us = self.clock.now_us
            self.futexes.add(syscall.key, thread)
            if syscall.timeout_us is not None:
                thread.wakeup_event = self.post(
                    self.clock.now_us + syscall.timeout_us,
                    lambda: self._futex_timeout(thread, syscall.key),
                )
            return _BLOCKED

        if cls is FutexWake:
            return self.futex_wake(syscall.key, syscall.n)

        if cls is Now:
            return self.now_us

        if cls is Sleep:
            thread.state = ThreadState.SLEEPING
            if self._tp_sleep.active:
                self._tp_sleep.fire(self.clock.now_us, tid=thread.tid,
                                    us=syscall.us)
            thread.wakeup_event = self.post(
                self.clock.now_us + syscall.us,
                lambda: self._wake_sleeper(thread),
            )
            return _BLOCKED

        if isinstance(syscall, Compute):
            amount = syscall.us + thread.overhead_us
            thread.overhead_us = 0
            self._enqueue(thread, compute_us=amount, resume_value=None)
            return _BLOCKED

        if isinstance(syscall, Sleep):
            thread.state = ThreadState.SLEEPING
            if self._tp_sleep.active:
                self._tp_sleep.fire(self.clock.now_us, tid=thread.tid,
                                    us=syscall.us)
            thread.wakeup_event = self.post(
                self.clock.now_us + syscall.us,
                lambda: self._wake_sleeper(thread),
            )
            return _BLOCKED

        if isinstance(syscall, FutexWait):
            thread.state = ThreadState.BLOCKED
            thread.wait_key = syscall.key
            thread.blocked_since_us = self.clock.now_us
            self.futexes.add(syscall.key, thread)
            if syscall.timeout_us is not None:
                thread.wakeup_event = self.post(
                    self.clock.now_us + syscall.timeout_us,
                    lambda: self._futex_timeout(thread, syscall.key),
                )
            return _BLOCKED

        if isinstance(syscall, FutexWake):
            return self.futex_wake(syscall.key, syscall.n)

        if isinstance(syscall, Spawn):
            spawned = syscall.thread
            if spawned.state is not ThreadState.NEW:
                raise ValueError("thread %r already started" % spawned)
            self.threads.append(spawned)
            spawned.started_at_us = self.now_us
            spawned._resume_value = None
            spawned._pending_syscall = None
            self._enqueue(spawned, compute_us=0, resume_value=None)
            return spawned

        if isinstance(syscall, Join):
            target = syscall.thread
            if not target.alive:
                return target.return_value
            thread.state = ThreadState.BLOCKED
            target.joiners.append(thread)
            return _BLOCKED

        if isinstance(syscall, Now):
            return self.now_us

        if isinstance(syscall, Yield):
            self._enqueue(thread, compute_us=0, resume_value=None)
            return _BLOCKED

        raise TypeError("thread %r yielded non-syscall %r" % (thread, syscall))

    def _wake_sleeper(self, thread):
        thread.wakeup_event = None
        self._enqueue(thread, compute_us=0, resume_value=None)

    def _futex_timeout(self, thread, key):
        thread.wakeup_event = None
        if self.futexes.remove(key, thread):
            thread.wait_key = None
            self._enqueue(thread, compute_us=0, resume_value=False)

    def _exit(self, thread, value):
        thread.state = ThreadState.EXITED
        thread.return_value = value
        thread.exited_at_us = self.now_us
        # Robust-futex semantics: a thread must not exit while registered
        # as the owner of a wait-queue key.  Normal exits released
        # everything, so the purge scans an empty-or-tiny dict; a thread
        # that died holding resources (crash fault, buggy model) gets its
        # ownership cleared and the primitive's recovery handler invoked
        # so waiters are not stranded behind a dead holder.
        leaked = self.futexes.purge_owner(thread)
        if leaked:
            for key, holds in leaked:
                if self._tp_owner_exit.active:
                    self._tp_owner_exit.fire(
                        self.clock.now_us, tid=thread.tid, key=key,
                        holds=holds,
                    )
                handler = getattr(key, "_on_owner_death", None)
                if handler is not None:
                    handler(thread, holds)
                else:
                    self.futex_wake(key, 1)
        joiners = thread.joiners
        thread.joiners = []
        for waiter in joiners:
            # A joiner can itself have been killed while it waited; never
            # resurrect a corpse into the run queue.
            if waiter.alive:
                self._enqueue(waiter, compute_us=0, resume_value=value)

    def kill_thread(self, thread):
        """Terminate ``thread`` abruptly, as a crash would (fault hook).

        Closing the generator raises ``GeneratorExit`` at its current
        yield point, so ``finally`` blocks run (with ``current_thread``
        set to the dying thread, releases behave as if it ran them);
        anything still held afterwards is cleaned up by the robust-futex
        purge in :meth:`_exit`.  Returns True if the thread was alive.
        """
        if not thread.alive:
            return False
        self.stats["crashes"] += 1
        thread._pending_syscall = None
        thread.overhead_us = 0
        previous = self.current_thread
        self.current_thread = thread
        try:
            thread.body.close()
        except Exception:
            # A cleanup handler raised; the crash is still contained --
            # the robust-futex purge below recovers whatever it leaked.
            pass
        finally:
            self.current_thread = previous
        if thread.wakeup_event is not None:
            thread.wakeup_event.cancel()
            thread.wakeup_event = None
        state = thread.state
        if state is ThreadState.BLOCKED:
            if thread.wait_key is not None:
                self.futexes.remove(thread.wait_key, thread)
                thread.wait_key = None
            self._exit(thread, None)
        elif state is ThreadState.SLEEPING:
            self._exit(thread, None)
        # READY / RUNNING / THROTTLED threads stay owned by the scheduler:
        # when their slice or release comes, resuming the closed body
        # raises StopIteration into the normal exit path (_advance ->
        # _exit), which runs the same purge.
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def quiescent(self):
        """True when no syscall dispatch is in flight and nothing is due.

        A checkpoint barrier is sound only at a quiescent point: the
        event loop is not inside a thread body (``current_thread`` is
        None) and no live timer is due at or before the current virtual
        time.  ``run(until_us=T)`` establishes exactly this state when
        it returns -- it drains every event with ``when <= T`` before
        advancing the clock to ``T``.
        """
        if self.current_thread is not None:
            return False
        now = self.clock.now_us
        for when, timer in self._wheel.pending():
            if when <= now and not timer.cancelled:
                return False
        return True

    def snapshot_state(self, label=repr):
        """JSON-safe walk of the full kernel state (checkpoint walker).

        Pure observation: never consumes ``_seq``/``_req_seq`` ticks,
        RNG draws, or fires tracepoints, so walking a run cannot perturb
        it (the restore-equality suite is the proof).  The two
        ``itertools.count`` counters are deliberately *not* recorded --
        they cannot be read without advancing them, and replay-based
        restore reconstructs them exactly (the trace digest pins the
        ordering they feed).  Resource keys are rendered through
        ``label`` so the walk is stable across processes.
        """
        threads = {
            "tid": [], "name": [], "state": [], "cgroup": [],
            "pending_compute_us": [], "cpu_time_us": [], "wait_key": [],
            "blocked_since_us": [], "overhead_us": [],
            "demoted_until_us": [], "psid": [], "joiners": [],
            "started_at_us": [], "exited_at_us": [],
        }
        for thread in self.threads:
            threads["tid"].append(thread.tid)
            threads["name"].append(thread.name)
            threads["state"].append(thread.state.value)
            threads["cgroup"].append(
                None if thread.cgroup is None else thread.cgroup.name)
            threads["pending_compute_us"].append(thread.pending_compute_us)
            threads["cpu_time_us"].append(thread.cpu_time_us)
            threads["wait_key"].append(
                None if thread.wait_key is None else label(thread.wait_key))
            threads["blocked_since_us"].append(thread.blocked_since_us)
            threads["overhead_us"].append(thread.overhead_us)
            threads["demoted_until_us"].append(thread.demoted_until_us)
            threads["psid"].append(
                None if thread.pbox is None else thread.pbox.psid)
            threads["joiners"].append([t.tid for t in thread.joiners])
            threads["started_at_us"].append(thread.started_at_us)
            threads["exited_at_us"].append(thread.exited_at_us)
        return {
            "now_us": self.clock.now_us,
            "quantum_us": self.quantum_us,
            "sched": self.sched,
            "stats": dict(self.stats),
            "idle_mask": self._idle_mask,
            "cores": [
                {
                    "index": core.index,
                    "running": (None if core.running is None
                                else core.running.tid),
                    "busy_us": core.busy_us,
                    "reserved_for": core.reserved_for,
                }
                for core in self.cores
            ],
            "run_queue": [t.tid for t in self.run_queue.threads()],
            "threads": threads,
            "cgroups": sorted(
                (name, group.snapshot_state())
                for name, group in self.cgroups.items()),
            "futexes": self.futexes.snapshot_state(label),
            "timers": self._wheel.snapshot_entries(),
            "penalty_armer": self.penalty_armer.snapshot_state(),
            "rngs": self.rngs.snapshot_state(),
            "active_requests": sorted(self.active_requests.items()),
        }


class IdleWatchdog:
    """Deadlock/livelock sentinel for fault-injection runs.

    Ticks every ``period_us`` of virtual time.  A simulation is *stuck*
    when no syscall ran since the previous tick, no live timer remains
    in the heap, and at least one live thread is blocked on a futex for
    a reason other than idling on an empty task queue.  When stuck, the
    watchdog attempts lost-wakeup repair: every waiter-bearing key with
    no live registered owner gets one wake (waiters re-check their
    predicates, so a spurious wake is harmless churn).  If the repair
    wakes nobody, the situation is a genuine deadlock; ``on_deadlock``
    is invoked once with the blocked threads and ticking stops so the
    drained heap ends the run.

    Only the chaos harness arms this (normal runs must keep the
    ``kernel.run(until_us=None)`` heap-drain termination semantics), and
    arming requires a deadline so a bounded run stays bounded.
    """

    def __init__(self, kernel, period_us=50_000, stale_us=250_000,
                 on_deadlock=None):
        self.kernel = kernel
        self.period_us = period_us
        self.stale_us = stale_us
        self.on_deadlock = on_deadlock
        self.ticks = 0
        self.recoveries = 0
        self.recovered_wakes = 0
        self.stale_repairs = 0
        self.deadlocks = 0
        self._deadline_us = None
        self._last_syscalls = -1
        self._tp_recover = kernel.trace.point("fault.recover")

    def arm(self, deadline_us):
        """Start ticking until virtual time reaches ``deadline_us``."""
        self._deadline_us = deadline_us
        self._last_syscalls = self.kernel.stats["syscalls"]
        self._post_next()

    def stats(self):
        """JSON-safe summary for chaos result entries."""
        return {
            "ticks": self.ticks,
            "recoveries": self.recoveries,
            "recovered_wakes": self.recovered_wakes,
            "stale_repairs": self.stale_repairs,
            "deadlocks": self.deadlocks,
        }

    def _post_next(self):
        when = self.kernel.clock.now_us + self.period_us
        if self._deadline_us is None or when > self._deadline_us:
            return
        self.kernel.post(when, self._tick)

    @staticmethod
    def _idle_wait(key):
        """True for waits that are legitimate idling, not starvation.

        Consumers parked on an *empty* task queue at the end of a run
        are the normal quiescent state; anything else blocked while the
        heap is drained is a suspect.
        """
        if key is None or not hasattr(key, "__len__"):
            return False
        try:
            return len(key) == 0
        except TypeError:
            return False

    def _tick(self):
        self.ticks += 1
        kernel = self.kernel
        # Even while the simulation is otherwise making progress, a lost
        # wake-up can strand a waiter on a key nobody touches again; the
        # idle check would never see it.  Repair stranded queues on every
        # tick, not just when stuck.
        stale_woken = self._repair_stale()
        if stale_woken:
            self.stale_repairs += 1
            self.recovered_wakes += stale_woken
            if self._tp_recover.active:
                self._tp_recover.fire(kernel.clock.now_us,
                                      kind="stale-waiter",
                                      woken=stale_woken)
        syscalls = kernel.stats["syscalls"]
        suspects = None
        if syscalls == self._last_syscalls:
            if not kernel._wheel.has_live_timer():
                suspects = [
                    thread for thread in kernel.threads
                    if thread.alive
                    and thread.state is ThreadState.BLOCKED
                    and not self._idle_wait(thread.wait_key)
                ]
        self._last_syscalls = syscalls
        if not suspects:
            self._post_next()
            return
        woken = self._recover()
        if woken:
            self.recoveries += 1
            self.recovered_wakes += woken
            if self._tp_recover.active:
                self._tp_recover.fire(kernel.clock.now_us,
                                      kind="lost-wakeup", woken=woken)
            self._post_next()
            return
        self.deadlocks += 1
        if self._tp_recover.active:
            self._tp_recover.fire(kernel.clock.now_us, kind="deadlock",
                                  woken=0)
        if self.on_deadlock is not None:
            self.on_deadlock(suspects)
        # Unrecoverable: stop ticking so the drained heap ends the run
        # instead of spinning to the deadline.

    def _recover(self):
        kernel = self.kernel
        futexes = kernel.futexes
        woken = 0
        for key in futexes.keys():
            owners = futexes.owners(key)
            if any(owner.alive for owner in owners):
                # A live holder will release eventually -- waking the
                # waiters cannot help and may mask a real lock cycle.
                continue
            if self._idle_wait(key):
                continue
            woken += kernel.futex_wake(key, 1)
        return woken

    def _repair_stale(self):
        """Wake the head of queues stranded behind no live owner.

        The release chain of every lock-like primitive wakes the FIFO
        head within one hold time, so a head blocked longer than
        ``stale_us`` on a key with no live registered holder means a
        wake-up went missing.  One wake repairs it; acquire loops
        re-check their predicate, so a false positive is harmless churn.
        """
        kernel = self.kernel
        futexes = kernel.futexes
        now = kernel.clock.now_us
        woken = 0
        for key in futexes.keys():
            if self._idle_wait(key):
                continue
            if any(owner.alive for owner in futexes.owners(key)):
                continue
            queue = futexes.waiters(key)
            if not queue:
                continue
            if now - queue[0].blocked_since_us > self.stale_us:
                woken += kernel.futex_wake(key, 1)
        return woken
