"""Deterministic random number streams.

Every stochastic element of a scenario (arrival times, key choices, query
mixes) draws from a named :class:`RngStream` derived from a single root
seed.  Two streams with the same (seed, name) always produce the same
sequence, so adding a new consumer of randomness never perturbs existing
ones -- a standard trick in simulation methodology to keep experiments
comparable across code changes.
"""

import hashlib
import random


class RngStream:
    """A named, independently-seeded random stream.

    Wraps :class:`random.Random` with the subset of draws the workloads
    need.  The stream seed is derived by hashing ``(root_seed, name)`` so
    streams are independent and reproducible.
    """

    def __init__(self, root_seed, name):
        self.name = name
        digest = hashlib.sha256(
            ("%d/%s" % (root_seed, name)).encode("utf-8")
        ).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def uniform(self, low, high):
        """Uniform float in [low, high)."""
        return self._rng.uniform(low, high)

    def randint(self, low, high):
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def expovariate(self, rate):
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def choice(self, seq):
        """Uniformly choose one element of ``seq``."""
        return self._rng.choice(seq)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def shuffle(self, seq):
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def sample(self, population, k):
        """Sample ``k`` distinct elements from ``population``."""
        return self._rng.sample(population, k)

    def zipf_index(self, n, skew):
        """Draw an index in [0, n) under a Zipf-like distribution.

        Uses the rejection-free inverse-CDF over a precomputed table when
        first called; the table is cached on the instance per (n, skew).
        """
        key = (n, skew)
        table = getattr(self, "_zipf_tables", None)
        if table is None:
            table = {}
            self._zipf_tables = table
        cdf = table.get(key)
        if cdf is None:
            weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            table[key] = cdf
        u = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def state_digest(self):
        """64-bit fingerprint of the generator state (checkpoint walker).

        ``random.Random.getstate()`` is ~2.5 KB of Mersenne words per
        stream; the checkpoint only needs to *verify* that a replayed
        stream reached the same state, so a truncated digest of the repr
        (deterministic for the tuple-of-ints state) suffices.  64 bits
        is ample for drift *detection* -- nothing adversarial hashes
        here -- and, unlike full hex digests, the truncation keeps
        scale-scenario artifacts (thousands of streams of incompressible
        hex) inside the checkpoint size budget.  Reading the state does
        not advance it.
        """
        state = repr(self._rng.getstate()).encode()
        return hashlib.sha256(state).hexdigest()[:16]


class RngRegistry:
    """Factory handing out :class:`RngStream` objects from one root seed."""

    def __init__(self, root_seed=0):
        self.root_seed = root_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.root_seed, name)
        return self._streams[name]

    def snapshot_state(self):
        """JSON-safe walk of all streams' state digests (checkpoint)."""
        return {
            "root_seed": self.root_seed,
            "streams": sorted(
                (name, stream.state_digest())
                for name, stream in self._streams.items()),
        }
