"""Hierarchical timer wheel: the kernel's event queue at scale.

Replaces the single global ``heapq`` of ``(when, seq, timer)`` entries.
A binary heap costs O(log n) per arm/fire with n pending timers; at 10k
threads every context switch re-arms a slice timer against thousands of
pending sleeps, and the log factor (plus tuple comparisons) dominates
the event loop.  The wheel bounds the comparison work to the timers of
the current 1024 us block, making arm/fire O(1)-ish in total pending
count.

Layout -- a near-term "due" heap plus three block-aligned far levels
and an overflow heap:

======== ================= =================== =====================
tier     granularity        capacity            span
======== ================= =================== =====================
due      exact (heap)       current block       ~1 ms
level 1  1024 us            1024 slots          ~1.05 s
level 2  ~1.05 s            1024 slots          ~17.9 min
level 3  ~17.9 min          1024 slots          ~12.7 days
overflow exact (heap)       unbounded           beyond 2^40 us
======== ================= =================== =====================

Timers within the cursor's 1024 us block live in a small binary heap
("due"), so the hot pop/arm paths run at C ``heapq`` speed over a
bounded population.  Further-out timers sit untouched in wheel slots
(one list append) until the cursor enters their block and a cascade
heap-pushes them into ``due``.  Far-level occupancy is tracked in int
bitmaps, so skipping empty time is one bit-scan per level.

Ordering contract (what makes the wheel a drop-in for the heap)
---------------------------------------------------------------

The kernel requires timers to fire in exact ``(when, seq)`` order,
where ``seq`` is the global arm counter -- that ordering is the
bit-for-bit determinism contract the golden-trace corpus pins.  Every
entry is a ``(when, seq, timer)`` tuple; the ``due`` and overflow heaps
order by it directly, and the far levels are *block-aligned*: an entry
is placed at level L only when its time shares the cursor's level-(L+1)
block, so a block's entries are all present in their slot before the
cursor can enter the block and cascade them.  No entry can ever be
filed behind the cursor.

Cursor contract
---------------

:meth:`pop_next` advances the cursor to each entry it returns, and --
while hunting across empty regions -- possibly up to (never past)
``limit`` even when it returns ``None``.  Callers must therefore never
arm a timer earlier than the ``limit`` of a ``pop_next`` that returned
``None``; an insert below the cursor is clamped to the cursor.  The
kernel satisfies this by construction: timers are armed at
``>= clock.now_us``, and ``run(until_us)`` advances the clock to
``until_us`` the moment the wheel reports nothing due, so the clock is
always at or ahead of the cursor when user code runs.
"""

from heapq import heappop, heappush

_MASK = 1023


class TimerWheel:
    """Hybrid timer wheel: near-term heap + three far levels + overflow.

    Entries are ``(when, seq, timer)`` tuples where ``timer`` carries a
    ``cancelled`` flag; cancelled entries are lazily discarded when
    popped, exactly as the heap implementation did.  ``len(wheel)``
    counts pending entries including cancelled ones (the kernel's
    deadlock check relies on that: a cancelled-but-undrained timer
    still keeps the event loop alive).
    """

    __slots__ = ("_cur", "_count", "_due", "_occ1", "_occ2", "_occ3",
                 "_slots1", "_slots2", "_slots3", "_overflow")

    def __init__(self):
        self._cur = 0
        self._count = 0
        self._due = []
        self._occ1 = 0
        self._occ2 = 0
        self._occ3 = 0
        self._slots1 = [None] * 1024
        self._slots2 = [None] * 1024
        self._slots3 = [None] * 1024
        self._overflow = []

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    # -- arming ----------------------------------------------------------

    def insert(self, when, seq, timer):
        """Arm ``timer`` at integer microsecond ``when``."""
        self._count += 1
        cur = self._cur
        if when < cur:
            when = cur
        delta = when ^ cur  # block-sharing test: same 2^k block <=> xor < 2^k
        if delta < 1024:
            heappush(self._due, (when, seq, timer))
        elif delta < 1 << 20:
            i = (when >> 10) & _MASK
            slot = self._slots1[i]
            if slot is None:
                slot = self._slots1[i] = []
            slot.append((when, seq, timer))
            self._occ1 |= 1 << i
        elif delta < 1 << 30:
            i = (when >> 20) & _MASK
            slot = self._slots2[i]
            if slot is None:
                slot = self._slots2[i] = []
            slot.append((when, seq, timer))
            self._occ2 |= 1 << i
        elif delta < 1 << 40:
            i = (when >> 30) & _MASK
            slot = self._slots3[i]
            if slot is None:
                slot = self._slots3[i] = []
            slot.append((when, seq, timer))
            self._occ3 |= 1 << i
        else:
            heappush(self._overflow, (when, seq, timer))

    # -- firing ----------------------------------------------------------

    def pop_next(self, limit):
        """Pop the globally earliest live entry with ``when <= limit``.

        Returns ``(when, timer)`` with ``timer.cancelled`` False, or
        ``None`` when nothing is due by ``limit``.  Cancelled entries
        encountered on the way are silently drained.  The cursor is
        never advanced past ``limit``.
        """
        due = self._due
        while True:
            while due:
                entry = due[0]
                when = entry[0]
                if when > limit:
                    return None
                heappop(due)
                self._count -= 1
                self._cur = when
                timer = entry[2]
                if timer.cancelled:
                    continue
                return when, timer
            if not self._count or not self._hunt(limit):
                return None

    def _hunt(self, limit):
        """Advance the cursor to the next populated block (<= limit).

        Consults level 1..3 occupancy then the overflow heap; cascades
        the block it lands in into ``due`` (and intermediate levels).
        Returns False when the next pending entry lies beyond ``limit``
        (cursor is left untouched, still <= limit).
        """
        cur = self._cur
        due = self._due
        m = self._occ1 >> (((cur >> 10) & _MASK) + 1)
        if m:
            j = ((cur >> 10) & _MASK) + 1 + (m & -m).bit_length() - 1
            base = ((cur >> 20) << 20) | (j << 10)
            if base > limit:
                return False
            self._cur = base
            self._occ1 &= ~(1 << j)
            slot = self._slots1[j]
            self._slots1[j] = None
            for entry in slot:
                heappush(due, entry)
            return True
        m = self._occ2 >> (((cur >> 20) & _MASK) + 1)
        if m:
            j = ((cur >> 20) & _MASK) + 1 + (m & -m).bit_length() - 1
            base = ((cur >> 30) << 30) | (j << 20)
            if base > limit:
                return False
            self._cur = base
            self._occ2 &= ~(1 << j)
            slot = self._slots2[j]
            self._slots2[j] = None
            for entry in slot:
                self._refile(entry)
            return True
        m = self._occ3 >> (((cur >> 30) & _MASK) + 1)
        if m:
            j = ((cur >> 30) & _MASK) + 1 + (m & -m).bit_length() - 1
            base = ((cur >> 40) << 40) | (j << 30)
            if base > limit:
                return False
            self._cur = base
            self._occ3 &= ~(1 << j)
            slot = self._slots3[j]
            self._slots3[j] = None
            for entry in slot:
                self._refile(entry)
            return True
        overflow = self._overflow
        if overflow:
            base = (overflow[0][0] >> 40) << 40
            if base > limit:
                return False
            self._cur = base
            block = base >> 40
            while overflow and (overflow[0][0] >> 40) == block:
                self._refile(heappop(overflow))
            return True
        return False

    def _refile(self, entry):
        """Re-file a cascaded entry (count already includes it).

        Cascades only move entries toward ``due`` (the cursor got
        closer), so the overflow branch is unreachable here.
        """
        when = entry[0]
        delta = when ^ self._cur
        if delta < 1024:
            heappush(self._due, entry)
        elif delta < 1 << 20:
            i = (when >> 10) & _MASK
            slot = self._slots1[i]
            if slot is None:
                slot = self._slots1[i] = []
            slot.append(entry)
            self._occ1 |= 1 << i
        elif delta < 1 << 30:
            i = (when >> 20) & _MASK
            slot = self._slots2[i]
            if slot is None:
                slot = self._slots2[i] = []
            slot.append(entry)
            self._occ2 |= 1 << i
        else:
            i = (when >> 30) & _MASK
            slot = self._slots3[i]
            if slot is None:
                slot = self._slots3[i] = []
            slot.append(entry)
            self._occ3 |= 1 << i

    # -- introspection ---------------------------------------------------

    def has_live_timer(self):
        """True while any non-cancelled entry is pending (watchdog)."""
        for _when, timer in self.pending():
            if not timer.cancelled:
                return True
        return False

    def snapshot_entries(self):
        """Live ``(when, seq)`` pairs in firing order (checkpoint walker).

        Pure observation for the checkpoint state walk: iterates the
        same structures :meth:`pending` does but keeps each entry's arm
        sequence number, so a checkpoint records the exact in-flight
        event ordering without consuming the kernel's arm counter.
        Cancelled entries are excluded -- they can never fire, so two
        runs that differ only in drained-vs-undrained cancellations
        still walk identically.
        """
        entries = []
        for heap in (self._due, self._overflow):
            entries.extend((when, seq) for when, seq, timer in heap
                           if not timer.cancelled)
        for slots, occ in ((self._slots1, self._occ1),
                           (self._slots2, self._occ2),
                           (self._slots3, self._occ3)):
            m = occ
            while m:
                i = (m & -m).bit_length() - 1
                m &= m - 1
                entries.extend((when, seq) for when, seq, timer in slots[i]
                               if not timer.cancelled)
        entries.sort()
        return entries

    def pending(self):
        """Snapshot of all pending ``(when, timer)`` entries (tests)."""
        entries = [(when, timer) for when, _seq, timer in self._due]
        for slots, occ in ((self._slots1, self._occ1),
                           (self._slots2, self._occ2),
                           (self._slots3, self._occ3)):
            m = occ
            while m:
                i = (m & -m).bit_length() - 1
                m &= m - 1
                entries.extend(
                    (when, timer) for when, _seq, timer in slots[i])
        entries.extend((when, timer) for when, _seq, timer in self._overflow)
        return entries
