"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-cases``                      the 16 Table 3 cases
- ``run-case c5 [--solution pbox]``   measure To/Ti/Ts for one case
- ``table3``                          interference levels for all cases
- ``analyze file.c``                  run Algorithm 2 over mini-C source
- ``trace c5 [--export t.json]``      run a case under pBox and print
                                      the Section 7 trace report; with
                                      --export, also write a Perfetto-
                                      compatible trace-event JSON file
- ``metrics c5``                      run a case under pBox with the
                                      metrics registry attached and
                                      print counters + latency
                                      histograms
- ``profile c17 [--folded out.txt]``  run a case under pBox with the
                                      attribution profiler attached and
                                      print the blame matrix; optional
                                      flags write folded stacks
                                      (flamegraph.pl), speedscope JSON,
                                      an HTML summary, and the raw
                                      attribution JSON
- ``sweep [--jobs N]``                evaluate the case registry through
                                      the parallel experiment runner
                                      with content-addressed result
                                      caching; writes
                                      results/SWEEP.json
- ``scale [--threads 100,10000]``     sweep the multi-tenant scenario
                                      (T tenants x W workers over the
                                      app models) across thread counts,
                                      recording kernel event throughput
                                      and manager detection cost per
                                      point; writes results/SCALE.json
                                      (--telemetry adds the per-tenant
                                      SLO telemetry section, schema 2)
- ``watch c5 | watch scale``          run a case (or one scale point)
                                      with the always-on telemetry
                                      pipeline attached and render a
                                      live terminal dashboard (per-
                                      tenant sketches, windowed time-
                                      series, burn-rate SLO alerts);
                                      --once prints a single final
                                      frame, --html exports a self-
                                      contained dashboard
- ``why c5 [--slowest K]``            run a case (or one scale point)
                                      with the per-request causal tracer
                                      attached and print the slowest
                                      requests' critical-path latency
                                      decomposition (on-CPU, runnable,
                                      lock -- blamed on holder pBoxes --
                                      pool queue, throttle, penalty);
                                      writes results/WHY.json, --html
                                      exports a standalone report
- ``chaos [--faults k1,k2]``          sweep cases x fault kinds x seeds
                                      through the deterministic fault-
                                      injection harness; exits non-zero
                                      on any invariant violation and
                                      writes results/CHAOS.json
- ``report [--results-dir results]``  stitch benchmark outputs into
                                      results/REPORT.md

Setting the ``REPRO_SMOKE`` environment variable (any non-empty value)
clamps every command's ``--duration`` to 1.5 simulated seconds and
restricts a filter-less ``sweep`` to two cases — the mode the docs CI
job uses to execute every quoted command quickly.
"""

import argparse
import os
import sys

from repro.analyzer import (
    Analyzer,
    DEFAULT_WAIT_FUNCS,
    PY_WAIT_FUNCS,
    parse_module,
    parse_python,
)
from repro.cases import ALL_CASES, Solution, evaluate_case, get_case, run_case
from repro.core.trace import PBoxTracer
from repro.obs import (
    AttributionProfiler,
    FoldedProfile,
    MetricsCollector,
    MetricsRegistry,
    SpanRecorder,
    write_chrome_trace,
)
from repro.report import write_report


def _case_order(case_id):
    return int(case_id[1:])


def cmd_list_cases(_args):
    """Print the registry of interference cases."""
    print("%-5s %-12s %-22s %s" % ("case", "app", "resource", "description"))
    for case_id in sorted(ALL_CASES, key=_case_order):
        case = get_case(case_id)
        print("%-5s %-12s %-22s %s" % (case.case_id, case.app_name,
                                       case.virtual_resource,
                                       case.description))
    return 0


def cmd_run_case(args):
    """Evaluate one case under one solution."""
    case = get_case(args.case)
    solution = Solution(args.solution)
    evaluation = evaluate_case(case, solutions=[solution],
                               duration_s=args.duration, seed=args.seed)
    print("case %s (%s): %s" % (case.case_id, case.app_name,
                                case.description))
    print("To (interference-free): %8.2f ms" % (evaluation.to_us / 1_000))
    print("Ti (vanilla)          : %8.2f ms   p = %.2f"
          % (evaluation.ti_us / 1_000, evaluation.interference_level))
    print("Ts (%s)%s: %8.2f ms   r = %+.2f"
          % (solution.value, " " * max(0, 15 - len(solution.value)),
             evaluation.ts_us(solution) / 1_000,
             evaluation.reduction_ratio(solution)))
    return 0


def cmd_table3(args):
    """Interference levels for every case."""
    print("%-5s %-12s %10s %10s %10s" % ("case", "app", "To(ms)", "Ti(ms)",
                                         "p"))
    for case_id in sorted(ALL_CASES, key=_case_order):
        case = get_case(case_id)
        evaluation = evaluate_case(case, solutions=(),
                                   duration_s=args.duration, seed=args.seed)
        print("%-5s %-12s %10.2f %10.2f %10.2f" % (
            case.case_id, case.app_name, evaluation.to_us / 1_000,
            evaluation.ti_us / 1_000, evaluation.interference_level))
    return 0


def cmd_analyze(args):
    """Run the static analyzer over a source file.

    ``.py`` files go through the Python frontend with Python waiting
    functions; everything else is parsed as mini-C.
    """
    with open(args.file) as handle:
        source = handle.read()
    if args.file.endswith(".py"):
        module = parse_python(source, name=args.file)
        analyzer = Analyzer(wait_funcs=PY_WAIT_FUNCS)
    else:
        module = parse_module(source, name=args.file)
        analyzer = Analyzer(wait_funcs=DEFAULT_WAIT_FUNCS)
    wrappers = analyzer.find_wrappers(module)
    if wrappers:
        print("wrappers:")
        for wrapper, wait_func in sorted(wrappers.items()):
            print("  %s -> %s" % (wrapper, wait_func))
    locations = analyzer.analyze(module)
    if not locations:
        print("no candidate state-event locations found")
        return 1
    print("candidate update_pbox locations:")
    for location in locations:
        print("  %s:%d call %s (waits via %s), shared: %s" % (
            location.function, location.line, location.callee,
            location.wait_func, ", ".join(location.shared_vars)))
    return 0


def cmd_trace(args):
    """Run a case under pBox and print the trace report.

    With ``--export PATH`` the run is also recorded as spans and written
    out as Chrome trace-event JSON (open it in ui.perfetto.dev).
    """
    tracer = PBoxTracer(record_events=args.record_events)
    recorder = SpanRecorder() if args.export else None

    def observer(env):
        tracer.attach(env.kernel.trace)
        if recorder is not None:
            recorder.attach(env.kernel.trace)

    run_case(get_case(args.case), Solution.PBOX,
             duration_s=args.duration, seed=args.seed, observer=observer)
    print(tracer.format_report())
    if recorder is not None:
        path = write_chrome_trace(recorder, args.export, case_id=args.case)
        print("wrote %s (%d spans, %d flow pairs)"
              % (path, len(recorder.spans), len(recorder.paired_flows())))
    return 0


def cmd_metrics(args):
    """Run a case under pBox and print the unified metrics registry."""
    registry = MetricsRegistry()
    collector = MetricsCollector(registry)

    def observer(env):
        env.metrics = registry
        collector.attach(env.kernel.trace)

    run_case(get_case(args.case), Solution.PBOX,
             duration_s=args.duration, seed=args.seed, observer=observer)
    print(registry.format_report())
    if args.json:
        registry.save_json(args.json)
        print("wrote %s" % args.json)
    return 0


def cmd_profile(args):
    """Run a case under pBox with the attribution profiler attached.

    Prints the blame matrix and wait-for cycle warnings; optional flags
    write flamegraph.pl folded stacks (``--folded``), speedscope JSON
    (``--json``), a self-contained HTML summary (``--html``) and the raw
    attribution snapshot (``--blame``).
    """
    profiler = AttributionProfiler()
    recorder = SpanRecorder(record_slices=not args.no_slices)

    def observer(env):
        profiler.attach(env.kernel.trace)
        recorder.attach(env.kernel.trace)

    run_case(get_case(args.case), Solution(args.solution),
             duration_s=args.duration, seed=args.seed, observer=observer)
    print(profiler.format_report(top=args.top))
    profile = FoldedProfile.from_recorder(
        recorder, name="repro %s (%s)" % (args.case, args.solution))
    print("profile: %d folded stacks, %.2f ms of virtual time"
          % (len(profile.weights), profile.total_us() / 1_000))
    if args.folded:
        profile.write_folded(args.folded)
        print("wrote %s" % args.folded)
    if args.json:
        profile.write_speedscope(args.json)
        print("wrote %s" % args.json)
    if args.html:
        profile.write_html(args.html, attribution=profiler.to_dict(),
                           top=args.top)
        print("wrote %s" % args.html)
    if args.blame:
        import json as _json
        with open(args.blame, "w") as handle:
            _json.dump(profiler.to_dict(), handle, indent=1)
            handle.write("\n")
        print("wrote %s" % args.blame)
    return 0


#: Duration ceiling (simulated seconds) applied when REPRO_SMOKE is set.
#: Must exceed the cases' 1 s warmup or victim recorders stay empty.
SMOKE_DURATION_S = 1.5


def _smoke_mode():
    """True when the docs-CI smoke mode is requested via environment."""
    return bool(os.environ.get("REPRO_SMOKE"))


def _normalize_case_filter(case_filter):
    """Forgive zero-padded case ids: ``c01`` means ``c1``.

    Registry ids are unpadded (``c1``..``c17``), but padded ids show up
    in scripts and CI configs; strip the padding instead of silently
    matching nothing.
    """
    if not case_filter:
        return case_filter
    terms = []
    for term in case_filter.split(","):
        term = term.strip()
        if len(term) > 1 and term[0] in "cC" and term[1:].isdigit():
            term = "c%d" % int(term[1:])
        terms.append(term)
    return ",".join(terms)


def cmd_sweep(args):
    """Evaluate the registry through the parallel experiment runner.

    Jobs are content-addressed by (spec, code fingerprint): a re-run
    with unchanged code replays results from the on-disk cache in
    milliseconds.  ``--jobs N`` fans uncached jobs out over N worker
    processes; results are bit-identical to ``--jobs 1`` because every
    job re-seeds its own kernel (see docs/RUNNING_EXPERIMENTS.md).
    """
    from repro.runner import (
        ResultCache,
        SweepInterrupted,
        run_sweep,
        sweep_case_ids,
    )

    case_ids = sweep_case_ids(_normalize_case_filter(args.filter))
    if not case_ids:
        print("no cases match filter %r" % args.filter)
        return 1
    if _smoke_mode() and not args.filter:
        case_ids = case_ids[:2]
    solutions = []
    for name in args.solutions.split(","):
        name = name.strip()
        if not name:
            continue
        solution = Solution(name)
        if solution in (Solution.NONE, Solution.NO_INTERFERENCE):
            print("solution %r is implicit (every sweep measures To and "
                  "Ti); pick from the mitigating solutions" % name)
            return 1
        solutions.append(solution)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    cache = ResultCache(args.cache_dir) if not args.no_cache else None

    def progress(done, total, spec, cached, wall_s):
        if args.quiet:
            return
        status = "hit " if cached else "%5.2fs" % wall_s
        print("[%3d/%3d] %-28s %s" % (done, total, spec.label(), status))

    try:
        result = run_sweep(
            case_ids=case_ids,
            solutions=solutions,
            seeds=seeds,
            duration_s=args.duration,
            jobs=args.jobs,
            cache=cache,
            use_cache=not args.no_cache,
            progress=progress,
        )
    except SweepInterrupted as stop:
        # Ctrl-C: persist the completed evaluations atomically instead
        # of losing the sweep (or truncating a previous SWEEP.json).
        partial = stop.partial
        path = partial.write_json(args.out)
        print()
        print("interrupted: wrote %d complete evaluation(s) to %s"
              % (len(partial.evaluations), path))
        return 130

    solution_names = [s.value for s in solutions]
    print()
    print("%-5s %10s %10s %8s  %s" % (
        "case", "To(ms)", "Ti(ms)", "p",
        "  ".join("r(%s)" % n for n in solution_names)))
    for seed in seeds:
        for case_id, ev in result.by_case(seed).items():
            ratios = "  ".join(
                "%+6.2f" % ev.reduction_ratio(s) for s in solutions)
            print("%-5s %10.2f %10.2f %8.2f  %s%s" % (
                case_id, ev.to_us / 1_000, ev.ti_us / 1_000,
                ev.interference_level, ratios,
                ("   [seed %d]" % seed) if len(seeds) > 1 else ""))
    stats = result.stats
    print()
    print("%d jobs: %d executed, %d cache hits; %d worker(s), %.2fs wall"
          % (stats["total"], stats["executed"], stats["cache_hits"],
             stats["workers"], stats["wall_s"]))
    path = result.write_json(args.out)
    print("wrote %s" % path)
    return 0


def cmd_chaos(args):
    """Sweep cases x fault kinds x seeds through the chaos harness.

    Every (case, fault, seed) combination runs the pBox solution with
    the fault cocktail injected at deterministic virtual times, the
    idle watchdog armed, and the invariant suite auditing the run.
    Writes ``results/CHAOS.json`` (atomically; byte-identical across
    re-runs) and exits non-zero if any invariant was violated, printing
    each violation's minimized repro spec.
    """
    from repro.faults import ChaosInterrupted, run_chaos
    from repro.runner import ResultCache, sweep_case_ids

    case_ids = sweep_case_ids(_normalize_case_filter(args.filter))
    if not case_ids:
        print("no cases match filter %r" % args.filter)
        return 1
    if _smoke_mode() and not args.filter:
        case_ids = case_ids[:2]
    kinds = [k.strip() for k in args.faults.split(",") if k.strip()]
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    cache = ResultCache(args.cache_dir) if not args.no_cache else None

    def progress(done, total, spec, cached, wall_s):
        if args.quiet:
            return
        status = "hit " if cached else "%5.2fs" % wall_s
        print("[%3d/%3d] %-40s %s" % (done, total, spec.label(), status))

    run_stats = {}
    try:
        result = run_chaos(
            case_ids=case_ids,
            kinds=kinds,
            seeds=seeds,
            duration_s=args.duration,
            jobs=args.jobs,
            cache=cache,
            use_cache=not args.no_cache,
            progress=progress,
            timeout_s=args.timeout,
            run_stats=run_stats,
        )
    except ChaosInterrupted as stop:
        partial = stop.partial
        path = partial.write_json(args.out)
        print()
        print("interrupted: wrote %d/%d completed runs to %s"
              % (partial.stats["completed"], partial.stats["total"], path))
        return 130
    except ValueError as exc:
        print("chaos: %s" % exc)
        return 2

    summary = result.to_json_dict()["summary"]
    stats = result.stats
    print()
    print("%d runs: %d faults fired, %d crashes contained, "
          "%d watchdog recoveries, %d stale repairs"
          % (summary["runs"], summary["faults_fired"],
             summary["crashes_contained"], summary["watchdog_recoveries"],
             summary["stale_repairs"]))
    print("%d jobs: %d cache hits; %d worker(s), %.2fs wall"
          % (stats["total"], stats["cache_hits"], stats["workers"],
             stats["wall_s"]))
    if run_stats.get("retries") or run_stats.get("degraded"):
        print("runner healing: %d retries, %d worker errors, degraded=%s"
              % (run_stats.get("retries", 0),
                 run_stats.get("worker_errors", 0),
                 run_stats.get("degraded", False)))
    path = result.write_json(args.out)
    print("wrote %s" % path)

    violations = result.violations()
    if violations:
        print()
        print("%d invariant violation(s):" % len(violations))
        for violation in violations[:20]:
            repro = violation.get("repro") or {}
            print("  [%s] %s (t=%dus)" % (
                violation.get("invariant", "?"),
                violation.get("detail", ""),
                violation.get("time_us", 0)))
            print("    repro: python -m repro chaos --filter %s "
                  "--faults %s --seeds %s --duration %s"
                  % (repro.get("case"), repro.get("faults"),
                     repro.get("seed"), args.duration))
        return 1
    print("all invariants held")
    return 0


def cmd_scale(args):
    """Sweep the multi-tenant scale scenario across thread counts.

    Each point composes the application models into one kernel with
    ``threads // 20`` tenants (two connection pBoxes each, so the pBox
    population scales with the thread count) and runs it twice --
    manager enabled and disabled -- so the manager's detection cost is
    the wall-clock delta on an identical event stream.
    """
    from repro.scale import (
        DEFAULT_THREAD_COUNTS,
        EXTENDED_APP_KINDS,
        SMOKE_THREAD_COUNTS,
        run_scale_sweep,
    )
    from repro.scale.sweep import write_scale_json

    if args.threads:
        thread_counts = tuple(
            int(t) for t in args.threads.split(",") if t.strip())
    elif _smoke_mode():
        thread_counts = SMOKE_THREAD_COUNTS
    else:
        thread_counts = DEFAULT_THREAD_COUNTS
    event_budget = args.event_budget
    if _smoke_mode():
        event_budget = min(event_budget, 40_000)

    print("%7s %7s %7s %6s %10s %10s %9s" % (
        "threads", "tenants", "pboxes", "cores",
        "events/s", "requests", "mgr cost"))

    def progress(point):
        print("%7d %7d %7d %6d %10d %10d %8.1f%%" % (
            point["threads"], point["tenants"], point["pboxes"],
            point["cores"], point["events_per_sec"], point["requests"],
            100.0 * point["manager"]["overhead_frac"]))

    # The CLI sweep defaults to the full six-family mix; the benchmark
    # A/B guard keeps exercising the original three-family default via
    # ScaleSpec directly.
    document = run_scale_sweep(thread_counts=thread_counts,
                               seed=args.seed, event_budget=event_budget,
                               progress=progress, telemetry=args.telemetry,
                               sched=args.sched,
                               families=EXTENDED_APP_KINDS)
    path = write_scale_json(document, args.out)
    print()
    if args.telemetry:
        for point in document["points"]:
            totals = point["telemetry"]["totals"]
            print("telemetry @%d threads: %d requests, %d bad, "
                  "%d breach(es), %d recover(s)"
                  % (point["threads"], totals["requests"], totals["bad"],
                     totals["breaches"], totals["recovers"]))
    print("%d point(s) in %.1fs wall; wrote %s"
          % (len(document["points"]), document["wall_s"], path))
    return 0


def _case_evaluator(case):
    """Default SLO evaluator for watching/explaining one case run."""
    from repro.obs.slo import BurnRatePolicy, SLObjective, SLOEvaluator

    nominal = case.nominal_baseline_us
    objectives = {}
    if nominal:
        # Monitor the victim against its known uncontended baseline:
        # bad = slower than 3x nominal, with a 90% target.
        objectives["victim"] = SLObjective(latency_us=int(nominal * 3),
                                           slowdown=3.0, target=0.9)
    return SLOEvaluator(
        objectives, policy=BurnRatePolicy(short_windows=3, long_windows=10,
                                          threshold=2.0, clear_below=1.0))


def _watch_case(args, pipeline, frame):
    """Drive one case run under ``watch``; returns final virtual time."""
    case = get_case(args.target)
    pipeline.evaluator = _case_evaluator(case)
    state = {}

    def observer(env):
        state["env"] = env
        env.telemetry = pipeline
        pipeline.attach(env.kernel.trace, manager=env.runtime.manager)

    def driver(env):
        step_us = pipeline.window_us * 5
        until = step_us
        while until < env.duration_us:
            env.kernel.run(until_us=until)
            frame(pipeline, env.kernel.now_us)
            until += step_us
        env.kernel.run(until_us=env.duration_us)

    try:
        run = run_case(case, Solution.PBOX, duration_s=args.duration,
                       seed=args.seed, observer=observer, driver=driver)
    except RuntimeError as exc:
        # A run shorter than the warmup records zero requests; the
        # dashboard still has whatever windows the pipeline saw, so
        # render those instead of crashing (telemetry was finalized
        # before run_case raised).
        if "no victim samples" not in str(exc):
            raise
        env = state.get("env")
        print("warning: %s -- showing telemetry collected so far" % exc)
        return env.kernel.now_us if env is not None else 0
    return run.env.kernel.now_us


def _watch_scale(args, pipeline, frame):
    """Drive one scale point under ``watch``; returns final time."""
    from repro.scale.scenario import ScaleSpec, build_scale_scenario
    from repro.scale.sweep import default_scale_evaluator

    pipeline.evaluator = default_scale_evaluator()
    event_budget = args.event_budget
    if _smoke_mode():
        event_budget = min(event_budget, 40_000)
    spec = ScaleSpec(args.threads, seed=args.seed,
                     event_budget=event_budget)
    scenario = build_scale_scenario(spec, telemetry=pipeline)
    kernel = scenario.kernel
    step_us = pipeline.window_us * 5
    until = step_us
    while until < spec.duration_us:
        kernel.run(until_us=until)
        frame(pipeline, kernel.now_us)
        until += step_us
    kernel.run(until_us=spec.duration_us)
    pipeline.finalize(kernel.now_us)
    return kernel.now_us


def cmd_watch(args):
    """Run a case or a scale point with a live telemetry dashboard.

    The simulation is stepped in five-window increments; between steps
    the current snapshot is rendered as a terminal frame (cleared in
    place on a TTY, appended otherwise).  ``--once`` skips the live
    frames and prints only the final state -- the mode CI smokes.
    ``--html PATH`` additionally writes the self-contained HTML
    dashboard at the end of the run.
    """
    from repro.obs import TelemetryPipeline, render_frame, write_html

    pipeline = TelemetryPipeline()
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

    def frame(pipe, _now_us):
        if args.once:
            return
        snapshot = pipe.snapshot()
        if clear:
            print(clear, end="")
        print(render_frame(snapshot))
        if not clear:
            print("-" * 78)

    if args.target == "scale":
        now_us = _watch_scale(args, pipeline, frame)
        title = "repro watch scale (%d threads)" % args.threads
    else:
        now_us = _watch_case(args, pipeline, frame)
        title = "repro watch %s" % args.target

    snapshot = pipeline.snapshot()
    if clear and not args.once:
        print(clear, end="")
    print(render_frame(snapshot))
    breached = ([entry["tenant"] for entry in snapshot["tenants"]
                 if entry["breached"]])
    print()
    print("final: t=%.2fs, %d slo event(s), in breach: %s"
          % (now_us / 1e6, len(snapshot["slo_events"]),
             ", ".join(breached) if breached else "none"))
    if args.html:
        write_html(snapshot, args.html, title=title)
        print("wrote %s" % args.html)
    return 0


#: Byte budget for the tracer portion of results/WHY.json; leaves
#: headroom for breach explanations under the repo-wide 64 KiB
#: per-artifact ceiling enforced by tools/check_results_size.py.
WHY_TRACER_BUDGET = 56 * 1024


def _why_render_html(path, title, table, explanations):
    """Write a minimal self-contained HTML view of a ``why`` run."""
    import html as _html

    lines = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'><title>%s</title>"
        % _html.escape(title),
        "<style>body{font-family:sans-serif;margin:2em;}"
        "pre{background:#f6f6f6;padding:1em;overflow-x:auto;}</style>",
        "</head><body>",
        "<h1>%s</h1>" % _html.escape(title),
        "<pre>%s</pre>" % _html.escape(table),
    ]
    if explanations:
        lines.append("<h2>SLO breach explanations</h2><ul>")
        for entry in explanations:
            tops = ", ".join(
                "req %d: %s %.2f ms" % (rid, kind, us / 1_000)
                for rid, _lat, kind, us in entry["top"]
            ) or "no traced requests in window"
            lines.append("<li>%s @ %.2fs: %s</li>"
                         % (_html.escape(str(entry["tenant"])),
                            entry["at_us"] / 1e6, _html.escape(tops)))
        lines.append("</ul>")
    lines.append("</body></html>")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


def cmd_why(args):
    """Explain where request latency went in a case (or scale) run.

    Attaches the per-request causal tracer plus the telemetry pipeline
    and breach explainer, runs the target under pBox, and prints the
    slowest requests' critical-path decomposition: on-CPU, runnable
    wait, lock wait (blamed on the holder's pBox), pool queueing,
    sleep, cgroup throttle, and injected penalty segments that sum
    exactly to each request's recorded latency.  Writes the machine-
    readable summary to ``--json`` (default ``results/WHY.json``).
    """
    from repro.obs import BreachExplainer, CritPathTracer, TelemetryPipeline

    tracer = CritPathTracer(slowest=max(args.slowest, 8))
    pipeline = TelemetryPipeline()
    explainer = BreachExplainer(tracer)

    if args.target == "scale":
        from repro.scale.scenario import ScaleSpec, build_scale_scenario
        from repro.scale.sweep import default_scale_evaluator

        pipeline.evaluator = default_scale_evaluator()
        event_budget = args.event_budget
        if _smoke_mode():
            event_budget = min(event_budget, 40_000)
        spec = ScaleSpec(args.threads, seed=args.seed,
                         event_budget=event_budget)
        scenario = build_scale_scenario(spec, telemetry=pipeline)
        tracer.attach(scenario.kernel.trace)
        explainer.attach(scenario.kernel.trace)
        scenario.kernel.run(until_us=spec.duration_us)
        pipeline.finalize(scenario.kernel.now_us)
        title = "repro why scale (%d threads)" % args.threads
    else:
        case = get_case(args.target)
        pipeline.evaluator = _case_evaluator(case)

        def observer(env):
            env.telemetry = pipeline
            pipeline.attach(env.kernel.trace, manager=env.runtime.manager)
            tracer.attach(env.kernel.trace)
            explainer.attach(env.kernel.trace)

        run_case(case, Solution.PBOX, duration_s=args.duration,
                 seed=args.seed, observer=observer)
        title = "repro why %s" % args.target

    table = tracer.format_table(slowest=args.slowest, tenant=args.tenant)
    print(table)
    if explainer.explanations:
        print("slo breach explanations (last %d of %d):"
              % (min(5, len(explainer.explanations)),
                 len(explainer.explanations)))
        for entry in explainer.explanations[-5:]:
            tops = ", ".join(
                "req %d: %s %.2f ms" % (rid, kind, us / 1_000)
                for rid, _lat, kind, us in entry["top"]
            ) or "no traced requests in window"
            print("  %s @ %.2fs: %s"
                  % (entry["tenant"], entry["at_us"] / 1e6, tops))

    doc = tracer.to_json_dict(budget_bytes=WHY_TRACER_BUDGET,
                              slowest=args.slowest)
    doc["target"] = args.target
    doc["explanations"] = explainer.explanations[-20:]
    if args.json:
        import json as _json
        out_dir = os.path.dirname(args.json)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json, "w") as handle:
            _json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json)
    if args.html:
        _why_render_html(args.html, title, table, explainer.explanations[-20:])
        print("wrote %s" % args.html)
    return 0


def cmd_ckpt(args):
    """Run a case under the checkpointing supervisor.

    Steps the simulation with checkpoints every ``--cadence-ms`` of
    virtual time, persisting content-addressed artifacts under
    ``--dir``.  ``--kill-at`` injects a worker crash at that virtual
    second; the supervisor resumes from the last good checkpoint and
    the completed stream is still byte-identical to an uninterrupted
    run.  ``--verify`` additionally restores the latest checkpoint
    after the run and checks the resumed digest matches.
    """
    from repro.ckpt import CheckpointStore, RunSupervisor, resume_case

    store = CheckpointStore(args.dir)
    supervisor = RunSupervisor(store,
                               cadence_us=int(args.cadence_ms * 1_000))
    kill_at_us = None if args.kill_at is None else int(args.kill_at * 1e6)
    outcome = supervisor.run(args.case, duration_s=args.duration,
                             seed=args.seed, kill_at_us=kill_at_us,
                             faults=args.faults)
    document = outcome["document"]
    print("case %s: %d events, digest %s"
          % (args.case, document["events"], document["digest"][:16]))
    print("checkpoints: %d stored under %s, resumes: %d"
          % (len(store.ids()), args.dir, outcome["resumes"]))
    if outcome["violations"]:
        for violation in outcome["violations"]:
            print("invariant violation: %s" % violation)
        return 1
    if args.verify:
        checkpoint = store.latest(args.case)
        resumed = resume_case(checkpoint)
        matches = resumed["document"]["digest"] == document["digest"]
        print("verify: resume from t=%.2fs %s"
              % (checkpoint.cut_us / 1e6,
                 "reproduces the run bit-for-bit" if matches
                 else "DIVERGED"))
        if not matches:
            return 1
    return 0


def _golden_corpus_path(case_id):
    """Locate the committed golden document for ``case_id``.

    Tries the current directory first (a repo checkout), then the
    checkout the installed package came from, so the command works from
    any working directory.
    """
    rel = os.path.join("tests", "golden", case_id + ".json")
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    for candidate in (rel, os.path.join(repo_root, rel)):
        if os.path.exists(candidate):
            return candidate
    return None


def cmd_bisect(args):
    """Localize the first divergent event window of a golden case.

    Replays ``case`` and compares it against an expected golden
    document (``--against PATH``, default: the committed corpus
    document).  On a match, exits 0.  On divergence, prints the first
    divergent 4096-event window -- index, event range, and the actual
    event lines from a scoped second replay -- and exits 1.
    """
    import json as _json

    from repro.ckpt import bisect_case

    expected_path = args.against or _golden_corpus_path(args.case)
    if expected_path is None:
        print("no golden document for %s: pass --against PATH" % args.case)
        return 2
    with open(expected_path) as handle:
        expected = _json.load(handle)
    report = bisect_case(args.case,
                         expected,
                         duration_s=args.duration,
                         seed=args.seed)
    if not report["divergent"]:
        print("case %s matches %s: %d events, digest %s"
              % (args.case, expected_path, report["events"],
                 report["digest"][:16]))
        return 0
    print("case %s DIVERGED from %s" % (args.case, expected_path))
    print("  expected: %d events, digest %s"
          % (report["expected_events"], report["expected_digest"][:16]))
    print("  actual:   %d events, digest %s"
          % (report["actual_events"], report["actual_digest"][:16]))
    print("  first divergent window: #%d (events %d..%d)"
          % (report["window_index"], report["start_event"],
             report["start_event"] + report["window_events"] - 1))
    shown = report["lines"][:args.lines]
    for line in shown:
        print("  %s" % line)
    if len(report["lines"]) > len(shown):
        print("  ... %d more line(s) in this window"
              % (len(report["lines"]) - len(shown)))
    return 1


def cmd_report(args):
    """Aggregate benchmark outputs into a markdown report."""
    path = write_report(args.results_dir)
    print("wrote %s" % path)
    return 0


def build_parser():
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="pBox reproduction (SOSP 2023) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-cases", help="list the 16 interference cases")

    run_parser = sub.add_parser("run-case", help="evaluate one case")
    run_parser.add_argument("case", choices=sorted(ALL_CASES, key=_case_order))
    run_parser.add_argument("--solution", default="pbox",
                            choices=[s.value for s in Solution
                                     if s not in (Solution.NONE,
                                                  Solution.NO_INTERFERENCE)])
    run_parser.add_argument("--duration", type=float, default=6)
    run_parser.add_argument("--seed", type=int, default=1)

    table_parser = sub.add_parser("table3", help="interference levels")
    table_parser.add_argument("--duration", type=float, default=6)
    table_parser.add_argument("--seed", type=int, default=1)

    analyze_parser = sub.add_parser("analyze",
                                    help="run Algorithm 2 on mini-C source")
    analyze_parser.add_argument("file")

    trace_parser = sub.add_parser("trace", help="trace a pBox run")
    trace_parser.add_argument("case", choices=sorted(ALL_CASES,
                                                     key=_case_order))
    trace_parser.add_argument("--duration", type=float, default=6)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--export", metavar="PATH", default=None,
                              help="write Chrome trace-event JSON "
                                   "(Perfetto-compatible) to PATH")
    trace_parser.add_argument("--record-events", action="store_true",
                              help="keep per-event records in the tracer "
                                   "ring buffer")

    metrics_parser = sub.add_parser(
        "metrics", help="run a case and print the metrics registry")
    metrics_parser.add_argument("case", choices=sorted(ALL_CASES,
                                                       key=_case_order))
    metrics_parser.add_argument("--duration", type=float, default=6)
    metrics_parser.add_argument("--seed", type=int, default=1)
    metrics_parser.add_argument("--json", metavar="PATH", default=None,
                                help="also dump the registry as JSON")

    profile_parser = sub.add_parser(
        "profile", help="run a case with the contention attribution "
                        "profiler and flame-profile the run")
    profile_parser.add_argument("case", choices=sorted(ALL_CASES,
                                                       key=_case_order))
    profile_parser.add_argument("--solution", default="pbox",
                                choices=[s.value for s in Solution])
    profile_parser.add_argument("--duration", type=float, default=6)
    profile_parser.add_argument("--seed", type=int, default=1)
    profile_parser.add_argument("--top", type=int, default=20,
                                help="rows to show per report section")
    profile_parser.add_argument("--no-slices", action="store_true",
                                help="skip per-CPU-slice spans (smaller "
                                     "profiles on long runs)")
    profile_parser.add_argument("--folded", metavar="PATH", default=None,
                                help="write flamegraph.pl folded stacks")
    profile_parser.add_argument("--json", metavar="PATH", default=None,
                                help="write speedscope JSON")
    profile_parser.add_argument("--html", metavar="PATH", default=None,
                                help="write a self-contained HTML summary")
    profile_parser.add_argument("--blame", metavar="PATH", default=None,
                                help="write the attribution snapshot as "
                                     "JSON")

    sweep_parser = sub.add_parser(
        "sweep", help="evaluate the case registry through the parallel "
                      "experiment runner (content-addressed cache)")
    sweep_parser.add_argument("--jobs", type=int,
                              default=os.cpu_count() or 1,
                              help="worker processes (default: CPU count); "
                                   "1 = serial in-process")
    sweep_parser.add_argument("--solutions", default="pbox",
                              help="comma-separated solutions to measure "
                                   "(default: pbox; e.g. "
                                   "pbox,cgroup,parties,retro,darc)")
    sweep_parser.add_argument("--filter", default=None,
                              help="comma-separated case ids or app/resource "
                                   "substrings (e.g. 'c1,c3' or 'mysql')")
    sweep_parser.add_argument("--seeds", default="1",
                              help="comma-separated RNG seeds (default: 1)")
    sweep_parser.add_argument("--duration", type=float, default=6,
                              help="simulated seconds per run (default: 6)")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="skip cache reads and writes")
    sweep_parser.add_argument("--cache-dir", default=None,
                              help="cache root (default: $REPRO_CACHE_DIR "
                                   "or .repro-cache)")
    sweep_parser.add_argument("--out", default="results/SWEEP.json",
                              help="machine-readable sweep summary path")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-job progress lines")

    chaos_parser = sub.add_parser(
        "chaos", help="fault-injection sweep: cases x fault kinds x "
                      "seeds with invariant checking (exits non-zero "
                      "on violations)")
    chaos_parser.add_argument("--jobs", type=int,
                              default=os.cpu_count() or 1,
                              help="worker processes (default: CPU count); "
                                   "1 = serial in-process")
    chaos_parser.add_argument("--faults", default="stall,lost_wakeup,crash",
                              help="comma-separated fault kinds (from: "
                                   "stall, holder_stall, lost_wakeup, "
                                   "crash, penalty_misfire, "
                                   "tracepoint_drop)")
    chaos_parser.add_argument("--filter", default=None,
                              help="comma-separated case ids or app/resource "
                                   "substrings ('c1,c3', 'mysql'; zero-"
                                   "padded ids like c01 are accepted)")
    chaos_parser.add_argument("--seeds", default="1,2,3",
                              help="comma-separated chaos seeds "
                                   "(default: 1,2,3)")
    chaos_parser.add_argument("--duration", type=float, default=3,
                              help="simulated seconds per run (default: 3)")
    chaos_parser.add_argument("--timeout", type=float, default=None,
                              help="wall-clock budget per job in seconds "
                                   "(over-budget jobs fail and retry)")
    chaos_parser.add_argument("--no-cache", action="store_true",
                              help="skip cache reads and writes")
    chaos_parser.add_argument("--cache-dir", default=None,
                              help="cache root (default: $REPRO_CACHE_DIR "
                                   "or .repro-cache)")
    chaos_parser.add_argument("--out", default="results/CHAOS.json",
                              help="machine-readable chaos summary path")
    chaos_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-job progress lines")

    scale_parser = sub.add_parser(
        "scale", help="multi-tenant scalability sweep (results/SCALE.json)")
    scale_parser.add_argument("--threads", default=None,
                              help="comma-separated thread counts "
                                   "(default: 100,...,10000)")
    scale_parser.add_argument("--seed", type=int, default=1,
                              help="root kernel seed (default: 1)")
    scale_parser.add_argument("--event-budget", type=int, default=120_000,
                              help="target kernel events per point; the "
                                   "virtual horizon shrinks as the core "
                                   "count grows (default: 120000)")
    scale_parser.add_argument("--out", default="results/SCALE.json",
                              help="output path (default: "
                                   "results/SCALE.json)")
    scale_parser.add_argument("--sched", choices=("cfs", "eevdf"),
                              default="cfs",
                              help="scheduler policy for every kernel "
                                   "of the sweep (default: cfs)")
    scale_parser.add_argument("--telemetry", action="store_true",
                              help="collect per-tenant SLO telemetry "
                                   "(sketches, windowed series, breach "
                                   "events) in an extra untimed run per "
                                   "point and embed it in SCALE.json")

    watch_parser = sub.add_parser(
        "watch", help="live per-tenant SLO telemetry dashboard over a "
                      "case run or a scale point")
    watch_parser.add_argument(
        "target", choices=sorted(ALL_CASES, key=_case_order) + ["scale"],
        help="a case id (runs under pBox) or 'scale'")
    watch_parser.add_argument("--duration", type=float, default=6,
                              help="simulated seconds for case targets "
                                   "(default: 6)")
    watch_parser.add_argument("--seed", type=int, default=1)
    watch_parser.add_argument("--threads", type=int, default=200,
                              help="thread count for the scale target "
                                   "(default: 200)")
    watch_parser.add_argument("--event-budget", type=int, default=120_000,
                              help="kernel event budget for the scale "
                                   "target (default: 120000)")
    watch_parser.add_argument("--once", action="store_true",
                              help="print only the final frame (CI smoke)")
    watch_parser.add_argument("--html", metavar="PATH", default=None,
                              help="write a self-contained HTML dashboard")

    why_parser = sub.add_parser(
        "why", help="per-request critical-path latency decomposition "
                    "for a case run or a scale point")
    why_parser.add_argument(
        "target", choices=sorted(ALL_CASES, key=_case_order) + ["scale"],
        help="a case id (runs under pBox) or 'scale'")
    why_parser.add_argument("--slowest", type=int, default=5,
                            help="requests to show per tenant (default: 5)")
    why_parser.add_argument("--tenant", default=None,
                            help="only show this tenant's requests")
    why_parser.add_argument("--duration", type=float, default=6,
                            help="simulated seconds for case targets "
                                 "(default: 6)")
    why_parser.add_argument("--seed", type=int, default=1)
    why_parser.add_argument("--threads", type=int, default=200,
                            help="thread count for the scale target "
                                 "(default: 200)")
    why_parser.add_argument("--event-budget", type=int, default=120_000,
                            help="kernel event budget for the scale "
                                 "target (default: 120000)")
    why_parser.add_argument("--json", metavar="PATH",
                            default="results/WHY.json",
                            help="machine-readable summary path (default: "
                                 "results/WHY.json; empty string skips)")
    why_parser.add_argument("--html", metavar="PATH", default=None,
                            help="write a self-contained HTML report")

    ckpt_parser = sub.add_parser(
        "ckpt", help="checkpointed (and optionally crash-resumed) case "
                     "run under the supervisor")
    ckpt_parser.add_argument(
        "case", choices=sorted(ALL_CASES, key=_case_order),
        help="case id (runs under pBox)")
    ckpt_parser.add_argument("--duration", type=float, default=1.5,
                             help="simulated seconds (default: 1.5, the "
                                  "golden-corpus horizon)")
    ckpt_parser.add_argument("--seed", type=int, default=1)
    ckpt_parser.add_argument("--cadence-ms", type=float, default=250,
                             help="checkpoint cadence in virtual "
                                  "milliseconds (default: 250)")
    ckpt_parser.add_argument("--kill-at", type=float, default=None,
                             metavar="S",
                             help="inject a worker crash at this virtual "
                                  "second; the supervisor resumes from "
                                  "the last good checkpoint")
    ckpt_parser.add_argument("--faults", default=None,
                             help="chaos cocktail to attach (same syntax "
                                  "as 'repro chaos --faults')")
    ckpt_parser.add_argument("--dir", default=".repro-ckpt",
                             help="checkpoint store directory (default: "
                                  ".repro-ckpt)")
    ckpt_parser.add_argument("--verify", action="store_true",
                             help="after the run, restore the latest "
                                  "checkpoint and require the resumed "
                                  "digest to match")

    bisect_parser = sub.add_parser(
        "bisect", help="localize the first divergent golden event window "
                       "of a case")
    bisect_parser.add_argument(
        "case", choices=sorted(ALL_CASES, key=_case_order),
        help="case id (runs under pBox)")
    bisect_parser.add_argument("--against", default=None, metavar="PATH",
                               help="expected golden document (default: "
                                    "the committed tests/golden corpus)")
    bisect_parser.add_argument("--duration", type=float, default=1.5,
                               help="simulated seconds (default: 1.5, "
                                    "the golden-corpus horizon)")
    bisect_parser.add_argument("--seed", type=int, default=1)
    bisect_parser.add_argument("--lines", type=int, default=20,
                               help="divergent-window event lines to "
                                    "print (default: 20)")

    report_parser = sub.add_parser("report",
                                   help="aggregate results/ into a report")
    report_parser.add_argument("--results-dir", default="results")
    return parser


COMMANDS = {
    "list-cases": cmd_list_cases,
    "run-case": cmd_run_case,
    "table3": cmd_table3,
    "analyze": cmd_analyze,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "profile": cmd_profile,
    "sweep": cmd_sweep,
    "chaos": cmd_chaos,
    "scale": cmd_scale,
    "watch": cmd_watch,
    "why": cmd_why,
    "ckpt": cmd_ckpt,
    "bisect": cmd_bisect,
    "report": cmd_report,
}


def main(argv=None):
    """CLI entry point; returns a process exit code.

    With ``REPRO_SMOKE`` set in the environment, any ``--duration`` is
    clamped to :data:`SMOKE_DURATION_S` so every documented command can
    be executed cheaply by the docs CI job.
    """
    args = build_parser().parse_args(argv)
    if _smoke_mode() and getattr(args, "duration", None) is not None:
        args.duration = min(args.duration, SMOKE_DURATION_S)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
