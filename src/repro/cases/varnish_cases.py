"""Varnish interference cases c14-c15 (Table 3, event-driven)."""

from repro.apps.varnishsim import VarnishConfig, VarnishServer
from repro.cases.base import InterferenceCase


def _make_server(env, **config_kwargs):
    config_kwargs.setdefault("isolation_level", env.isolation_level)
    config = VarnishConfig(**config_kwargs)
    server = VarnishServer(env.kernel, env.runtime, config)
    server.start(
        spawn=lambda body, name: env.spawn_background(body, name, group="server")
    )
    return server


class BigObjectCase(InterferenceCase):
    """c14: big-object fetches occupy the worker pool, starving small
    requests in the task queue (the shared-thread penalty path)."""

    case_id = "c14"
    app_name = "varnish"
    from_bug_report = False
    virtual_resource = "varnish thread pool"
    description = ("Slow request on visiting big objects blocks the "
                   "requests on small objects")
    paper_interference_level = 18045.79

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, workers=4)
        victim = env.recorder("small-client", victim=True)
        env.spawn_client(
            "small-client",
            server.connect("small-client"),
            lambda: {"kind": "small_object", "type": "small"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(4):
                noisy = env.recorder("big-client-%d" % index, noisy=True)
                env.spawn_client(
                    "big-client-%d" % index,
                    server.connect("big-client-%d" % index),
                    lambda: {"kind": "big_object", "type": "big"},
                    noisy,
                    group="noisy",
                    think_us=2_000,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )


class SumStatCase(InterferenceCase):
    """c15: WRK_SumStat lock contention at high request rates."""

    case_id = "c15"
    app_name = "varnish"
    from_bug_report = True
    virtual_resource = "system lock"
    description = ("WRK_SumStat lock contention with high number of "
                   "thread pools")
    paper_interference_level = 0.68
    duration_s = 6

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, workers=8, sumstat_hold_us=150)
        victim = env.recorder("page-client", victim=True)
        env.spawn_client(
            "page-client",
            server.connect("page-client"),
            lambda: {"kind": "small_object", "type": "page"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(4):
                noisy = env.recorder("hammer-%d" % index, noisy=True)
                env.spawn_client(
                    "hammer-%d" % index,
                    server.connect("hammer-%d" % index),
                    lambda: {"kind": "small_object", "serve_us": 200,
                             "sumstat_us": 250, "type": "hammer"},
                    noisy,
                    group="noisy",
                    think_us=200,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )
