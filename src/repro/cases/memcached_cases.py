"""Memcached interference case c16 (Table 3, event-driven).

This is the paper's one unmitigated case: light contention on the
cache-replacement lock in a system whose requests complete in tens of
microseconds, where pBox's own per-operation cost outweighs the benefit
of its rare mitigation actions.
"""

from repro.apps.memcachedsim import MemcachedConfig, MemcachedServer
from repro.cases.base import InterferenceCase


class CacheLockCase(InterferenceCase):
    """c16: cache-replacement (LRU) lock contention."""

    case_id = "c16"
    app_name = "memcached"
    from_bug_report = False
    virtual_resource = "system lock"
    description = "lock contention in the cache replacement algorithm"
    paper_interference_level = 0.73
    duration_s = 6

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        config = MemcachedConfig(isolation_level=env.isolation_level)
        server = MemcachedServer(env.kernel, env.runtime, config)
        server.start(
            spawn=lambda body, name: env.spawn_background(
                body, name, group="server"
            )
        )
        victim = env.recorder("get-client", victim=True)
        env.spawn_client(
            "get-client",
            server.connect("get-client"),
            lambda: {"kind": "get", "type": "get"},
            victim,
            group="victim",
            victim=True,
            think_us=200,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(2):
                noisy = env.recorder("set-client-%d" % index, noisy=True)
                env.spawn_client(
                    "set-client-%d" % index,
                    server.connect("set-client-%d" % index),
                    lambda: {"kind": "set", "type": "set"},
                    noisy,
                    group="noisy",
                    think_us=150,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )
