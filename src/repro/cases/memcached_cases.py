"""Memcached interference cases c16 and c19 (event-driven cache tier).

c16 is the paper's one unmitigated case: light contention on the
cache-replacement lock in a system whose requests complete in tens of
microseconds, where pBox's own per-operation cost outweighs the benefit
of its rare mitigation actions.

c19 scales the same cache tier up -- a wider worker pool and a flood of
set-clients hammering the replacement lock -- turning the light
contention of c16 into sustained pressure, the shape the scale harness
replays with hundreds of tenants.
"""

from repro.apps.memcachedsim import MemcachedConfig, MemcachedServer
from repro.cases.base import InterferenceCase


class CacheLockCase(InterferenceCase):
    """c16: cache-replacement (LRU) lock contention."""

    case_id = "c16"
    app_name = "memcached"
    from_bug_report = False
    virtual_resource = "system lock"
    description = "lock contention in the cache replacement algorithm"
    paper_interference_level = 0.73
    duration_s = 6

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        config = MemcachedConfig(isolation_level=env.isolation_level)
        server = MemcachedServer(env.kernel, env.runtime, config)
        server.start(
            spawn=lambda body, name: env.spawn_background(
                body, name, group="server"
            )
        )
        victim = env.recorder("get-client", victim=True)
        env.spawn_client(
            "get-client",
            server.connect("get-client"),
            lambda: {"kind": "get", "type": "get"},
            victim,
            group="victim",
            victim=True,
            think_us=200,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(2):
                noisy = env.recorder("set-client-%d" % index, noisy=True)
                env.spawn_client(
                    "set-client-%d" % index,
                    server.connect("set-client-%d" % index),
                    lambda: {"kind": "set", "type": "set"},
                    noisy,
                    group="noisy",
                    think_us=150,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )


class ScaledCacheCase(InterferenceCase):
    """c19: set-floods on a wide cache tier (the scale-harness tenant)."""

    case_id = "c19"
    app_name = "memcached"
    from_bug_report = False
    virtual_resource = "system lock"
    description = "set-client floods keep the replacement lock saturated"
    paper_interference_level = None  # beyond the Table 3 corpus
    duration_s = 6
    #: Noisy set-flood clients (each eviction holds the cache lock).
    flood_clients = 4

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        config = MemcachedConfig(
            isolation_level=env.isolation_level,
            workers=8,
            evict_probability=0.9,
        )
        server = MemcachedServer(env.kernel, env.runtime, config)
        server.start(
            spawn=lambda body, name: env.spawn_background(
                body, name, group="server"
            )
        )
        victim = env.recorder("get-client", victim=True)
        env.spawn_client(
            "get-client",
            server.connect("get-client"),
            lambda: {"kind": "get", "type": "get"},
            victim,
            group="victim",
            victim=True,
            think_us=500,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(self.flood_clients):
                noisy = env.recorder("flood-client-%d" % index, noisy=True)
                env.spawn_client(
                    "flood-client-%d" % index,
                    server.connect("flood-client-%d" % index),
                    lambda: {"kind": "set", "type": "set"},
                    noisy,
                    group="noisy",
                    think_us=300,
                    rng=env.kernel.rng("flood-think-%d" % index),
                    start_us=200_000,
                )
