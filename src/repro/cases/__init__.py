"""The 16 real-world interference cases of Table 3.

Each case is a scenario: an application model, one or more victim
clients, a noisy activity, and the virtual resource they contend on.
The harness (:mod:`repro.cases.base`) runs a case under each solution
and computes the paper's metrics (interference level ``p``, reduction
ratio ``r``).
"""

from repro.cases.base import (
    CaseEvaluation,
    CaseRun,
    InterferenceCase,
    Solution,
    evaluate_case,
    run_case,
)
from repro.cases.registry import ALL_CASES, get_case

__all__ = [
    "ALL_CASES",
    "CaseEvaluation",
    "CaseRun",
    "InterferenceCase",
    "Solution",
    "evaluate_case",
    "get_case",
    "run_case",
]
