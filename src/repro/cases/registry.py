"""Registry of the interference cases: the 16 Table 3 cases, c17 (the
Figure 2 buffer-pool motivating case, the attribution profiler's
reference scenario), and the beyond-the-paper extensions — c18/c20
(trace-driven FaaS sandbox churn, under the default and EEVDF
schedulers) and c19 (the scaled-up cache tier).

The registry is the enumeration surface of the experiment runner:
``repro.runner.sweep`` walks :data:`ALL_CASES` (in numeric id order)
to build its job graph, and a job's cache identity includes only the
case *id* — not the case object — because :func:`get_case` is
deterministic: it constructs a fresh, unconfigured case instance
whose behaviour is fully determined by the case class and the
(seed, duration, solution) parameters supplied at run time.  Two
consequences for authors of new cases:

- a case class must not read ambient state (wall clock, environment,
  module-level mutable globals) in ``__init__`` or ``build``; all
  variability must flow from the kernel's seeded RNG streams, or the
  runner's determinism/caching contract breaks;
- registering a case makes it sweepable immediately (``python -m
  repro sweep --filter <id>``) — there is nothing else to wire up.
"""

from repro.cases.mysql_cases import (
    BufferPoolCase,
    CustomLockCase,
    CustomMutexCase,
    SerializableCase,
    TicketsCase,
    UndoLogCase,
)
from repro.cases.apache_cases import (
    FcgidQueueCase,
    MaxClientsCase,
    PhpPoolCase,
)
from repro.cases.faas_cases import FaasChurnCase, FaasChurnEevdfCase
from repro.cases.memcached_cases import CacheLockCase, ScaledCacheCase
from repro.cases.pg_cases import (
    IndexMVCCCase,
    LockManagerCase,
    LWLockCase,
    VacuumFullCase,
    WALGroupCommitCase,
)
from repro.cases.varnish_cases import BigObjectCase, SumStatCase

_CASE_CLASSES = [
    CustomLockCase,
    CustomMutexCase,
    TicketsCase,
    SerializableCase,
    UndoLogCase,
    IndexMVCCCase,
    LockManagerCase,
    LWLockCase,
    VacuumFullCase,
    WALGroupCommitCase,
    FcgidQueueCase,
    MaxClientsCase,
    PhpPoolCase,
    BigObjectCase,
    SumStatCase,
    CacheLockCase,
    BufferPoolCase,
    FaasChurnCase,
    ScaledCacheCase,
    FaasChurnEevdfCase,
]

ALL_CASES = {cls.case_id: cls for cls in _CASE_CLASSES}


def get_case(case_id):
    """Instantiate the case registered under ``case_id`` (e.g. 'c5')."""
    try:
        return ALL_CASES[case_id]()
    except KeyError:
        raise KeyError(
            "unknown case %r; known: %s" % (case_id, sorted(ALL_CASES))
        ) from None
