"""Case harness: run an interference scenario under each solution.

The measurement protocol follows Section 6.2:

- ``To``: victim latency without the noisy activity (interference-free);
- ``Ti``: victim latency with the noisy activity, vanilla application;
- ``Ts``: victim latency with the noisy activity under a solution
  (pBox or one of the baselines);
- interference level ``p = Ti/To - 1``;
- reduction ratio ``r = (Ti - Ts)/(Ti - To)``.

Every run is an independent, deterministic simulation with the same
seed, so the only difference between ``Ti`` and ``Ts`` is the solution.
"""

import enum

from repro.baselines import (
    CgroupPolicy,
    DarcPolicy,
    PartiesPolicy,
    RetroPolicy,
    SolutionPolicy,
)
from repro.baselines.base import RequestContext
from repro.core import OperationCosts, PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client, reduction_ratio


class Solution(enum.Enum):
    """Run modes understood by :func:`run_case`."""

    NO_INTERFERENCE = "no_interference"   # To
    NONE = "none"                         # Ti (vanilla, noisy active)
    PBOX = "pbox"
    CGROUP = "cgroup"
    PARTIES = "parties"
    RETRO = "retro"
    DARC = "darc"


BASELINE_SOLUTIONS = (
    Solution.CGROUP,
    Solution.PARTIES,
    Solution.RETRO,
    Solution.DARC,
)


class CaseEnv:
    """Everything a case's ``build`` method needs.

    Exposes the kernel, the pBox runtime linked into the application,
    the interference flag (False during the ``To`` run), and helpers
    that route thread creation and request accounting through the active
    solution policy.
    """

    def __init__(self, kernel, runtime, policy, duration_us, warmup_us, seed):
        self.kernel = kernel
        self.runtime = runtime
        self.policy = policy
        self.duration_us = duration_us
        self.warmup_us = warmup_us
        self.seed = seed
        self.interference = True
        self.isolation_level = 50  # paper default; Figure 15 varies it
        self.victim_recorders = []
        self.noisy_recorders = []
        # Optional obs.metrics.MetricsRegistry; when set, recorders
        # mirror their samples into per-role latency histograms.
        self.metrics = None
        # Optional obs.telemetry.TelemetryPipeline; when set, recorders
        # feed per-role request latencies into it (role as the tenant).
        self.telemetry = None
        # Nominal (uncontended) victim latency for slowdown telemetry;
        # run_case fills it from the case/measured baseline when known.
        self.nominal_us = None
        self._groups = set()

    @property
    def stop_us(self):
        """Virtual time at which clients stop issuing requests."""
        return self.duration_us

    def recorder(self, name, victim=False, noisy=False, warmup=True):
        """Create a latency recorder, tracked for result aggregation."""
        role = "victim" if victim else ("noisy" if noisy else "other")
        histogram = None
        if self.metrics is not None:
            histogram = self.metrics.histogram("latency.%s_us" % role)
        sink = None
        if self.telemetry is not None:
            telemetry = self.telemetry
            # Slowdown is only meaningful against the victim's known
            # uncontended baseline; other roles sketch latency alone.
            nominal = self.nominal_us if victim else None

            def sink(latency_us, completed_at_us, _role=role,
                     _nominal=nominal):
                telemetry.record_request(_role, latency_us,
                                         completed_at_us,
                                         nominal_us=_nominal)
        recorder = LatencyRecorder(
            name, record_from_us=self.warmup_us if warmup else 0,
            histogram=histogram, sink=sink,
        )
        if victim:
            self.victim_recorders.append(recorder)
        if noisy:
            self.noisy_recorders.append(recorder)
        return recorder

    def spawn_client(self, name, connection, request_factory, recorder,
                     group, victim=False, slo_us=None, think_us=0,
                     start_us=0, stop_us=None, rng=None):
        """Spawn a closed-loop client routed through the solution policy."""
        self._groups.add(group)
        ctx = RequestContext(group, name, victim=victim, slo_us=slo_us)
        body = closed_loop_client(
            self.kernel,
            connection,
            request_factory,
            recorder,
            start_us=start_us,
            stop_us=self.duration_us if stop_us is None else stop_us,
            think_us=think_us,
            rng=rng,
            policy=self.policy,
            policy_ctx=ctx,
            # req.begin groups requests by role, matching the tenant
            # labels the telemetry pipeline uses for case runs.
            tenant=group,
        )
        options = self.policy.thread_options(group, "client")
        return self.kernel.spawn(body, name=name, **options)

    def spawn_background(self, body, name, group):
        """Spawn a background activity (purge, dump, vacuum...)."""
        self._groups.add(group)
        options = self.policy.thread_options(group, "background")
        return self.kernel.spawn(body, name=name, **options)

    def finalize(self):
        """Let the policy size quotas / start its control loop."""
        self.policy.finalize(self._groups)


class InterferenceCase:
    """Base class for the 16 Table 3 cases.

    Subclasses set the metadata class attributes and implement
    ``build(env)``, spawning victims always and noisy activities only
    when ``env.interference`` is true.
    """

    case_id = "cX"
    app_name = "app"
    from_bug_report = False
    virtual_resource = "resource"
    description = ""
    paper_interference_level = None  # Table 3's p, for EXPERIMENTS.md
    duration_s = 10
    warmup_s = 1
    cores = 4
    # Scheduler policy the case's kernel runs under ("cfs" | "eevdf").
    # Part of the case's deterministic identity, like cores: a golden
    # digest pins the schedule the policy produced.
    sched = "cfs"
    # Expected interference-free victim latency; used by PARTIES (SLO)
    # and Retro (slowdown baseline).  Filled per case; evaluate_case
    # overrides it with the measured To.
    nominal_baseline_us = None

    def build(self, env):
        """Construct the scenario (override)."""
        raise NotImplementedError

    def make_policy(self, solution, baseline_us):
        """Instantiate the policy object for a solution mode."""
        if solution in (Solution.NO_INTERFERENCE, Solution.NONE, Solution.PBOX):
            return SolutionPolicy()
        if solution is Solution.CGROUP:
            return CgroupPolicy()
        if solution is Solution.PARTIES:
            slo = {}
            if baseline_us:
                slo = {"victim": baseline_us * 1.5}
            return PartiesPolicy(slo_by_group=slo)
        if solution is Solution.RETRO:
            baselines = {}
            if baseline_us:
                baselines = {"victim": baseline_us}
            return RetroPolicy(baseline_by_group=baselines)
        if solution is Solution.DARC:
            return DarcPolicy()
        raise ValueError("unknown solution %r" % (solution,))


class CaseRun:
    """Raw result of one simulation run of a case."""

    def __init__(self, case, solution, victim_mean_us, victim_p95_us,
                 noisy_mean_us, manager, runtime, env):
        self.case = case
        self.solution = solution
        self.victim_mean_us = victim_mean_us
        self.victim_p95_us = victim_p95_us
        self.noisy_mean_us = noisy_mean_us
        self.manager = manager
        self.runtime = runtime
        self.env = env

    def __repr__(self):
        return "CaseRun(case=%s, solution=%s, victim_mean_us=%.0f)" % (
            self.case.case_id,
            self.solution.value,
            self.victim_mean_us,
        )


def run_case(case, solution, seed=1, baseline_us=None, duration_s=None,
             penalty_engine=None, call_filter=None, isolation_level=None,
             observer=None, driver=None, manager_factory=None, sched=None):
    """Run ``case`` once under ``solution`` and return a :class:`CaseRun`.

    ``penalty_engine`` (Table 4), ``call_filter`` (Section 6.8), and
    ``isolation_level`` (Figure 15) expose the knobs the sensitivity
    experiments vary.  ``observer(env)``, called after the environment
    is assembled but before the case builds, is the attachment point for
    observability (tracepoint subscribers, metrics registries): it may
    subscribe to ``env.kernel.trace`` and set ``env.metrics`` /
    ``env.telemetry``.  ``driver(env)``, when given, replaces the
    single ``kernel.run`` call and owns advancing the simulation to
    ``env.duration_us`` -- the ``repro watch`` live view uses it to
    step the kernel in window-sized increments and render between
    steps.  ``manager_factory(kernel, enabled=..., penalty_engine=...)``
    swaps the manager construction -- the sharded-manager equivalence
    tests run the whole corpus through it.  ``sched`` overrides the
    case's scheduler policy (``case.sched``, default ``"cfs"``) -- the
    scheduler differential suite replays the corpus with the policy
    spelled out explicitly.
    """
    kernel = Kernel(cores=case.cores, seed=seed,
                    sched=sched or getattr(case, "sched", "cfs"))
    pbox_on = solution is Solution.PBOX
    if manager_factory is not None:
        manager = manager_factory(kernel, enabled=pbox_on,
                                  penalty_engine=penalty_engine)
    else:
        manager = PBoxManager(kernel, enabled=pbox_on,
                              penalty_engine=penalty_engine)
    runtime = PBoxRuntime(
        manager,
        costs=OperationCosts(),
        call_filter=call_filter,
        enabled=pbox_on,
    )
    duration_us = seconds(duration_s if duration_s is not None else case.duration_s)
    policy = case.make_policy(solution, baseline_us or case.nominal_baseline_us)
    policy.attach(kernel)
    env = CaseEnv(
        kernel,
        runtime,
        policy,
        duration_us,
        seconds(case.warmup_s),
        seed,
    )
    env.interference = solution is not Solution.NO_INTERFERENCE
    env.nominal_us = baseline_us or case.nominal_baseline_us
    if isolation_level is not None:
        env.isolation_level = isolation_level
    if observer is not None:
        observer(env)
    case.build(env)
    env.finalize()
    if driver is None:
        kernel.run(until_us=duration_us)
    else:
        driver(env)
    if env.telemetry is not None:
        env.telemetry.finalize(kernel.now_us)

    victim_samples = []
    for recorder in env.victim_recorders:
        victim_samples.extend(recorder.samples_us)
    if not victim_samples:
        raise RuntimeError(
            "case %s produced no victim samples under %s"
            % (case.case_id, solution.value)
        )
    victim_mean = sum(victim_samples) / len(victim_samples)
    ordered = sorted(victim_samples)
    victim_p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    noisy_samples = []
    for recorder in env.noisy_recorders:
        noisy_samples.extend(recorder.samples_us)
    noisy_mean = (
        sum(noisy_samples) / len(noisy_samples) if noisy_samples else None
    )
    return CaseRun(case, solution, victim_mean, victim_p95, noisy_mean,
                   manager, runtime, env)


class CaseEvaluation:
    """Aggregated To/Ti/Ts metrics for one case (Section 6.2 math)."""

    def __init__(self, case, baseline, interference, solution_runs):
        self.case = case
        self.baseline = baseline            # CaseRun (To)
        self.interference = interference    # CaseRun (Ti)
        self.solution_runs = solution_runs  # {Solution: CaseRun}

    @property
    def to_us(self):
        """Interference-free victim latency To."""
        return self.baseline.victim_mean_us

    @property
    def ti_us(self):
        """Victim latency under interference Ti."""
        return self.interference.victim_mean_us

    def ts_us(self, solution):
        """Victim latency under ``solution``."""
        return self.solution_runs[solution].victim_mean_us

    @property
    def interference_level(self):
        """p = Ti/To - 1."""
        return self.ti_us / self.to_us - 1.0

    def reduction_ratio(self, solution):
        """r = (Ti - Ts)/(Ti - To) for ``solution``."""
        return reduction_ratio(self.ti_us, self.ts_us(solution), self.to_us)

    def normalized_latency(self, solution):
        """Ts / Ti: the Figure 11 normalization (< 1 means mitigated)."""
        return self.ts_us(solution) / self.ti_us

    def normalized_tail(self, solution):
        """p95(Ts) / p95(Ti): the Figure 12 normalization."""
        return (
            self.solution_runs[solution].victim_p95_us
            / self.interference.victim_p95_us
        )


def evaluate_case(case, solutions=(Solution.PBOX,), seed=1, duration_s=None):
    """Measure To, Ti, and Ts for every requested solution.

    The measured To feeds the PARTIES SLO and the Retro slowdown
    baseline, exactly as those systems would be configured by an
    operator who knows the service's normal latency.
    """
    baseline = run_case(case, Solution.NO_INTERFERENCE, seed=seed,
                        duration_s=duration_s)
    interference = run_case(case, Solution.NONE, seed=seed,
                            duration_s=duration_s)
    runs = {}
    for solution in solutions:
        runs[solution] = run_case(
            case,
            solution,
            seed=seed,
            baseline_us=baseline.victim_mean_us,
            duration_s=duration_s,
        )
    return CaseEvaluation(case, baseline, interference, runs)
