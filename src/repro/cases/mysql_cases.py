"""MySQL interference cases c1-c5 (Table 3).

Group labels follow the harness convention: victim clients in group
``"victim"``, the noisy activity in ``"noisy"``, background threads in
``"background"``.  The baselines group threads by these labels exactly
the way the paper's scripts classified threads by workload type.
"""

from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.cases.base import InterferenceCase
from repro.sim.clock import seconds


def _make_server(env, **config_kwargs):
    config_kwargs.setdefault("isolation_level", env.isolation_level)
    config = MySQLConfig(**config_kwargs)
    return MySQLServer(env.kernel, env.runtime, config)


class CustomLockCase(InterferenceCase):
    """c1: SELECT FOR UPDATE blocks other clients' INSERTs.

    The noisy client runs long SELECT ... FOR UPDATE scans holding the
    table lock; the victim's INSERTs need the same lock briefly.
    """

    case_id = "c1"
    app_name = "mysql"
    from_bug_report = False
    virtual_resource = "custom lock"
    description = "SELECT FOR UPDATE query blocks other clients' insert query"
    paper_interference_level = 8.76
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("inserter", victim=True)
        env.spawn_client(
            "inserter",
            server.connect("inserter"),
            lambda: {"kind": "insert", "table": "t1", "work_us": 300,
                     "type": "insert"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("for-update", noisy=True)
            env.spawn_client(
                "for-update",
                server.connect("for-update"),
                lambda: {"kind": "select_for_update", "table": "t1",
                         "scan_us": 10_000, "type": "select"},
                noisy,
                group="noisy",
                think_us=1_500,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class CustomMutexCase(InterferenceCase):
    """c2: inserts into PK-less tables contend on the global dict mutex.

    The mildest MySQL case (paper p = 0.11): victims lose a few hundred
    microseconds per request to dict-mutex waits.
    """

    case_id = "c2"
    app_name = "mysql"
    from_bug_report = False
    virtual_resource = "custom mutex"
    description = ("Inserting to tables without primary key causes "
                   "contention on global mutex")
    paper_interference_level = 0.11

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("pk-inserter", victim=True)
        env.spawn_client(
            "pk-inserter",
            server.connect("pk-inserter"),
            lambda: {"kind": "pk_insert", "ops": 20, "work_us": 4_000,
                     "type": "insert"},
            victim,
            group="victim",
            victim=True,
        )
        if env.interference:
            noisy = env.recorder("nopk-inserter", noisy=True)
            env.spawn_client(
                "nopk-inserter",
                server.connect("nopk-inserter"),
                lambda: {"kind": "nopk_insert", "ops": 10, "work_us": 100,
                         "type": "nopk_insert"},
                noisy,
                group="noisy",
                start_us=200_000,
            )


class TicketsCase(InterferenceCase):
    """c3: the InnoDB thread-concurrency limit starves a read client.

    Three write-intensive clients plus one read-intensive client share
    thread_concurrency = 4; a fifth write client pushes admission into
    contention and the reader's latency triples (Section 2.1, case 3).
    """

    case_id = "c3"
    app_name = "mysql"
    from_bug_report = False
    virtual_resource = "integer and tickets"
    description = ("Slow query blocks other clients' requests when "
                   "concurrency limit is reached")
    paper_interference_level = 10.70

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, thread_concurrency=4, ticket_grant=4)
        for index in range(3):
            writer = env.recorder("writer-%d" % index)
            env.spawn_client(
                "writer-%d" % index,
                server.connect("writer-%d" % index),
                lambda: {"kind": "write", "work_us": 3_000, "type": "write"},
                writer,
                group="write-clients",
                think_us=500,
                rng=env.kernel.rng("writer-%d" % index),
            )
        reader = env.recorder("reader", victim=True)
        env.spawn_client(
            "reader",
            server.connect("reader"),
            lambda: {"kind": "read", "work_us": 300, "type": "read"},
            reader,
            group="victim",
            victim=True,
            think_us=500,
            rng=env.kernel.rng("reader"),
        )
        if env.interference:
            fifth = env.recorder("fifth-writer", noisy=True)
            env.spawn_client(
                "fifth-writer",
                server.connect("fifth-writer"),
                lambda: {"kind": "write", "work_us": 3_000, "type": "write"},
                fifth,
                group="noisy",
                start_us=200_000,
            )


class SerializableCase(InterferenceCase):
    """c4: SERIALIZABLE SELECTs block locking reads and updates.

    Under SERIALIZABLE, plain SELECTs take shared record locks and hold
    them until the transaction commits; the victim's UPDATEs need the
    same records exclusively and wait out each scan transaction (see
    DESIGN.md section 5 on why this conflict structure, not symmetric
    mutex traffic, is the faithful model).
    """

    case_id = "c4"
    app_name = "mysql"
    from_bug_report = True
    virtual_resource = "integer variable"
    description = ("SERIALIZABLE isolation model causes significant "
                   "overhead to SELECT locking")
    paper_interference_level = 6.61
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("update-client", victim=True)
        env.spawn_client(
            "update-client",
            server.connect("update-client"),
            lambda: {"kind": "update_row", "work_us": 300,
                     "post_work_us": 300, "type": "write"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("serializable-scan", noisy=True)
            env.spawn_client(
                "serializable-scan",
                server.connect("serializable-scan"),
                lambda: {"kind": "serializable_scan", "scan_us": 15_000,
                         "type": "select"},
                noisy,
                group="noisy",
                think_us=5_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class BufferPoolCase(InterferenceCase):
    """c17: an analytics scan floods the buffer pool's free blocks.

    The Figure 2/4 motivating scenario as a client-vs-client case: an
    analytics connection scans a table that does not fit in the buffer
    pool, so every OLTP point read misses and pays the free-block path
    (LRU scan under pressure, plus waiting out the scanner's holds).
    The analytics connection runs under the loose background rule --
    it should be *blamable* as an aggressor and penalizable, but never
    protected as a victim.  This is the attribution profiler's
    reference case: the blame matrix must pin the majority of the OLTP
    client's ``buf_pool.free_blocks`` wait on the analytics pBox.
    """

    case_id = "c17"
    app_name = "mysql"
    from_bug_report = False
    virtual_resource = "free blocks"
    description = ("Analytics batch pass evicts the OLTP working set "
                   "from the buffer pool")
    paper_interference_level = None  # motivating case (Fig. 2), not Table 3
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, buffer_pool_blocks=16)
        victim = env.recorder("oltp", victim=True)
        env.spawn_client(
            "oltp",
            server.connect("oltp"),
            lambda: {"kind": "oltp_read",
                     "pages": [("hot", index) for index in range(4)],
                     "work_us": 200, "type": "read"},
            victim,
            group="victim",
            victim=True,
            think_us=20_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("analytics", noisy=True)
            env.spawn_client(
                "analytics",
                server.connect(
                    "analytics", rule=server.config.make_background_rule()),
                lambda: {"kind": "analytics_scan", "pages": 48,
                         "dirty": True, "read_io_us": 150,
                         "row_work_us": 20, "type": "select"},
                noisy,
                group="noisy",
                think_us=1_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class UndoLogCase(InterferenceCase):
    """c5: the purge thread cleaning a huge UNDO backlog blocks writes.

    Client A keeps a transaction open for over a second at a time (the
    paper's reproduction sleeps 10 s inside a transaction), so client
    B's writes build a long-version-chain backlog; when A commits, the
    purge thread's latch-holding batches starve B (Figure 1).
    """

    case_id = "c5"
    app_name = "mysql"
    from_bug_report = False
    virtual_resource = "UNDO log"
    description = ("Background purge task blocks the client's request "
                   "when purging the UNDO log")
    paper_interference_level = 15.35
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, purge_batch=16, purge_entry_us=400)
        victim = env.recorder("writer-b", victim=True)
        env.spawn_client(
            "writer-b",
            server.connect("writer-b"),
            lambda: {"kind": "undo_write", "undo_entries": 10,
                     "work_us": 200, "type": "write"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        env.spawn_background(server.purge_thread_body, "purge",
                             group="background")
        if env.interference:
            reader = env.recorder("long-txn-a", noisy=True)
            env.spawn_client(
                "long-txn-a",
                server.connect("long-txn-a"),
                lambda: {"kind": "long_txn_read",
                         "hold_open_us": seconds(2), "type": "read"},
                reader,
                group="noisy",
                think_us=20_000,
                rng=env.kernel.rng("long-txn"),
                start_us=300_000,
            )
