"""Apache interference cases c11-c13 (Table 3)."""

from repro.apps.apachesim import ApacheConfig, ApacheServer
from repro.cases.base import InterferenceCase


def _make_server(env, **config_kwargs):
    config_kwargs.setdefault("isolation_level", env.isolation_level)
    config = ApacheConfig(**config_kwargs)
    return ApacheServer(env.kernel, env.runtime, config)


class FcgidQueueCase(InterferenceCase):
    """c11: a slow mod_fcgid request blocks fast CGI connections."""

    case_id = "c11"
    app_name = "apache"
    from_bug_report = True
    virtual_resource = "fcgid request queue"
    description = "slow request in mod_fcgid blocks other fast connections"
    paper_interference_level = 1621.12

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, fcgid_slots=2)
        victim = env.recorder("fast-cgi", victim=True)
        env.spawn_client(
            "fast-cgi",
            server.connect("fast-cgi"),
            lambda: {"kind": "fcgid", "script_us": 5_000, "type": "fast"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(3):
                noisy = env.recorder("slow-cgi-%d" % index, noisy=True)
                env.spawn_client(
                    "slow-cgi-%d" % index,
                    server.connect("slow-cgi-%d" % index),
                    lambda: {"kind": "fcgid", "script_us": 200_000,
                             "type": "slow"},
                    noisy,
                    group="noisy",
                    think_us=5_000,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )


class MaxClientsCase(InterferenceCase):
    """c12: slow connections reaching MaxClients lock out fast requests."""

    case_id = "c12"
    app_name = "apache"
    from_bug_report = False
    virtual_resource = "apache thread pools"
    description = "Apache locks server if reaching maxclient"
    paper_interference_level = 1429.21

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, max_workers=4)
        victim = env.recorder("static-client", victim=True)
        env.spawn_client(
            "static-client",
            server.connect("static-client"),
            lambda: {"kind": "static", "serve_us": 500, "type": "static"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(4):
                noisy = env.recorder("slow-download-%d" % index, noisy=True)
                env.spawn_client(
                    "slow-download-%d" % index,
                    server.connect("slow-download-%d" % index),
                    lambda: {"kind": "slow_download", "serve_us": 150_000,
                             "type": "download"},
                    noisy,
                    group="noisy",
                    think_us=2_000,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )


class PhpPoolCase(InterferenceCase):
    """c13: slow PHP scripts exhaust pm.max_children."""

    case_id = "c13"
    app_name = "apache"
    from_bug_report = False
    virtual_resource = "php thread pool"
    description = ("Apache server suddenly slows when the connection "
                   "reaches pm.maxchildren")
    paper_interference_level = 352.38

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, fpm_children=2)
        victim = env.recorder("fast-php", victim=True)
        env.spawn_client(
            "fast-php",
            server.connect("fast-php"),
            lambda: {"kind": "php_fpm", "script_us": 4_000, "type": "fast"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(3):
                noisy = env.recorder("slow-php-%d" % index, noisy=True)
                env.spawn_client(
                    "slow-php-%d" % index,
                    server.connect("slow-php-%d" % index),
                    lambda: {"kind": "php_fpm", "script_us": 120_000,
                             "type": "slow"},
                    noisy,
                    group="noisy",
                    think_us=5_000,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )
