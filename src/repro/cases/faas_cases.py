"""FaaS interference cases c18/c20 (trace-driven sandbox churn).

These extend the Table 3 corpus past the paper's long-lived servers:
the contended resource is a serverless platform's concurrency-ticket
pool, the noisy activity is an open-loop replay of an Azure-Functions-
style invocation trace (:mod:`repro.workloads.traces`), and -- unlike
every other case -- the worker side churns threads, one fresh sandbox
per invocation.

c20 is the same scenario pinned to the EEVDF scheduler policy: its
golden digest locks the deadline-based schedule the policy produces,
so the scheduler seam is covered by the determinism net on both sides
of the default.
"""

from repro.apps.faassim import FaasConfig, FaasServer
from repro.cases.base import InterferenceCase
from repro.sim.syscalls import Sleep
from repro.workloads.traces import TraceEvent, generate_trace, replay_trace


class FaasChurnCase(InterferenceCase):
    """c18: invocation bursts exhaust the sandbox concurrency tickets."""

    case_id = "c18"
    app_name = "faas"
    from_bug_report = False
    virtual_resource = "concurrency tickets"
    description = "trace-replay invocation bursts starve the sandbox pool"
    paper_interference_level = None  # beyond the Table 3 corpus
    duration_s = 6
    #: Noisy trace tenants and their rate profiles.  Sized so the
    #: offered noisy load keeps the ticket pool under pressure without
    #: starving the victim outright (a fully wedged queue records no
    #: victim samples at all, which measures nothing).
    noisy_profiles = (
        ("tenant-a", "periodic"),
        ("tenant-b", "periodic"),
        ("tenant-c", "periodic"),
        ("tenant-d", "periodic"),
    )
    #: Virtual time at which the noisy replay starts firing.
    noisy_start_us = 200_000

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        config = FaasConfig(isolation_level=env.isolation_level)
        server = FaasServer(env.kernel, env.runtime, config)
        server.start(
            spawn=lambda body, name: env.spawn_background(
                body, name, group="server"
            )
        )
        victim = env.recorder("fn-victim", victim=True)
        env.spawn_client(
            "fn-victim",
            server.connect("fn-victim"),
            lambda: {"kind": "invoke", "duration_us": 400},
            victim,
            group="victim",
            victim=True,
            think_us=200,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for tenant, profile in self.noisy_profiles:
                self._spawn_replayer(env, server, tenant, profile)

    def _spawn_replayer(self, env, server, tenant, profile):
        """Open-loop noisy tenant: replay one generated trace."""
        start_us = self.noisy_start_us
        connection = server.connect(tenant)
        events = [
            TraceEvent(event.at_us + start_us, event.duration_us, event.index)
            for event in generate_trace(
                env.kernel, tenant, profile=profile,
                horizon_us=max(0, env.duration_us - start_us),
            )
        ]
        replay = replay_trace(env.kernel, events, connection.fire)

        def body():
            yield Sleep(us=start_us)
            yield from connection.open()
            yield from replay()

        env.spawn_background(body, tenant, group="noisy")


class FaasChurnEevdfCase(FaasChurnCase):
    """c20: the c18 scenario scheduled by the EEVDF policy.

    Runs on 3 cores instead of 4: with a spare core the run queue never
    holds two runnable threads at once and every policy degenerates to
    "run the only thread", which would pin nothing.  One core short of
    the offered load, the queue stays occupied and the golden digest
    locks the deadline-based schedule (it diverges from the same
    scenario under ``cfs`` within the first checkpoint window).
    """

    case_id = "c20"
    sched = "eevdf"
    cores = 3
    description = (
        "trace-replay invocation bursts starve the sandbox pool"
        " (EEVDF schedule, CPU-saturated)"
    )
