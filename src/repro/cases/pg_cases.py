"""PostgreSQL interference cases c6-c10 (Table 3)."""

from repro.apps.pgsim import PGConfig, PostgresServer
from repro.cases.base import InterferenceCase


def _make_server(env, **config_kwargs):
    config_kwargs.setdefault("isolation_level", env.isolation_level)
    config = PGConfig(**config_kwargs)
    return PostgresServer(env.kernel, env.runtime, config)


class IndexMVCCCase(InterferenceCase):
    """c6: an in-progress INSERT makes other queries pay MVCC checks."""

    case_id = "c6"
    app_name = "postgresql"
    from_bug_report = True
    virtual_resource = "table index"
    description = ("In-progress INSERT causes other queries to spend time "
                   "on MVCC")
    paper_interference_level = 39.16
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("selecter", victim=True)
        env.spawn_client(
            "selecter",
            server.connect("selecter"),
            lambda: {"kind": "indexed_select", "base_us": 300,
                     "work_us": 100, "type": "select"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("bulk-inserter", noisy=True)
            env.spawn_client(
                "bulk-inserter",
                server.connect("bulk-inserter"),
                lambda: {"kind": "bulk_insert", "batches": 25,
                         "rows_per_batch": 300, "batch_work_us": 6_000,
                         "between_batches_us": 300, "type": "insert"},
                noisy,
                group="noisy",
                think_us=1_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class LockManagerCase(InterferenceCase):
    """c7: SELECT FOR UPDATE blocks queries on *other* tables.

    The row-locking scan holds the lock-manager partition; unrelated
    queries need the same partition for their table locks.  The paper
    measures a 1204x interference level -- the victims are essentially
    parked for the scan's duration.
    """

    case_id = "c7"
    app_name = "postgresql"
    from_bug_report = False
    virtual_resource = "table-level lock"
    description = "Select for update query blocks the request on other tables"
    paper_interference_level = 1204.28
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("other-table", victim=True)
        env.spawn_client(
            "other-table",
            server.connect("other-table"),
            lambda: {"kind": "other_table_query", "work_us": 300,
                     "type": "select"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("for-update", noisy=True)
            env.spawn_client(
                "for-update",
                server.connect("for-update"),
                lambda: {"kind": "lock_table_scan", "scan_us": 200_000,
                         "type": "select"},
                noisy,
                group="noisy",
                think_us=2_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class LWLockCase(InterferenceCase):
    """c8: shared-mode LWLock holders starve exclusive waiters."""

    case_id = "c8"
    app_name = "postgresql"
    from_bug_report = False
    virtual_resource = "table-level lock"
    description = ("LWlock waiters for exclusive mode are blocked by "
                   "shared mode locker")
    paper_interference_level = 1727.95
    cores = 4

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("exclusive", victim=True)
        env.spawn_client(
            "exclusive",
            server.connect("exclusive"),
            lambda: {"kind": "lw_exclusive", "hold_us": 200,
                     "work_us": 300, "type": "write"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            for index in range(2):
                noisy = env.recorder("shared-%d" % index, noisy=True)
                env.spawn_client(
                    "shared-%d" % index,
                    server.connect("shared-%d" % index),
                    lambda: {"kind": "lw_shared", "hold_us": 9_000,
                             "type": "select"},
                    noisy,
                    group="noisy",
                    think_us=2_000,
                    rng=env.kernel.rng("noisy-think-%d" % index),
                    start_us=200_000,
                )


class VacuumFullCase(InterferenceCase):
    """c9: VACUUM FULL's exclusive relation lock blocks other requests."""

    case_id = "c9"
    app_name = "postgresql"
    from_bug_report = False
    virtual_resource = "dead table rows"
    description = "Vacuum full process blocks other requests"
    paper_interference_level = 419.14
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env, vacuum_batch_us=40_000, vacuum_trigger=200)
        victim = env.recorder("querier", victim=True)
        env.spawn_client(
            "querier",
            server.connect("querier"),
            lambda: {"kind": "table_query", "work_us": 400, "dead_rows": 0,
                     "type": "select"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        env.spawn_background(server.vacuum_process_body, "vacuum",
                             group="background")
        if env.interference:
            churn = env.recorder("churn-writer", noisy=True)
            env.spawn_client(
                "churn-writer",
                server.connect("churn-writer"),
                lambda: {"kind": "fill_dead_rows", "work_us": 200,
                         "dead_rows": 150, "type": "write"},
                churn,
                group="noisy",
                think_us=20_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )


class WALGroupCommitCase(InterferenceCase):
    """c10: a large WAL record makes the group flush slow for everyone."""

    case_id = "c10"
    app_name = "postgresql"
    from_bug_report = False
    virtual_resource = "write-ahead log"
    description = ("A large WAL causes the group insertion blocking other "
                   "requests")
    paper_interference_level = 3.69
    cores = 2

    def build(self, env):
        """Construct the scenario (victims always; noisy if enabled)."""
        server = _make_server(env)
        victim = env.recorder("small-committer", victim=True)
        env.spawn_client(
            "small-committer",
            server.connect("small-committer"),
            lambda: {"kind": "wal_small_commit", "record_kb": 2,
                     "work_us": 200, "type": "write"},
            victim,
            group="victim",
            victim=True,
            think_us=2_000,
            rng=env.kernel.rng("victim-think"),
        )
        if env.interference:
            noisy = env.recorder("bulk-committer", noisy=True)
            env.spawn_client(
                "bulk-committer",
                server.connect("bulk-committer"),
                lambda: {"kind": "wal_big_commit", "record_kb": 128,
                         "work_us": 500, "type": "write"},
                noisy,
                group="noisy",
                think_us=5_000,
                rng=env.kernel.rng("noisy-think"),
                start_us=200_000,
            )
