#!/usr/bin/env python3
"""Why hardware-resource isolation fails on intra-app interference.

Runs one interference case (c5, the UNDO purge) under every solution
the paper compares -- pBox, Linux cgroup, PARTIES, Retro, DARC -- and
prints the victim's latency for each, annotated with the structural
reason the hardware-centric baselines misbehave.

Run:  python examples/baselines_comparison.py [case_id]
"""

import sys

from repro.cases import Solution, evaluate_case, get_case

EXPLANATIONS = {
    Solution.PBOX: "delays the noisy pBox at safe points (no holds)",
    Solution.CGROUP: "even CPU quotas; throttling a resource holder "
                     "stretches its holds",
    Solution.PARTIES: "shifts CPU toward the violating victim, starving "
                      "the holder it waits on",
    Solution.RETRO: "BFAIR-throttles the highest-load workflow -- which "
                    "may be the victim itself",
    Solution.DARC: "dedicates cores to short requests; idle reservation "
                   "slows everything else",
}


def main():
    case_id = sys.argv[1] if len(sys.argv) > 1 else "c5"
    case = get_case(case_id)
    print("case %s (%s): %s" % (case.case_id, case.app_name,
                                case.description))
    print("virtual resource: %s" % case.virtual_resource)
    print("running To, Ti, and five solutions (deterministic sim)...")
    evaluation = evaluate_case(case, solutions=list(EXPLANATIONS),
                               duration_s=6)
    to_ms = evaluation.to_us / 1_000
    ti_ms = evaluation.ti_us / 1_000
    print()
    print("victim avg latency: %.2f ms alone, %.2f ms under interference"
          " (p = %.1f)" % (to_ms, ti_ms, evaluation.interference_level))
    print()
    print("%-9s %12s %10s   %s" % ("solution", "latency(ms)", "reduction",
                                   "mechanism"))
    for solution in EXPLANATIONS:
        ts_ms = evaluation.ts_us(solution) / 1_000
        ratio = evaluation.reduction_ratio(solution)
        print("%-9s %12.2f %9.0f%%   %s" % (
            solution.value, ts_ms, ratio * 100, EXPLANATIONS[solution]))


if __name__ == "__main__":
    main()
