#!/usr/bin/env python3
"""pBox in an event-driven server (the Varnish big-object case, c14).

Event-driven servers multiplex every connection over a shared worker
pool, so pBox cannot simply delay a noisy thread -- that would punish
all connections sharing it.  This example shows the Section 5 machinery
instead: each connection's pBox is parked with unbind_pbox, workers
bind it around each task (with the lazy-unbind optimization), the
kernel task queue records PREPARE/ENTER transparently, and penalties
take the form of task-deferral windows: a penalized connection's queued
requests are put back until the window passes.

Run:  python examples/event_driven_proxy.py
"""

from repro.apps.varnishsim import VarnishConfig, VarnishServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client

DURATION_S = 6


def run(pbox_enabled, with_noisy=True):
    kernel = Kernel(cores=4, seed=5)
    manager = PBoxManager(kernel, enabled=pbox_enabled)
    runtime = PBoxRuntime(manager, enabled=pbox_enabled)
    server = VarnishServer(kernel, runtime, VarnishConfig(workers=4))
    server.start()
    stop = seconds(DURATION_S)

    small = LatencyRecorder("small", record_from_us=seconds(1))
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("small-client"),
            lambda: {"kind": "small_object"},
            small, stop_us=stop, think_us=2_000, rng=kernel.rng("small"),
        ),
        name="small-client",
    )
    if with_noisy:
        for index in range(4):
            kernel.spawn(
                closed_loop_client(
                    kernel, server.connect("big-client-%d" % index),
                    lambda: {"kind": "big_object"},
                    LatencyRecorder("big-%d" % index), stop_us=stop,
                    think_us=2_000, rng=kernel.rng("big-%d" % index),
                    start_us=200_000,
                ),
                name="big-client-%d" % index,
            )
    kernel.run(until_us=stop)
    return small, manager, runtime


def main():
    baseline, _, _ = run(pbox_enabled=False, with_noisy=False)
    vanilla, _, _ = run(pbox_enabled=False)
    protected, manager, runtime = run(pbox_enabled=True)

    to_ms = baseline.mean_us() / 1_000
    ti_ms = vanilla.mean_us() / 1_000
    ts_ms = protected.mean_us() / 1_000
    print("small-object client, average latency")
    print("  alone               : %8.2f ms" % to_ms)
    print("  with 4 big clients  : %8.2f ms  (%.0fx)" % (ti_ms, ti_ms / to_ms))
    print("  with pBox           : %8.2f ms" % ts_ms)
    print()
    print("shared-thread machinery at work:")
    print("  lazy pBox rebinds saved : %d syscall pairs"
          % runtime.stats["lazy_rebinds"])
    print("  penalty actions         : %d (task-deferral windows)"
          % manager.stats["actions"])
    reduction = (ti_ms - ts_ms) / (ti_ms - to_ms)
    print("  interference reduction  : %.0f%%" % (reduction * 100))


if __name__ == "__main__":
    main()
