#!/usr/bin/env python3
"""The paper's Figure 1 scenario end to end, with and without pBox.

Reproduces interference case c5: a long-running read transaction pins
the UNDO history; when it commits, the purge thread's latch-holding
batches multiply a write client's latency.  The script prints client
B's per-second latency timeline for the vanilla build and the
pBox-enabled build side by side, plus the mitigation summary.

Run:  python examples/mysql_undo_purge.py
"""

from repro.apps.mysqlsim import MySQLConfig, MySQLServer
from repro.core import PBoxManager, PBoxRuntime
from repro.sim import Kernel
from repro.sim.clock import seconds
from repro.workloads import LatencyRecorder, closed_loop_client

DURATION_S = 12
A_JOINS_S = 3


def run(pbox_enabled):
    kernel = Kernel(cores=2, seed=11)
    manager = PBoxManager(kernel, enabled=pbox_enabled)
    runtime = PBoxRuntime(manager, enabled=pbox_enabled)
    server = MySQLServer(kernel, runtime,
                         MySQLConfig(purge_batch=16, purge_entry_us=400))
    stop = seconds(DURATION_S)

    writer = LatencyRecorder("B")
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("B"),
            lambda: {"kind": "undo_write", "undo_entries": 10,
                     "work_us": 200},
            writer, stop_us=stop, think_us=2_000, rng=kernel.rng("b"),
        ),
        name="clientB",
    )
    kernel.spawn(
        closed_loop_client(
            kernel, server.connect("A"),
            lambda: {"kind": "long_txn_read", "hold_open_us": seconds(2)},
            LatencyRecorder("A"), stop_us=stop, think_us=20_000,
            rng=kernel.rng("a"), start_us=seconds(A_JOINS_S),
        ),
        name="clientA",
    )
    kernel.spawn(server.purge_thread_body, name="purge")
    kernel.run(until_us=stop)
    return writer, manager


def main():
    vanilla, _ = run(pbox_enabled=False)
    protected, manager = run(pbox_enabled=True)

    print("client B avg latency per second (ms)"
          "  [client A joins at t=%ds]" % A_JOINS_S)
    print("%6s  %10s  %10s" % ("t(s)", "vanilla", "with pBox"))
    vanilla_series = dict(vanilla.timeline().mean_series())
    pbox_series = dict(protected.timeline().mean_series())
    for bucket in sorted(set(vanilla_series) | set(pbox_series)):
        print("%6.0f  %10.2f  %10.2f" % (
            bucket,
            vanilla_series.get(bucket, 0) / 1_000,
            pbox_series.get(bucket, 0) / 1_000,
        ))
    print()
    print("overall: vanilla %.2f ms, pBox %.2f ms"
          % (vanilla.mean_us() / 1_000, protected.mean_us() / 1_000))
    print("penalties applied to the purge pBox: %d (%.0f ms of delay)"
          % (manager.stats["penalties_applied"],
             manager.stats["penalty_applied_us"] / 1_000))


if __name__ == "__main__":
    main()
