#!/usr/bin/env python3
"""Quickstart: protect one activity from a noisy neighbour with pBox.

Builds the smallest complete pBox application: two activities sharing a
single virtual resource (a work queue's mutex).  The noisy activity
holds the resource for long stretches; the victim needs it briefly but
often.  With pBox enabled, the manager detects the imminent isolation
violation from the state events and delays the noisy activity at safe
points; the victim's latency drops back near its interference-free
level.

Run:  python examples/quickstart.py
"""

from repro.core import IsolationRule, OperationCosts, PBoxManager, PBoxRuntime
from repro.core.events import StateEvent
from repro.sim import Compute, Kernel, Mutex, Now, Sleep
from repro.sim.clock import seconds


def build_app(pbox_enabled, with_noisy=True):
    """One victim + one noisy activity contending on a shared mutex."""
    kernel = Kernel(cores=2, seed=42)
    manager = PBoxManager(kernel, enabled=pbox_enabled)
    runtime = PBoxRuntime(manager, costs=OperationCosts(),
                          enabled=pbox_enabled)
    shared = Mutex(kernel, "shared-resource")
    latencies = []

    def victim():
        # One pBox per activity boundary, with a 50% isolation goal:
        # "my latency may be at most 50% worse than interference-free".
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(5):
            runtime.activate_pbox(psid)
            began = yield Now()
            # --- the annotated resource usage --------------------------
            runtime.update_pbox(shared, StateEvent.PREPARE)
            yield from shared.acquire()
            runtime.update_pbox(shared, StateEvent.ENTER)
            runtime.update_pbox(shared, StateEvent.HOLD)
            yield Compute(us=100)          # brief critical section
            shared.release()
            runtime.update_pbox(shared, StateEvent.UNHOLD)
            # ------------------------------------------------------------
            yield Compute(us=400)          # the rest of the request
            latencies.append((yield Now()) - began)
            runtime.freeze_pbox(psid)
            yield Sleep(us=2_000)          # think time
        runtime.release_pbox(psid)

    def noisy():
        psid = runtime.create_pbox(IsolationRule(isolation_level=50))
        while kernel.now_us < seconds(5):
            runtime.activate_pbox(psid)
            runtime.update_pbox(shared, StateEvent.PREPARE)
            yield from shared.acquire()
            runtime.update_pbox(shared, StateEvent.ENTER)
            runtime.update_pbox(shared, StateEvent.HOLD)
            yield Compute(us=8_000)        # hogs the resource for 8 ms
            shared.release()
            runtime.update_pbox(shared, StateEvent.UNHOLD)
            runtime.freeze_pbox(psid)
            yield Sleep(us=1_000)
        runtime.release_pbox(psid)

    kernel.spawn(victim, name="victim")
    if with_noisy:
        kernel.spawn(noisy, name="noisy")
    kernel.run(until_us=seconds(5))
    return sum(latencies) / len(latencies), manager


def main():
    baseline_us, _ = build_app(pbox_enabled=False, with_noisy=False)
    interference_us, _ = build_app(pbox_enabled=False)
    mitigated_us, manager = build_app(pbox_enabled=True)

    print("victim average latency")
    print("  interference-free : %7.2f ms" % (baseline_us / 1_000))
    print("  with noisy thread : %7.2f ms  (%.1fx slower)"
          % (interference_us / 1_000, interference_us / baseline_us))
    print("  with pBox         : %7.2f ms" % (mitigated_us / 1_000))
    reduction = ((interference_us - mitigated_us)
                 / (interference_us - baseline_us))
    print("interference reduction ratio: %.0f%%" % (reduction * 100))
    print("manager: %d detections, %d penalties (%.1f ms total delay)"
          % (manager.stats["detections"], manager.stats["penalties_applied"],
             manager.stats["penalty_applied_us"] / 1_000))
    assert mitigated_us < interference_us


if __name__ == "__main__":
    main()
