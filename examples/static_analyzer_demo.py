#!/usr/bin/env python3
"""Run the companion static analyzer (Algorithm 2) on Figure 9's code.

The analyzer takes C-like source, finds callsites of waiting functions
(or wrappers around them) inside loops whose conditions involve shared
variables, and reports where to add the four update_pbox state events.
The input below is the paper's Figure 9 InnoDB admission code plus a
wrapper example and a self-waiting loop the analyzer must skip.

Run:  python examples/static_analyzer_demo.py
"""

from repro.analyzer import Analyzer, parse_module

SOURCE = """
// The virtual resource of case c3: the InnoDB admission counter.
int srv_conc_n_active, srv_thread_concurrency;

void srv_conc_enter_innodb_with_atomics(int trx) {
    for (;;) {
        if (srv_conc_n_active < srv_thread_concurrency) {
            srv_conc_n_active = srv_conc_n_active + 1;
            return;
        }
        os_thread_sleep(100);       // <- the blocking point (Figure 9)
    }
}

void srv_conc_exit_innodb_with_atomics(int trx) {
    srv_conc_n_active = srv_conc_n_active - 1;
}

// A custom waiting wrapper, common in large codebases.
void buf_flush_wait(int us) {
    os_thread_sleep(us);
}

int buf_pool_free_blocks;

void buf_LRU_get_free_block(int want) {
    while (buf_pool_free_blocks < want) {
        buf_flush_wait(50);         // <- found through the wrapper check
    }
    buf_pool_free_blocks = buf_pool_free_blocks - want;
}

void buf_page_io_complete(int n) {
    buf_pool_free_blocks = buf_pool_free_blocks + n;
}

// Self-waiting: a retry loop over purely local state (skipped).
void io_retry_loop(int attempts) {
    int tries = 0;
    while (tries < attempts) {
        os_thread_sleep(1000);
        tries = tries + 1;
    }
}
"""


def main():
    module = parse_module(SOURCE, name="figure9-demo")
    analyzer = Analyzer()

    wrappers = analyzer.find_wrappers(module)
    print("waiting-function wrappers found:")
    for wrapper, wait_func in sorted(wrappers.items()):
        print("  %s -> %s" % (wrapper, wait_func))

    print()
    print("candidate locations for update_pbox state events:")
    for location in analyzer.analyze(module):
        print("  %s (line %d): call to %s blocks on shared %s"
              % (location.function, location.line, location.callee,
                 ", ".join(location.shared_vars)))
    print()
    print("(io_retry_loop is correctly skipped: its loop condition only"
          " involves local state, i.e. self-waiting.)")


if __name__ == "__main__":
    main()
