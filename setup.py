"""Legacy setup shim.

Kept so editable installs work on offline machines where the ``wheel``
package is unavailable (pip falls back to ``setup.py develop``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
