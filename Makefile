# Convenience targets for the pBox reproduction.

.PHONY: install test bench report examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report: bench
	python -m repro report

examples:
	python examples/quickstart.py
	python examples/mysql_undo_purge.py
	python examples/event_driven_proxy.py
	python examples/static_analyzer_demo.py
	python examples/baselines_comparison.py

clean:
	rm -rf results build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
