# Convenience targets for the pBox reproduction.

.PHONY: install test verify docs-check scale-guard resume-guard bench report examples clean regen-golden

install:
	pip install -e .

test:
	pytest tests/

# Tier-1 tests, then a trace-export smoke run validated against the
# Chrome trace-event schema, then a contention-attribution profiler
# smoke run over the buffer-pool motivation case, then a live-dashboard
# smoke (`watch --once` with HTML export), then a request-tracing smoke
# (`why` writing WHY.json with the exact-sum check).  PYTHONPATH=src so
# it also works on a fresh checkout without `make install`.
verify:
	PYTHONPATH=src python -m pytest -x -q tests/
	PYTHONPATH=src python -m repro trace c5 --duration 2 \
	  --export /tmp/pbox-trace.json
	PYTHONPATH=src python -c "import json; \
	  from repro.obs import validate_chrome_trace; \
	  stats = validate_chrome_trace(json.load(open('/tmp/pbox-trace.json'))); \
	  print('trace OK:', stats)"
	PYTHONPATH=src python -m repro profile c17 --duration 2 \
	  --folded /tmp/pbox-profile.folded \
	  --json /tmp/pbox-profile.speedscope.json \
	  --html /tmp/pbox-profile.html | tail -n 5
	PYTHONPATH=src python -c "import json; \
	  doc = json.load(open('/tmp/pbox-profile.speedscope.json')); \
	  assert doc['profiles'][0]['type'] == 'sampled'; \
	  print('profile OK:', len(doc['shared']['frames']), 'frames')"
	PYTHONPATH=src python -m repro watch c5 --once --duration 2 \
	  --html /tmp/pbox-watch.html | tail -n 3
	PYTHONPATH=src python -c "import io; \
	  html = io.open('/tmp/pbox-watch.html').read(); \
	  assert html.startswith('<!DOCTYPE html>') and '<svg' in html; \
	  print('watch OK:', len(html), 'bytes of dashboard')"
	PYTHONPATH=src python -m repro why c5 --duration 2 --slowest 3 \
	  --json /tmp/pbox-why.json | tail -n 3
	PYTHONPATH=src python -c "import json; \
	  doc = json.load(open('/tmp/pbox-why.json')); \
	  assert doc['completed'] > 0 and doc['tenants']; \
	  print('why OK:', doc['completed'], 'requests traced')"

# Documentation checks: every relative markdown link resolves, every
# fenced `python -m repro ...` example runs (smoke mode, scratch cwd).
docs-check:
	python tools/check_docs.py

# Smoke-sized scale sweep + the manager-overhead floor (the CI
# scale-guard leg; docs/PERFORMANCE.md documents the model it pins).
scale-guard:
	REPRO_SMOKE=1 PYTHONPATH=src python -m pytest \
	  benchmarks/test_scale_throughput.py -q --benchmark-disable

# Two-case checkpoint/restore smoke + crash-resume byte-identity (the
# CI resume-guard leg; docs/ROBUSTNESS.md documents the contract).
resume-guard:
	REPRO_SMOKE=1 PYTHONPATH=src python -m pytest tests/test_ckpt_smoke.py -q

# Regenerate the golden-trace corpus after an INTENTIONAL behavior
# change; review the tests/golden/ diff before committing it.
regen-golden:
	PYTHONPATH=src python tools/regen_golden.py

bench:
	pytest benchmarks/ --benchmark-only

report: bench
	python -m repro report

examples:
	python examples/quickstart.py
	python examples/mysql_undo_purge.py
	python examples/event_driven_proxy.py
	python examples/static_analyzer_demo.py
	python examples/baselines_comparison.py

clean:
	rm -rf results build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
